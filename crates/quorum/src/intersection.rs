//! Quorum-intersection checking (paper §6.2.1), at internet scale.
//!
//! "While gathering quorum slices is easy, finding disjoint quorums among
//! them is co-NP-hard. However, we adopted a set of algorithmic heuristics
//! and case-elimination rules proposed by Lachowski that check typical
//! instances of the problem several orders of magnitude faster than the
//! worst-case cost."
//!
//! The checker here follows the same playbook, extended with the FBAS
//! analysis techniques of Gaul/Khoffi/Liesen/Stüber so it scales from the
//! production closure (20–30 nodes) to synthetic 500-org topologies:
//!
//! 1. restrict to nodes that can appear in *some* quorum: the maximal
//!    quorum (`core`) is the union of all quorums;
//! 2. compute strongly connected components of the trust digraph
//!    (`u → v` iff `v` appears in `u`'s quorum set). Two SCCs each
//!    containing a quorum yield disjoint quorums immediately. Otherwise
//!    **every minimal quorum is strongly connected** (its sink SCC is
//!    itself a quorum), so all minimal quorums live inside the unique
//!    quorum-bearing SCC — the branch-and-bound domain shrinks from the
//!    whole core to that SCC, which for sparse tier-weighted topologies
//!    is the small top tier;
//! 3. *symmetric* configurations (every core node declaring the identical
//!    quorum set — the shape `tiers::synthesize_all` produces) are decided
//!    in closed form on the quorum-set tree, without any search;
//! 4. the remaining two-way partition search runs on bitsets with
//!    quorum-embedding pruning, optional memoization of embedding checks,
//!    and an optional deterministic parallel split of the search tree.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use stellar_scp::quorum::{find_quorum, QuorumSetMap};
use stellar_scp::{NodeId, QuorumSet};

/// An FBA system: every known node's declared quorum set.
#[derive(Clone, Debug, Default)]
pub struct FbaSystem {
    /// Per-node quorum sets.
    pub nodes: BTreeMap<NodeId, QuorumSet>,
}

impl QuorumSetMap for FbaSystem {
    fn quorum_set(&self, node: NodeId) -> Option<&QuorumSet> {
        self.nodes.get(&node)
    }
}

impl FbaSystem {
    /// Builds a system from `(node, qset)` pairs.
    pub fn new(entries: impl IntoIterator<Item = (NodeId, QuorumSet)>) -> FbaSystem {
        FbaSystem {
            nodes: entries.into_iter().collect(),
        }
    }

    /// All node ids in the system.
    pub fn ids(&self) -> BTreeSet<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Whether `set` contains a quorum of this system.
    pub fn contains_quorum(&self, set: &BTreeSet<NodeId>) -> bool {
        !find_quorum(self, set).is_empty()
    }

    /// The maximal quorum within `set` (empty if none).
    pub fn max_quorum_in(&self, set: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        find_quorum(self, set)
    }
}

/// Outcome of a disjoint-quorum search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntersectionResult {
    /// Every pair of quorums intersects.
    Intersecting,
    /// Two disjoint quorums exist — the network can diverge.
    Disjoint(BTreeSet<NodeId>, BTreeSet<NodeId>),
    /// No quorum exists at all (degenerate configuration).
    NoQuorum,
}

/// How the disjoint-quorum search runs. All modes return identical
/// results for identical inputs; they differ only in speed.
#[derive(Clone, Copy, Debug)]
pub struct CheckerOptions {
    /// Cache quorum-embedding prune checks keyed by candidate bitset.
    pub memoize: bool,
    /// Worker threads for the partition search (≤ 1 = sequential). The
    /// parallel path is deterministic: the witness reported is always
    /// the one the lowest-indexed subtree would find.
    pub threads: usize,
    /// Skip the closed-form symmetric-configuration decision (forces the
    /// search path; used for cross-mode validation in tests).
    pub disable_symmetric_fast_path: bool,
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions {
            memoize: true,
            threads: 1,
            disable_symmetric_fast_path: false,
        }
    }
}

impl CheckerOptions {
    /// SCC-restricted bitset branch-and-bound, no memoization.
    pub fn pruned() -> CheckerOptions {
        CheckerOptions {
            memoize: false,
            threads: 1,
            disable_symmetric_fast_path: false,
        }
    }

    /// Adds embedding-check memoization (the default).
    pub fn memoized() -> CheckerOptions {
        CheckerOptions::default()
    }

    /// Adds a deterministic parallel split of the search tree.
    pub fn parallel(threads: usize) -> CheckerOptions {
        CheckerOptions {
            memoize: true,
            threads: threads.max(1),
            disable_symmetric_fast_path: false,
        }
    }
}

/// Where the time went during one check (bench/report attachment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Nodes in the system.
    pub nodes: usize,
    /// Nodes in the maximal quorum (the union of all quorums).
    pub core_nodes: usize,
    /// SCC count within the core.
    pub scc_count: usize,
    /// Nodes in the final branch-and-bound domain (0 when a case rule or
    /// the symmetric fast path decided without searching).
    pub domain_nodes: usize,
    /// Branch-and-bound tree nodes visited.
    pub branches: u64,
    /// Quorum-embedding prune evaluations (cache misses included).
    pub prune_checks: u64,
    /// Embedding checks answered from the memo table.
    pub memo_hits: u64,
    /// Whether the symmetric closed-form decision applied.
    pub symmetric: bool,
}

/// Checks whether the system enjoys quorum intersection.
pub fn enjoys_quorum_intersection(sys: &FbaSystem) -> bool {
    matches!(find_disjoint_quorums(sys), IntersectionResult::Intersecting)
}

/// Searches for two disjoint quorums with default options.
pub fn find_disjoint_quorums(sys: &FbaSystem) -> IntersectionResult {
    find_disjoint_quorums_with(sys, &CheckerOptions::default()).0
}

/// Searches for two disjoint quorums, returning them if found, plus
/// search statistics.
pub fn find_disjoint_quorums_with(
    sys: &FbaSystem,
    opts: &CheckerOptions,
) -> (IntersectionResult, CheckStats) {
    let mut stats = CheckStats {
        nodes: sys.nodes.len(),
        ..CheckStats::default()
    };
    let idx = IndexedFba::build(sys);
    let all = Bits::full(idx.n);
    let core = idx.max_quorum(&all);
    stats.core_nodes = core.count();
    if core.is_empty() {
        return (IntersectionResult::NoQuorum, stats);
    }

    // Closed-form decision for symmetric configurations: every core node
    // declares the identical quorum set (the `synthesize_all` shape).
    if !opts.disable_symmetric_fast_path {
        if let Some(result) = idx.symmetric_decision(&core, sys) {
            stats.symmetric = true;
            return (result, stats);
        }
    }

    // SCC case elimination: two different SCCs each containing a quorum
    // yield disjoint quorums directly.
    let core_ids = idx.to_node_set(&core);
    let sccs = trust_sccs(sys, &core_ids);
    stats.scc_count = sccs.len();
    let mut quorum_sccs: Vec<(BTreeSet<NodeId>, Bits)> = Vec::new();
    for scc in &sccs {
        let bits = idx.bits_of_set(scc);
        let q = idx.max_quorum(&bits);
        if !q.is_empty() {
            quorum_sccs.push((idx.to_node_set(&q), bits));
        }
    }
    if quorum_sccs.len() >= 2 {
        return (
            IntersectionResult::Disjoint(quorum_sccs[0].0.clone(), quorum_sccs[1].0.clone()),
            stats,
        );
    }
    // `core` is itself a quorum, and its sink SCC (within the core) is a
    // quorum too, so exactly one quorum-bearing SCC remains here.
    let (_, scc_bits) = quorum_sccs
        .pop()
        .expect("non-empty core implies a quorum-bearing SCC");

    // Every minimal quorum is strongly connected (its sink SCC under the
    // trust relation is itself a quorum), so any two disjoint quorums
    // shrink to minimal ones inside this single SCC: the partition search
    // only needs to label the SCC's nodes.
    let mut domain: Vec<usize> = scc_bits.iter_ones().collect();
    stats.domain_nodes = domain.len();

    // The restricted domain is often itself symmetric even when the whole
    // system is not — e.g. a tier-weighted top tier or a scale-free seed
    // clique whose members all declare the same quorum set. Since every
    // minimal quorum lives inside this SCC, the closed-form decision on
    // the shared set (entries restricted to SCC members) settles the
    // whole system without any search.
    if !opts.disable_symmetric_fast_path {
        if let Some(result) = idx.symmetric_decision(&scc_bits, sys) {
            stats.symmetric = true;
            return (result, stats);
        }
    }
    // Branching order: most-trusted first (descending in-degree within
    // the domain), index tie-break. Highly referenced nodes constrain
    // both sides early, so pruning binds near the root of the tree.
    let indeg = idx.in_degrees(&scc_bits);
    domain.sort_by_key(|&i| (std::cmp::Reverse(indeg[i]), i));

    let mut search = SplitSearch {
        idx: &idx,
        domain: &domain,
        memo: opts.memoize.then(HashMap::new),
        branches: 0,
        prune_checks: 0,
        memo_hits: 0,
    };
    let hit = if opts.threads > 1 && domain.len() > 8 {
        parallel_split(&idx, &domain, opts, &mut stats)
    } else {
        let a = Bits::empty(idx.n);
        let b = Bits::empty(idx.n);
        let hit = search.run(0, a, b);
        stats.branches = search.branches;
        stats.prune_checks = search.prune_checks;
        stats.memo_hits = search.memo_hits;
        hit
    };
    match hit {
        Some((qa, qb)) => (
            IntersectionResult::Disjoint(idx.to_node_set(&qa), idx.to_node_set(&qb)),
            stats,
        ),
        None => (IntersectionResult::Intersecting, stats),
    }
}

// ---------------------------------------------------------------------------
// Bitset machinery
// ---------------------------------------------------------------------------

/// A fixed-width bitset over node indices.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn empty(n: usize) -> Bits {
        Bits {
            words: vec![0; n.div_ceil(64).max(1)],
        }
    }

    fn full(n: usize) -> Bits {
        let mut b = Bits::empty(n);
        for i in 0..n {
            b.insert(i);
        }
        b
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn union(&self, other: &Bits) -> Bits {
        Bits {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// A quorum set compiled onto node indices; validators outside the known
/// node set are dropped (an unknown node has no known slices, so it can
/// never participate in a quorum — dropping the entry while keeping the
/// threshold preserves semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
struct IdxQSet {
    threshold: u32,
    validators: Vec<u32>,
    inner: Vec<IdxQSet>,
}

impl IdxQSet {
    fn satisfied_by(&self, set: &Bits) -> bool {
        let mut hit = 0u32;
        if hit >= self.threshold {
            return true;
        }
        for v in &self.validators {
            if set.contains(*v as usize) {
                hit += 1;
                if hit >= self.threshold {
                    return true;
                }
            }
        }
        for q in &self.inner {
            if q.satisfied_by(set) {
                hit += 1;
                if hit >= self.threshold {
                    return true;
                }
            }
        }
        false
    }

    /// Greedily collects one satisfying subset of `within`, if any.
    fn satisfying_subset(&self, within: &Bits, out: &mut Bits) -> bool {
        let mut hit = 0u32;
        if hit >= self.threshold {
            return true;
        }
        for v in &self.validators {
            if within.contains(*v as usize) {
                out.insert(*v as usize);
                hit += 1;
                if hit >= self.threshold {
                    return true;
                }
            }
        }
        for q in &self.inner {
            let mut sub = Bits::empty(out.words.len() * 64);
            if q.satisfying_subset(within, &mut sub) {
                *out = out.union(&sub);
                hit += 1;
                if hit >= self.threshold {
                    return true;
                }
            }
        }
        false
    }
}

/// The system reindexed onto `0..n` with bitset-friendly quorum sets.
struct IndexedFba {
    n: usize,
    ids: Vec<NodeId>,
    qsets: Vec<IdxQSet>,
}

impl IndexedFba {
    fn build(sys: &FbaSystem) -> IndexedFba {
        let ids: Vec<NodeId> = sys.nodes.keys().copied().collect();
        let index_of: BTreeMap<NodeId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, i as u32))
            .collect();
        fn compile(q: &QuorumSet, index_of: &BTreeMap<NodeId, u32>) -> IdxQSet {
            IdxQSet {
                threshold: q.threshold,
                validators: q
                    .validators
                    .iter()
                    .filter_map(|v| index_of.get(v).copied())
                    .collect(),
                inner: q.inner.iter().map(|i| compile(i, index_of)).collect(),
            }
        }
        let qsets = sys.nodes.values().map(|q| compile(q, &index_of)).collect();
        IndexedFba {
            n: ids.len(),
            ids,
            qsets,
        }
    }

    fn to_node_set(&self, bits: &Bits) -> BTreeSet<NodeId> {
        bits.iter_ones().map(|i| self.ids[i]).collect()
    }

    fn bits_of_set(&self, set: &BTreeSet<NodeId>) -> Bits {
        let mut b = Bits::empty(self.n);
        for (i, id) in self.ids.iter().enumerate() {
            if set.contains(id) {
                b.insert(i);
            }
        }
        b
    }

    /// The maximal quorum inside `candidates` (greatest fixpoint of slice
    /// pruning), on bitsets.
    fn max_quorum(&self, candidates: &Bits) -> Bits {
        let mut cur = candidates.clone();
        loop {
            let mut next = cur.clone();
            let mut changed = false;
            for i in cur.iter_ones() {
                if !self.qsets[i].satisfied_by(&cur) {
                    next.remove(i);
                    changed = true;
                }
            }
            if !changed {
                return cur;
            }
            cur = next;
        }
    }

    fn contains_quorum(&self, candidates: &Bits) -> bool {
        !self.max_quorum(candidates).is_empty()
    }

    /// Per-node count of domain quorum sets referencing it (any nesting
    /// depth), restricted to `within`.
    fn in_degrees(&self, within: &Bits) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        fn walk(q: &IdxQSet, within: &Bits, deg: &mut [u32]) {
            for v in &q.validators {
                if within.contains(*v as usize) {
                    deg[*v as usize] += 1;
                }
            }
            for i in &q.inner {
                walk(i, within, deg);
            }
        }
        for i in within.iter_ones() {
            walk(&self.qsets[i], within, &mut deg);
        }
        deg
    }

    /// Closed-form decision for symmetric cores. Returns `None` when the
    /// core is not symmetric (callers fall through to the search).
    ///
    /// When every core node declares the identical quorum set, a set `S`
    /// is a quorum iff `S` satisfies that shared set, so two disjoint
    /// quorums exist iff the quorum-set tree can be *2-split*: a
    /// `t`-of-`m` set with `s` splittable inner entries splits iff
    /// `2·max(0, t − s) ≤ m − s` (splittable entries serve both sides,
    /// the rest at most one). Validator leaves never split; an inner set
    /// splits by the same rule recursively.
    fn symmetric_decision(&self, core: &Bits, sys: &FbaSystem) -> Option<IntersectionResult> {
        let mut ones = core.iter_ones();
        let first = ones.next()?;
        let reference = &sys.nodes[&self.ids[first]];
        for i in ones {
            if sys.nodes[&self.ids[i]] != *reference {
                return None;
            }
        }
        let shared = &self.qsets[first];
        // Entries only count when they can be satisfied inside the core.
        match split_symmetric(shared, core, self.n) {
            Some((a, b)) => {
                // The constructed sides satisfy the shared set; their
                // maximal quorums are the reported witnesses (non-empty
                // by construction of the split).
                let qa = self.max_quorum(&a);
                let qb = self.max_quorum(&b);
                if qa.is_empty() || qb.is_empty() {
                    // Degenerate tree (threshold-0 entries): fall back to
                    // the search rather than report an unsound witness.
                    return None;
                }
                Some(IntersectionResult::Disjoint(
                    self.to_node_set(&qa),
                    self.to_node_set(&qb),
                ))
            }
            None => Some(IntersectionResult::Intersecting),
        }
    }
}

/// Attempts to split `q` into two disjoint node sets within `core`, each
/// satisfying `q`. Returns the sides if the tree admits a split.
fn split_symmetric(q: &IdxQSet, core: &Bits, n: usize) -> Option<(Bits, Bits)> {
    // Classify entries: usable validators serve exactly one side; inner
    // sets either split (serve both), satisfy one side, or are dead.
    enum Entry {
        Validator(usize),
        Both(Bits, Bits),
        One(Bits),
    }
    let mut entries: Vec<Entry> = Vec::new();
    for v in &q.validators {
        if core.contains(*v as usize) {
            entries.push(Entry::Validator(*v as usize));
        }
    }
    for i in &q.inner {
        if let Some((a, b)) = split_symmetric(i, core, n) {
            entries.push(Entry::Both(a, b));
        } else {
            let mut sub = Bits::empty(n);
            if i.satisfying_subset(core, &mut sub) {
                entries.push(Entry::One(sub));
            }
        }
    }
    let t = q.threshold as usize;
    let s = entries
        .iter()
        .filter(|e| matches!(e, Entry::Both(_, _)))
        .count();
    let m = entries.len();
    let need_each = t.saturating_sub(s);
    if 2 * need_each > m - s {
        return None;
    }
    // Construct: all splittable entries serve both sides; then assign
    // `need_each` single-side entries to A, then to B (deterministic
    // entry order).
    let mut a = Bits::empty(n);
    let mut b = Bits::empty(n);
    let mut a_taken = 0usize;
    let mut b_taken = 0usize;
    for e in &entries {
        match e {
            Entry::Both(ea, eb) => {
                a = a.union(ea);
                b = b.union(eb);
            }
            Entry::Validator(v) => {
                if a_taken < need_each {
                    a.insert(*v);
                    a_taken += 1;
                } else if b_taken < need_each {
                    b.insert(*v);
                    b_taken += 1;
                }
            }
            Entry::One(sub) => {
                if a_taken < need_each {
                    a = a.union(sub);
                    a_taken += 1;
                } else if b_taken < need_each {
                    b = b.union(sub);
                    b_taken += 1;
                }
            }
        }
    }
    Some((a, b))
}

// ---------------------------------------------------------------------------
// Branch-and-bound partition search
// ---------------------------------------------------------------------------

struct SplitSearch<'a> {
    idx: &'a IndexedFba,
    domain: &'a [usize],
    memo: Option<HashMap<Bits, bool>>,
    branches: u64,
    prune_checks: u64,
    memo_hits: u64,
}

impl SplitSearch<'_> {
    fn embeds_quorum(&mut self, candidate: Bits) -> bool {
        if let Some(memo) = &mut self.memo {
            if let Some(hit) = memo.get(&candidate) {
                self.memo_hits += 1;
                return *hit;
            }
            self.prune_checks += 1;
            let v = self.idx.contains_quorum(&candidate);
            memo.insert(candidate, v);
            v
        } else {
            self.prune_checks += 1;
            self.idx.contains_quorum(&candidate)
        }
    }

    /// Recursive two-way partition search with embedding pruning. Every
    /// domain node is labeled A or B ("neither" is unnecessary: padding a
    /// disjoint pair with extra nodes keeps both maximal quorums
    /// non-empty). The first labeled node always goes to side A
    /// (symmetry breaking).
    fn run(&mut self, at: usize, a: Bits, b: Bits) -> Option<(Bits, Bits)> {
        self.branches += 1;
        // Success test on committed sets.
        if !a.is_empty() && !b.is_empty() {
            let qa = self.idx.max_quorum(&a);
            if !qa.is_empty() {
                let qb = self.idx.max_quorum(&b);
                if !qb.is_empty() {
                    return Some((qa, qb));
                }
            }
        }
        if at == self.domain.len() {
            return None;
        }
        // Pruning: each side plus all undecided nodes must still embed a
        // quorum, otherwise this branch can never succeed.
        let mut undecided = Bits::empty(self.idx.n);
        for &i in &self.domain[at..] {
            undecided.insert(i);
        }
        if !self.embeds_quorum(a.union(&undecided)) {
            return None;
        }
        if !self.embeds_quorum(b.union(&undecided)) {
            return None;
        }

        let node = self.domain[at];
        let mut a2 = a.clone();
        a2.insert(node);
        if let Some(hit) = self.run(at + 1, a2, b.clone()) {
            return Some(hit);
        }
        if at > 0 || !b.is_empty() {
            let mut b2 = b;
            b2.insert(node);
            if let Some(hit) = self.run(at + 1, a, b2) {
                return Some(hit);
            }
        }
        None
    }
}

/// Deterministic parallel variant: the first `depth` levels of the
/// partition tree are expanded into independent prefix tasks, distributed
/// over worker threads. A found witness cancels only *higher-indexed*
/// tasks, so the reported witness is always the one the lowest-indexed
/// successful subtree finds — identical to a sequential left-to-right
/// traversal's choice.
fn parallel_split(
    idx: &IndexedFba,
    domain: &[usize],
    opts: &CheckerOptions,
    stats: &mut CheckStats,
) -> Option<(Bits, Bits)> {
    let depth = (opts.threads.next_power_of_two().trailing_zeros() as usize + 2)
        .min(domain.len().saturating_sub(1))
        .min(10);
    // Node 0 is pinned to side A (symmetry breaking); enumerate the
    // remaining `depth` labels in canonical order (A before B).
    let tasks: Vec<u64> = (0..(1u64 << depth)).collect();
    let found_at = AtomicUsize::new(usize::MAX);
    let next_task = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(Bits, Bits)>>> = Mutex::new(vec![None; tasks.len()]);
    let branches = AtomicU64::new(0);
    let prune_checks = AtomicU64::new(0);
    let memo_hits = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..opts.threads {
            scope.spawn(|| loop {
                let ti = next_task.fetch_add(1, Ordering::Relaxed);
                if ti >= tasks.len() {
                    return;
                }
                if found_at.load(Ordering::Relaxed) < ti {
                    continue;
                }
                let mask = tasks[ti];
                let mut a = Bits::empty(idx.n);
                let mut b = Bits::empty(idx.n);
                a.insert(domain[0]);
                for level in 0..depth {
                    let node = domain[level + 1];
                    if mask >> level & 1 == 0 {
                        a.insert(node);
                    } else {
                        b.insert(node);
                    }
                }
                let mut search = SplitSearch {
                    idx,
                    domain,
                    memo: opts.memoize.then(HashMap::new),
                    branches: 0,
                    prune_checks: 0,
                    memo_hits: 0,
                };
                let hit = search.run(depth + 1, a, b);
                branches.fetch_add(search.branches, Ordering::Relaxed);
                prune_checks.fetch_add(search.prune_checks, Ordering::Relaxed);
                memo_hits.fetch_add(search.memo_hits, Ordering::Relaxed);
                if let Some(hit) = hit {
                    results.lock().unwrap()[ti] = Some(hit);
                    found_at.fetch_min(ti, Ordering::Relaxed);
                }
            });
        }
    });
    stats.branches = branches.load(Ordering::Relaxed);
    stats.prune_checks = prune_checks.load(Ordering::Relaxed);
    stats.memo_hits = memo_hits.load(Ordering::Relaxed);
    results.into_inner().unwrap().into_iter().find_map(|r| r)
}

/// Strongly connected components of the trust digraph restricted to
/// `within` (iterative Tarjan).
pub fn trust_sccs(sys: &FbaSystem, within: &BTreeSet<NodeId>) -> Vec<BTreeSet<NodeId>> {
    // Build adjacency restricted to `within`.
    let idx_of: BTreeMap<NodeId, usize> = within
        .iter()
        .copied()
        .enumerate()
        .map(|(i, n)| (n, i))
        .collect();
    let nodes: Vec<NodeId> = within.iter().copied().collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| {
            sys.nodes
                .get(n)
                .map(|q| {
                    q.all_validators()
                        .into_iter()
                        .filter_map(|v| idx_of.get(&v).copied())
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();

    // Iterative Tarjan's algorithm.
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<BTreeSet<NodeId>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Call stack of (node, next-child-position).
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = BTreeSet::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.insert(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn uniform(qset: QuorumSet, nodes: &[u32]) -> FbaSystem {
        FbaSystem::new(nodes.iter().map(|&n| (NodeId(n), qset.clone())))
    }

    fn all_modes() -> Vec<CheckerOptions> {
        vec![
            CheckerOptions::pruned(),
            CheckerOptions::memoized(),
            CheckerOptions::parallel(4),
            CheckerOptions {
                disable_symmetric_fast_path: true,
                ..CheckerOptions::default()
            },
        ]
    }

    #[test]
    fn majority_of_four_intersects() {
        let sys = uniform(QuorumSet::majority(ids(&[0, 1, 2, 3])), &[0, 1, 2, 3]);
        for opts in all_modes() {
            let (res, _) = find_disjoint_quorums_with(&sys, &opts);
            assert_eq!(res, IntersectionResult::Intersecting, "{opts:?}");
        }
    }

    #[test]
    fn half_threshold_splits() {
        // 2-of-4 slices: {0,1} and {2,3} are disjoint quorums.
        let sys = uniform(
            QuorumSet::threshold_of(2, ids(&[0, 1, 2, 3])),
            &[0, 1, 2, 3],
        );
        for opts in all_modes() {
            match find_disjoint_quorums_with(&sys, &opts).0 {
                IntersectionResult::Disjoint(a, b) => {
                    assert!(a.is_disjoint(&b));
                    assert!(sys.contains_quorum(&a));
                    assert!(sys.contains_quorum(&b));
                }
                other => panic!("expected disjoint quorums, got {other:?} ({opts:?})"),
            }
        }
    }

    #[test]
    fn two_islands_split_via_scc_rule() {
        // Two self-contained cliques that never reference each other.
        let mut sys = uniform(QuorumSet::majority(ids(&[0, 1, 2])), &[0, 1, 2]);
        let island2 = uniform(QuorumSet::majority(ids(&[3, 4, 5])), &[3, 4, 5]);
        sys.nodes.extend(island2.nodes);
        match find_disjoint_quorums(&sys) {
            IntersectionResult::Disjoint(a, b) => assert!(a.is_disjoint(&b)),
            other => panic!("expected disjoint, got {other:?}"),
        }
    }

    #[test]
    fn no_quorum_detected() {
        // Node 0 requires node 1, whose qset is unknown.
        let sys = FbaSystem::new([(NodeId(0), QuorumSet::threshold_of(2, ids(&[0, 1])))]);
        assert_eq!(find_disjoint_quorums(&sys), IntersectionResult::NoQuorum);
    }

    #[test]
    fn byzantine_threshold_intersects() {
        for n in [4u32, 7, 10, 13] {
            let nodes: Vec<u32> = (0..n).collect();
            let sys = uniform(QuorumSet::byzantine(ids(&nodes)), &nodes);
            assert!(enjoys_quorum_intersection(&sys), "n = {n}");
        }
    }

    #[test]
    fn tiered_production_like_topology_intersects() {
        // 3 orgs of 3 validators, org slices 2-of-3, top 2-of-3 orgs —
        // the Fig. 6 shape at small scale.
        let orgs: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]];
        let org_sets: Vec<QuorumSet> = orgs
            .iter()
            .map(|o| QuorumSet::threshold_of(2, ids(o)))
            .collect();
        let top = QuorumSet {
            threshold: 2,
            validators: vec![],
            inner: org_sets,
        };
        let all: Vec<u32> = (0..9).collect();
        let sys = uniform(top, &all);
        for opts in all_modes() {
            let (res, _) = find_disjoint_quorums_with(&sys, &opts);
            assert_eq!(res, IntersectionResult::Intersecting, "{opts:?}");
        }
    }

    #[test]
    fn lopsided_trust_still_intersects() {
        // Everyone requires node 0 plus a majority: all quorums contain 0.
        let mut sys = FbaSystem::default();
        for n in 0..5u32 {
            let q = QuorumSet::threshold_of(3, ids(&[0, 1, 2, 3, 4]));
            // Node 0 mandatory: wrap as 2-of-{0, majority-set}.
            let wrapped = QuorumSet {
                threshold: 2,
                validators: vec![NodeId(0)],
                inner: vec![q],
            };
            sys.nodes.insert(NodeId(n), wrapped);
        }
        assert!(enjoys_quorum_intersection(&sys));
    }

    #[test]
    fn scc_computation_basic() {
        // 0 → 1 → 2 → 0 cycle plus a dangling 3 → 0.
        let mut sys = FbaSystem::default();
        sys.nodes
            .insert(NodeId(0), QuorumSet::threshold_of(1, ids(&[1])));
        sys.nodes
            .insert(NodeId(1), QuorumSet::threshold_of(1, ids(&[2])));
        sys.nodes
            .insert(NodeId(2), QuorumSet::threshold_of(1, ids(&[0])));
        sys.nodes
            .insert(NodeId(3), QuorumSet::threshold_of(1, ids(&[0])));
        let within: BTreeSet<NodeId> = ids(&[0, 1, 2, 3]).into_iter().collect();
        let sccs = trust_sccs(&sys, &within);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = sccs.iter().map(|c| c.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 3]);
    }

    #[test]
    fn checker_handles_25_node_tiered_closure_quickly() {
        // Production-like scale from §6.2.1: ~25 nodes in the closure.
        let mut org_sets = Vec::new();
        let mut all = Vec::new();
        for org in 0..5u32 {
            let members: Vec<u32> = (org * 5..org * 5 + 5).collect();
            all.extend(members.clone());
            org_sets.push(QuorumSet::threshold_of(3, ids(&members)));
        }
        let top = QuorumSet {
            threshold: 4,
            validators: vec![],
            inner: org_sets,
        };
        let sys = uniform(top, &all);
        let start = std::time::Instant::now();
        assert!(enjoys_quorum_intersection(&sys));
        assert!(
            start.elapsed().as_secs() < 30,
            "checker too slow: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn symmetric_fast_path_engages_on_synthesized_shapes() {
        let org_sets: Vec<QuorumSet> = (0..6)
            .map(|o| QuorumSet::majority(ids(&[o * 3, o * 3 + 1, o * 3 + 2])))
            .collect();
        let top = QuorumSet {
            threshold: 4,
            validators: vec![],
            inner: org_sets,
        };
        let all: Vec<u32> = (0..18).collect();
        let sys = uniform(top, &all);
        let (res, stats) = find_disjoint_quorums_with(&sys, &CheckerOptions::default());
        assert_eq!(res, IntersectionResult::Intersecting);
        assert!(stats.symmetric, "{stats:?}");
        assert_eq!(stats.branches, 0);
        // The search path agrees.
        let (res2, stats2) = find_disjoint_quorums_with(
            &sys,
            &CheckerOptions {
                disable_symmetric_fast_path: true,
                ..CheckerOptions::default()
            },
        );
        assert_eq!(res2, IntersectionResult::Intersecting);
        assert!(!stats2.symmetric);
    }

    #[test]
    fn symmetric_fast_path_finds_splits() {
        // 3-of-6 orgs (below the 2/3 bar): org triples split cleanly.
        let org_sets: Vec<QuorumSet> = (0..6)
            .map(|o| QuorumSet::majority(ids(&[o * 3, o * 3 + 1, o * 3 + 2])))
            .collect();
        let top = QuorumSet {
            threshold: 3,
            validators: vec![],
            inner: org_sets,
        };
        let all: Vec<u32> = (0..18).collect();
        let sys = uniform(top, &all);
        for opts in all_modes() {
            match find_disjoint_quorums_with(&sys, &opts).0 {
                IntersectionResult::Disjoint(a, b) => {
                    assert!(a.is_disjoint(&b), "{opts:?}");
                    assert!(sys.contains_quorum(&a), "{opts:?}");
                    assert!(sys.contains_quorum(&b), "{opts:?}");
                }
                other => panic!("expected split, got {other:?} ({opts:?})"),
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_witnesses() {
        // Heterogeneous splittable system: all modes must agree on the
        // result kind, and parallel must report the same witness as
        // sequential (lowest-subtree determinism).
        let sys = uniform(
            QuorumSet::threshold_of(3, ids(&[0, 1, 2, 3, 4, 5, 6])),
            &[0, 1, 2, 3, 4, 5, 6],
        );
        let seq = find_disjoint_quorums_with(
            &sys,
            &CheckerOptions {
                disable_symmetric_fast_path: true,
                ..CheckerOptions::default()
            },
        )
        .0;
        let par = find_disjoint_quorums_with(
            &sys,
            &CheckerOptions {
                disable_symmetric_fast_path: true,
                ..CheckerOptions::parallel(4)
            },
        )
        .0;
        assert_eq!(seq, par);
        for _ in 0..3 {
            let again = find_disjoint_quorums_with(
                &sys,
                &CheckerOptions {
                    disable_symmetric_fast_path: true,
                    ..CheckerOptions::parallel(4)
                },
            )
            .0;
            assert_eq!(par, again, "parallel witness must be stable");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn ids_vec(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    /// Brute force: enumerate every subset, collect all quorums, and
    /// test every pair for disjointness. Only viable for n ≤ ~12.
    fn brute_force_has_disjoint(sys: &FbaSystem) -> Option<bool> {
        let ids: Vec<NodeId> = sys.nodes.keys().copied().collect();
        let n = ids.len();
        assert!(n <= 12, "brute force capped at 12 nodes");
        let mut quorums: Vec<u32> = Vec::new();
        for mask in 1u32..(1 << n) {
            let set: BTreeSet<NodeId> = (0..n)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| ids[i])
                .collect();
            let is_quorum = set
                .iter()
                .all(|m| sys.nodes.get(m).is_some_and(|q| q.is_quorum_slice(&set)));
            if is_quorum {
                quorums.push(mask);
            }
        }
        if quorums.is_empty() {
            return None; // NoQuorum
        }
        Some(quorums.iter().any(|a| quorums.iter().any(|b| a & b == 0)))
    }

    fn check_against_brute_force(sys: &FbaSystem) {
        let expected = brute_force_has_disjoint(sys);
        for opts in [
            CheckerOptions::pruned(),
            CheckerOptions::memoized(),
            CheckerOptions::parallel(3),
            CheckerOptions {
                disable_symmetric_fast_path: true,
                ..CheckerOptions::default()
            },
        ] {
            let (res, _) = find_disjoint_quorums_with(sys, &opts);
            match (expected, &res) {
                (None, IntersectionResult::NoQuorum) => {}
                (Some(true), IntersectionResult::Disjoint(a, b)) => {
                    prop_assert!(a.is_disjoint(b), "{opts:?}");
                    prop_assert!(sys.contains_quorum(a), "{opts:?}");
                    prop_assert!(sys.contains_quorum(b), "{opts:?}");
                }
                (Some(false), IntersectionResult::Intersecting) => {}
                (want, got) => panic!(
                    "checker disagrees with brute force: want {want:?}, got {got:?} ({opts:?})"
                ),
            }
        }
    }

    proptest! {
        /// Uniform flat systems with threshold > n/2 always intersect
        /// (two majorities share a node).
        #[test]
        fn majority_thresholds_always_intersect(n in 2u32..9) {
            let t = n / 2 + 1;
            let q = QuorumSet::threshold_of(t, ids_vec(n));
            let sys = FbaSystem::new((0..n).map(|i| (NodeId(i), q.clone())));
            prop_assert!(enjoys_quorum_intersection(&sys));
        }

        /// Uniform flat systems with threshold ≤ n/2 always admit a split
        /// (two disjoint halves each form a quorum).
        #[test]
        fn sub_majority_thresholds_always_split(n in 2u32..9) {
            let t = (n / 2).max(1);
            let q = QuorumSet::threshold_of(t, ids_vec(n));
            let sys = FbaSystem::new((0..n).map(|i| (NodeId(i), q.clone())));
            match find_disjoint_quorums(&sys) {
                IntersectionResult::Disjoint(a, b) => {
                    prop_assert!(a.is_disjoint(&b));
                    prop_assert!(sys.contains_quorum(&a));
                    prop_assert!(sys.contains_quorum(&b));
                }
                other => prop_assert!(false, "expected split, got {:?}", other),
            }
        }

        /// All checker modes (pruned / memoized / parallel / forced
        /// search) agree with brute-force quorum enumeration on random
        /// heterogeneous flat systems.
        #[test]
        fn all_modes_match_brute_force_flat(
            thresholds in proptest::collection::vec(1u32..6, 4..10),
        ) {
            let n = thresholds.len() as u32;
            let all = ids_vec(n);
            let sys = FbaSystem::new(thresholds.iter().enumerate().map(|(i, t)| {
                (NodeId(i as u32), QuorumSet::threshold_of((*t).min(n), all.clone()))
            }));
            check_against_brute_force(&sys);
        }

        /// Same cross-check on random *nested* two-org systems, where
        /// each node's qset is a threshold over two org-majority inner
        /// sets plus direct validators.
        #[test]
        fn all_modes_match_brute_force_nested(
            split in 2usize..5,
            n in 6u32..10,
            top in 1u32..3,
        ) {
            let all = ids_vec(n);
            let (left, right) = all.split_at(split.min(all.len() - 2));
            let q = QuorumSet {
                threshold: top.min(2),
                validators: vec![],
                inner: vec![
                    QuorumSet::majority(left.to_vec()),
                    QuorumSet::majority(right.to_vec()),
                ],
            };
            let sys = FbaSystem::new((0..n).map(|i| (NodeId(i), q.clone())));
            check_against_brute_force(&sys);
        }

        /// Whatever the checker reports as disjoint quorums really are
        /// disjoint quorums (soundness of the counterexample) on random
        /// heterogeneous systems.
        #[test]
        fn counterexamples_are_sound(
            thresholds in proptest::collection::vec(1u32..6, 6..10),
        ) {
            let n = thresholds.len() as u32;
            let all = ids_vec(n);
            let sys = FbaSystem::new(thresholds.iter().enumerate().map(|(i, t)| {
                (NodeId(i as u32), QuorumSet::threshold_of((*t).min(n), all.clone()))
            }));
            match find_disjoint_quorums(&sys) {
                IntersectionResult::Disjoint(a, b) => {
                    prop_assert!(a.is_disjoint(&b));
                    prop_assert!(!a.is_empty() && !b.is_empty());
                    prop_assert!(sys.contains_quorum(&a), "A not a quorum");
                    prop_assert!(sys.contains_quorum(&b), "B not a quorum");
                }
                IntersectionResult::Intersecting | IntersectionResult::NoQuorum => {}
            }
        }

        /// The maximal quorum really is a quorum and contains every other
        /// quorum the system has.
        #[test]
        fn max_quorum_is_maximal(
            thresholds in proptest::collection::vec(1u32..5, 4..8),
        ) {
            let n = thresholds.len() as u32;
            let all = ids_vec(n);
            let sys = FbaSystem::new(thresholds.iter().enumerate().map(|(i, t)| {
                (NodeId(i as u32), QuorumSet::threshold_of((*t).min(n), all.clone()))
            }));
            let everyone: std::collections::BTreeSet<NodeId> = all.iter().copied().collect();
            let maxq = sys.max_quorum_in(&everyone);
            if !maxq.is_empty() {
                prop_assert!(sys.contains_quorum(&maxq));
            }
        }
    }
}

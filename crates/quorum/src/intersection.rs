//! Quorum-intersection checking (paper §6.2.1).
//!
//! "While gathering quorum slices is easy, finding disjoint quorums among
//! them is co-NP-hard. However, we adopted a set of algorithmic heuristics
//! and case-elimination rules proposed by Lachowski that check typical
//! instances of the problem several orders of magnitude faster than the
//! worst-case cost."
//!
//! The checker here follows the same playbook:
//!
//! 1. restrict to nodes that can appear in *some* quorum (prune nodes whose
//!    slices cannot be satisfied at all);
//! 2. compute strongly connected components of the trust digraph
//!    (`u → v` iff `v` appears in `u`'s quorum set) — every quorum is
//!    contained in the downward closure of one SCC, and any two quorums in
//!    *different* sink-reachable SCCs are disjoint, giving an immediate
//!    counterexample;
//! 3. inside the single candidate SCC, branch-and-bound over a two-way
//!    partition with quorum-embedding pruning: a branch `(A, B, undecided)`
//!    survives only while both `A ∪ undecided` and `B ∪ undecided` still
//!    contain quorums.

use std::collections::{BTreeMap, BTreeSet};
use stellar_scp::quorum::{find_quorum, QuorumSetMap};
use stellar_scp::{NodeId, QuorumSet};

/// An FBA system: every known node's declared quorum set.
#[derive(Clone, Debug, Default)]
pub struct FbaSystem {
    /// Per-node quorum sets.
    pub nodes: BTreeMap<NodeId, QuorumSet>,
}

impl QuorumSetMap for FbaSystem {
    fn quorum_set(&self, node: NodeId) -> Option<&QuorumSet> {
        self.nodes.get(&node)
    }
}

impl FbaSystem {
    /// Builds a system from `(node, qset)` pairs.
    pub fn new(entries: impl IntoIterator<Item = (NodeId, QuorumSet)>) -> FbaSystem {
        FbaSystem {
            nodes: entries.into_iter().collect(),
        }
    }

    /// All node ids in the system.
    pub fn ids(&self) -> BTreeSet<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Whether `set` contains a quorum of this system.
    pub fn contains_quorum(&self, set: &BTreeSet<NodeId>) -> bool {
        !find_quorum(self, set).is_empty()
    }

    /// The maximal quorum within `set` (empty if none).
    pub fn max_quorum_in(&self, set: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        find_quorum(self, set)
    }
}

/// Outcome of a disjoint-quorum search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntersectionResult {
    /// Every pair of quorums intersects.
    Intersecting,
    /// Two disjoint quorums exist — the network can diverge.
    Disjoint(BTreeSet<NodeId>, BTreeSet<NodeId>),
    /// No quorum exists at all (degenerate configuration).
    NoQuorum,
}

/// Checks whether the system enjoys quorum intersection.
pub fn enjoys_quorum_intersection(sys: &FbaSystem) -> bool {
    matches!(find_disjoint_quorums(sys), IntersectionResult::Intersecting)
}

/// Searches for two disjoint quorums, returning them if found.
pub fn find_disjoint_quorums(sys: &FbaSystem) -> IntersectionResult {
    let all = sys.ids();
    let core = sys.max_quorum_in(&all);
    if core.is_empty() {
        return IntersectionResult::NoQuorum;
    }

    // SCC case elimination: two different SCCs each containing a quorum
    // yield disjoint quorums directly.
    let sccs = trust_sccs(sys, &core);
    let mut quorum_sccs: Vec<BTreeSet<NodeId>> = Vec::new();
    for scc in &sccs {
        let q = sys.max_quorum_in(scc);
        if !q.is_empty() {
            quorum_sccs.push(q);
        }
    }
    if quorum_sccs.len() >= 2 {
        return IntersectionResult::Disjoint(quorum_sccs[0].clone(), quorum_sccs[1].clone());
    }

    // Branch and bound within the candidate node set. Quorums can span
    // SCC boundaries only downward, and `core` (the maximal quorum) is the
    // union of all quorums, so the search space is `core`.
    let nodes: Vec<NodeId> = core.iter().copied().collect();
    let mut a = BTreeSet::new();
    let mut b = BTreeSet::new();
    match split_search(sys, &nodes, 0, &mut a, &mut b) {
        Some((qa, qb)) => IntersectionResult::Disjoint(qa, qb),
        None => IntersectionResult::Intersecting,
    }
}

/// Recursive two-way partition search with embedding pruning.
fn split_search(
    sys: &FbaSystem,
    nodes: &[NodeId],
    idx: usize,
    a: &mut BTreeSet<NodeId>,
    b: &mut BTreeSet<NodeId>,
) -> Option<(BTreeSet<NodeId>, BTreeSet<NodeId>)> {
    // Success test on committed sets: both sides already contain quorums.
    let qa = sys.max_quorum_in(a);
    if !qa.is_empty() {
        let qb = sys.max_quorum_in(b);
        if !qb.is_empty() {
            return Some((qa, qb));
        }
    }
    if idx == nodes.len() {
        return None;
    }
    // Pruning: each side plus all undecided nodes must still embed a
    // quorum, otherwise this branch can never succeed.
    let undecided: BTreeSet<NodeId> = nodes[idx..].iter().copied().collect();
    let a_potential: BTreeSet<NodeId> = a.union(&undecided).copied().collect();
    if !sys.contains_quorum(&a_potential) {
        return None;
    }
    let b_potential: BTreeSet<NodeId> = b.union(&undecided).copied().collect();
    if !sys.contains_quorum(&b_potential) {
        return None;
    }

    let n = nodes[idx];
    // Symmetry breaking: the first node always goes to side A.
    a.insert(n);
    if let Some(hit) = split_search(sys, nodes, idx + 1, a, b) {
        return Some(hit);
    }
    a.remove(&n);
    if idx > 0 || !b.is_empty() {
        b.insert(n);
        if let Some(hit) = split_search(sys, nodes, idx + 1, a, b) {
            return Some(hit);
        }
        b.remove(&n);
    }
    None
}

/// Strongly connected components of the trust digraph restricted to
/// `within` (iterative Tarjan).
pub fn trust_sccs(sys: &FbaSystem, within: &BTreeSet<NodeId>) -> Vec<BTreeSet<NodeId>> {
    // Build adjacency restricted to `within`.
    let idx_of: BTreeMap<NodeId, usize> = within
        .iter()
        .copied()
        .enumerate()
        .map(|(i, n)| (n, i))
        .collect();
    let nodes: Vec<NodeId> = within.iter().copied().collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| {
            sys.nodes
                .get(n)
                .map(|q| {
                    q.all_validators()
                        .into_iter()
                        .filter_map(|v| idx_of.get(&v).copied())
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();

    // Iterative Tarjan's algorithm.
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<BTreeSet<NodeId>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Call stack of (node, next-child-position).
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = BTreeSet::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.insert(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn uniform(qset: QuorumSet, nodes: &[u32]) -> FbaSystem {
        FbaSystem::new(nodes.iter().map(|&n| (NodeId(n), qset.clone())))
    }

    #[test]
    fn majority_of_four_intersects() {
        let sys = uniform(QuorumSet::majority(ids(&[0, 1, 2, 3])), &[0, 1, 2, 3]);
        assert!(enjoys_quorum_intersection(&sys));
    }

    #[test]
    fn half_threshold_splits() {
        // 2-of-4 slices: {0,1} and {2,3} are disjoint quorums.
        let sys = uniform(
            QuorumSet::threshold_of(2, ids(&[0, 1, 2, 3])),
            &[0, 1, 2, 3],
        );
        match find_disjoint_quorums(&sys) {
            IntersectionResult::Disjoint(a, b) => {
                assert!(a.is_disjoint(&b));
                assert!(sys.contains_quorum(&a));
                assert!(sys.contains_quorum(&b));
            }
            other => panic!("expected disjoint quorums, got {other:?}"),
        }
    }

    #[test]
    fn two_islands_split_via_scc_rule() {
        // Two self-contained cliques that never reference each other.
        let mut sys = uniform(QuorumSet::majority(ids(&[0, 1, 2])), &[0, 1, 2]);
        let island2 = uniform(QuorumSet::majority(ids(&[3, 4, 5])), &[3, 4, 5]);
        sys.nodes.extend(island2.nodes);
        match find_disjoint_quorums(&sys) {
            IntersectionResult::Disjoint(a, b) => assert!(a.is_disjoint(&b)),
            other => panic!("expected disjoint, got {other:?}"),
        }
    }

    #[test]
    fn no_quorum_detected() {
        // Node 0 requires node 1, whose qset is unknown.
        let sys = FbaSystem::new([(NodeId(0), QuorumSet::threshold_of(2, ids(&[0, 1])))]);
        assert_eq!(find_disjoint_quorums(&sys), IntersectionResult::NoQuorum);
    }

    #[test]
    fn byzantine_threshold_intersects() {
        for n in [4u32, 7, 10, 13] {
            let nodes: Vec<u32> = (0..n).collect();
            let sys = uniform(QuorumSet::byzantine(ids(&nodes)), &nodes);
            assert!(enjoys_quorum_intersection(&sys), "n = {n}");
        }
    }

    #[test]
    fn tiered_production_like_topology_intersects() {
        // 3 orgs of 3 validators, org slices 2-of-3, top 2-of-3 orgs —
        // the Fig. 6 shape at small scale.
        let orgs: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]];
        let org_sets: Vec<QuorumSet> = orgs
            .iter()
            .map(|o| QuorumSet::threshold_of(2, ids(o)))
            .collect();
        let top = QuorumSet {
            threshold: 2,
            validators: vec![],
            inner: org_sets,
        };
        let all: Vec<u32> = (0..9).collect();
        let sys = uniform(top, &all);
        assert!(enjoys_quorum_intersection(&sys));
    }

    #[test]
    fn lopsided_trust_still_intersects() {
        // Everyone requires node 0 plus a majority: all quorums contain 0.
        let mut sys = FbaSystem::default();
        for n in 0..5u32 {
            let q = QuorumSet::threshold_of(3, ids(&[0, 1, 2, 3, 4]));
            // Node 0 mandatory: wrap as 2-of-{0, majority-set}.
            let wrapped = QuorumSet {
                threshold: 2,
                validators: vec![NodeId(0)],
                inner: vec![q],
            };
            sys.nodes.insert(NodeId(n), wrapped);
        }
        assert!(enjoys_quorum_intersection(&sys));
    }

    #[test]
    fn scc_computation_basic() {
        // 0 → 1 → 2 → 0 cycle plus a dangling 3 → 0.
        let mut sys = FbaSystem::default();
        sys.nodes
            .insert(NodeId(0), QuorumSet::threshold_of(1, ids(&[1])));
        sys.nodes
            .insert(NodeId(1), QuorumSet::threshold_of(1, ids(&[2])));
        sys.nodes
            .insert(NodeId(2), QuorumSet::threshold_of(1, ids(&[0])));
        sys.nodes
            .insert(NodeId(3), QuorumSet::threshold_of(1, ids(&[0])));
        let within: BTreeSet<NodeId> = ids(&[0, 1, 2, 3]).into_iter().collect();
        let sccs = trust_sccs(&sys, &within);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = sccs.iter().map(|c| c.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 3]);
    }

    #[test]
    fn checker_handles_25_node_tiered_closure_quickly() {
        // Production-like scale from §6.2.1: ~25 nodes in the closure.
        let mut org_sets = Vec::new();
        let mut all = Vec::new();
        for org in 0..5u32 {
            let members: Vec<u32> = (org * 5..org * 5 + 5).collect();
            all.extend(members.clone());
            org_sets.push(QuorumSet::threshold_of(3, ids(&members)));
        }
        let top = QuorumSet {
            threshold: 4,
            validators: vec![],
            inner: org_sets,
        };
        let sys = uniform(top, &all);
        let start = std::time::Instant::now();
        assert!(enjoys_quorum_intersection(&sys));
        assert!(
            start.elapsed().as_secs() < 30,
            "checker too slow: {:?}",
            start.elapsed()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn ids_vec(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    proptest! {
        /// Uniform flat systems with threshold > n/2 always intersect
        /// (two majorities share a node).
        #[test]
        fn majority_thresholds_always_intersect(n in 2u32..9) {
            let t = n / 2 + 1;
            let q = QuorumSet::threshold_of(t, ids_vec(n));
            let sys = FbaSystem::new((0..n).map(|i| (NodeId(i), q.clone())));
            prop_assert!(enjoys_quorum_intersection(&sys));
        }

        /// Uniform flat systems with threshold ≤ n/2 always admit a split
        /// (two disjoint halves each form a quorum).
        #[test]
        fn sub_majority_thresholds_always_split(n in 2u32..9) {
            let t = (n / 2).max(1);
            let q = QuorumSet::threshold_of(t, ids_vec(n));
            let sys = FbaSystem::new((0..n).map(|i| (NodeId(i), q.clone())));
            match find_disjoint_quorums(&sys) {
                IntersectionResult::Disjoint(a, b) => {
                    prop_assert!(a.is_disjoint(&b));
                    prop_assert!(sys.contains_quorum(&a));
                    prop_assert!(sys.contains_quorum(&b));
                }
                other => prop_assert!(false, "expected split, got {:?}", other),
            }
        }

        /// Whatever the checker reports as disjoint quorums really are
        /// disjoint quorums (soundness of the counterexample) on random
        /// heterogeneous systems.
        #[test]
        fn counterexamples_are_sound(
            thresholds in proptest::collection::vec(1u32..6, 6..10),
        ) {
            let n = thresholds.len() as u32;
            let all = ids_vec(n);
            let sys = FbaSystem::new(thresholds.iter().enumerate().map(|(i, t)| {
                (NodeId(i as u32), QuorumSet::threshold_of((*t).min(n), all.clone()))
            }));
            match find_disjoint_quorums(&sys) {
                IntersectionResult::Disjoint(a, b) => {
                    prop_assert!(a.is_disjoint(&b));
                    prop_assert!(!a.is_empty() && !b.is_empty());
                    prop_assert!(sys.contains_quorum(&a), "A not a quorum");
                    prop_assert!(sys.contains_quorum(&b), "B not a quorum");
                }
                IntersectionResult::Intersecting | IntersectionResult::NoQuorum => {}
            }
        }

        /// The maximal quorum really is a quorum and contains every other
        /// quorum the system has.
        #[test]
        fn max_quorum_is_maximal(
            thresholds in proptest::collection::vec(1u32..5, 4..8),
        ) {
            let n = thresholds.len() as u32;
            let all = ids_vec(n);
            let sys = FbaSystem::new(thresholds.iter().enumerate().map(|(i, t)| {
                (NodeId(i as u32), QuorumSet::threshold_of((*t).min(n), all.clone()))
            }));
            let everyone: std::collections::BTreeSet<NodeId> = all.iter().copied().collect();
            let maxq = sys.max_quorum_in(&everyone);
            if !maxq.is_empty() {
                prop_assert!(sys.contains_quorum(&maxq));
            }
        }
    }
}

//! Quorum health analysis for FBA configurations (paper §6).
//!
//! The Stellar network's 2019 outage (§6) taught two lessons this crate
//! encodes:
//!
//! 1. **Misconfiguration must be detected proactively.** Waiting to observe
//!    divergence is too late — so validators continuously gather the
//!    collective configuration of their transitive closure and check it for
//!    *disjoint quorums* ([`intersection`]), and further for *criticality*:
//!    being one misconfiguration away from admitting disjoint quorums
//!    ([`criticality`]).
//! 2. **Raw nested quorum sets are too easy to get wrong.** The replacement
//!    configuration model groups validators by organization and labels each
//!    organization with a quality tier; safe nested quorum sets are then
//!    *synthesized* mechanically ([`tiers`], Fig. 6).
//!
//! Checking quorum intersection is co-NP-hard in general (Lachowski 2019),
//! but the heuristics implemented here — strongly-connected-component
//! reduction followed by branch-and-bound with quorum-embedding pruning —
//! check realistic configurations (the production closure is 20–30 nodes)
//! in milliseconds to seconds, reproducing the §6.2.1 experience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criticality;
pub mod intersection;
pub mod tiers;
pub mod topology;

pub use criticality::{check_criticality, CriticalityReport};
pub use intersection::{
    enjoys_quorum_intersection, find_disjoint_quorums, find_disjoint_quorums_with, CheckStats,
    CheckerOptions, FbaSystem, IntersectionResult,
};
pub use tiers::{synthesize_quorum_set, OrgConfig, Quality};
pub use topology::{generate, GeneratedTopology, TopologyFamily, TopologySpec};

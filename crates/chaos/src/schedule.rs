//! The fault-schedule DSL: a timed, deterministic script of faults.
//!
//! A schedule is built once, up front, with the builder API and then
//! consumed by the [`crate::runner::ChaosRun`] as simulated time advances.
//! Every action carries an absolute simulated timestamp; the runner
//! applies an action immediately before the first simulation event at or
//! after that timestamp, so the same schedule against the same seed
//! always interleaves with traffic identically — the property that makes
//! chaos findings replayable.
//!
//! ```
//! use stellar_chaos::schedule::FaultSchedule;
//! use stellar_overlay::LinkFault;
//! use stellar_scp::NodeId;
//!
//! let schedule = FaultSchedule::builder()
//!     .crash_at(10_000, NodeId(3))
//!     .revive_at(25_000, NodeId(3))
//!     .partition_at(
//!         30_000,
//!         vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
//!         Some(45_000),
//!     )
//!     .link_fault_at(5_000, NodeId(0), NodeId(1), LinkFault::none().with_drop(0.2))
//!     .build();
//! assert_eq!(schedule.len(), 4);
//! ```

use stellar_overlay::LinkFault;
use stellar_scp::{NodeId, QuorumSet};

/// One scripted fault action.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Fail-stop the node: no sends, receives, or timers.
    Crash(NodeId),
    /// Bring a crashed node back. Revival is a full crash-restart: the
    /// node rebuilds from its durable store and history archive, not
    /// from pre-crash RAM.
    Revive(NodeId),
    /// Crash-restart the node in place (atomic reboot): in-memory state
    /// is wiped and rebuilt from the durable store + archives alone.
    Restart(NodeId),
    /// Arm `count` failing fsyncs on the node's durable store — the
    /// write-ahead gate must withhold envelopes until a sync succeeds.
    FailFsync {
        /// The node whose disk misbehaves.
        node: NodeId,
        /// How many consecutive fsyncs fail.
        count: u32,
    },
    /// Arm a torn write: the node's next crash commits only a strict
    /// prefix of its oldest unsynced durable record.
    TornWrite(NodeId),
    /// Partition the network into the given groups; unlisted nodes form
    /// one implicit extra group. `heal_at_ms` lifts it automatically.
    Partition {
        /// The connectivity groups.
        groups: Vec<Vec<NodeId>>,
        /// Absolute simulated time at which the partition heals, if any.
        heal_at_ms: Option<u64>,
    },
    /// Heal any active partition now.
    Heal,
    /// Install a fault model on the directed link `from -> to`.
    LinkFault {
        /// Sending side.
        from: NodeId,
        /// Receiving side.
        to: NodeId,
        /// The fault model (drop/duplicate/delay/reorder probabilities).
        fault: LinkFault,
    },
    /// Install a fault model on every link without a per-link override.
    DefaultLinkFault(LinkFault),
    /// Remove all link-fault models (partitions are unaffected).
    ClearLinkFaults,
    /// Replace a node's quorum set at runtime — the halt-and-reconfigure
    /// self-healing action: after a staged org failure, survivors receive
    /// a freshly synthesized configuration that excludes the dead orgs.
    Reconfigure {
        /// The node receiving the new configuration.
        node: NodeId,
        /// Its new quorum set.
        qset: QuorumSet,
    },
    /// Marks the start of a cascade-campaign stage; routed to the
    /// invariant monitor so violations and intactness collapse are
    /// attributed to the org failure that triggered them.
    StageMark {
        /// 1-based stage number.
        stage: usize,
        /// Human-readable label (the failing org).
        label: String,
    },
}

/// A timestamped [`FaultAction`].
#[derive(Clone, Debug)]
pub struct ScheduledFault {
    /// Absolute simulated time (ms) the action applies at.
    pub at_ms: u64,
    /// What happens.
    pub action: FaultAction,
}

/// An immutable, time-ordered fault script. Build with
/// [`FaultSchedule::builder`]; consume with [`FaultSchedule::pop_due`].
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    /// Sorted ascending by `at_ms`; `next` indexes the first unapplied
    /// entry.
    entries: Vec<ScheduledFault>,
    next: usize,
}

impl FaultSchedule {
    /// Starts building a schedule.
    pub fn builder() -> FaultScheduleBuilder {
        FaultScheduleBuilder {
            entries: Vec::new(),
        }
    }

    /// An empty schedule (no scripted faults).
    pub fn empty() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Total number of scripted actions (applied or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no actions were scripted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of actions not yet popped.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.next
    }

    /// Time of the next unapplied action, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.entries.get(self.next).map(|e| e.at_ms)
    }

    /// Every scripted action in time order, applied or not (the runner
    /// scans this up front to pre-register expected downtime windows).
    pub fn entries(&self) -> &[ScheduledFault] {
        &self.entries
    }

    /// Pops the next action if it is due at or before `now_ms`. Call in a
    /// loop to drain everything due.
    pub fn pop_due(&mut self, now_ms: u64) -> Option<ScheduledFault> {
        match self.entries.get(self.next) {
            Some(e) if e.at_ms <= now_ms => {
                self.next += 1;
                Some(e.clone())
            }
            _ => None,
        }
    }
}

/// Builder for [`FaultSchedule`]; every method takes an absolute
/// simulated timestamp in milliseconds. Actions may be added in any
/// order — the build step stable-sorts by time, so same-instant actions
/// apply in insertion order.
#[derive(Debug)]
pub struct FaultScheduleBuilder {
    entries: Vec<ScheduledFault>,
}

impl FaultScheduleBuilder {
    fn push(mut self, at_ms: u64, action: FaultAction) -> Self {
        self.entries.push(ScheduledFault { at_ms, action });
        self
    }

    /// Crash `node` at `at_ms`.
    pub fn crash_at(self, at_ms: u64, node: NodeId) -> Self {
        self.push(at_ms, FaultAction::Crash(node))
    }

    /// Revive `node` at `at_ms`.
    pub fn revive_at(self, at_ms: u64, node: NodeId) -> Self {
        self.push(at_ms, FaultAction::Revive(node))
    }

    /// Crash-restart `node` in place at `at_ms` (atomic reboot).
    pub fn restart_at(self, at_ms: u64, node: NodeId) -> Self {
        self.push(at_ms, FaultAction::Restart(node))
    }

    /// Make `node`'s next `count` fsyncs fail, starting at `at_ms`.
    pub fn fail_fsyncs_at(self, at_ms: u64, node: NodeId, count: u32) -> Self {
        self.push(at_ms, FaultAction::FailFsync { node, count })
    }

    /// Arm a torn write on `node`'s next crash, at `at_ms`.
    pub fn torn_write_at(self, at_ms: u64, node: NodeId) -> Self {
        self.push(at_ms, FaultAction::TornWrite(node))
    }

    /// Partition the network at `at_ms`; heal automatically at
    /// `heal_at_ms` when given.
    pub fn partition_at(
        self,
        at_ms: u64,
        groups: Vec<Vec<NodeId>>,
        heal_at_ms: Option<u64>,
    ) -> Self {
        self.push(at_ms, FaultAction::Partition { groups, heal_at_ms })
    }

    /// Heal any active partition at `at_ms`.
    pub fn heal_at(self, at_ms: u64) -> Self {
        self.push(at_ms, FaultAction::Heal)
    }

    /// Install `fault` on the directed link `from -> to` at `at_ms`.
    pub fn link_fault_at(self, at_ms: u64, from: NodeId, to: NodeId, fault: LinkFault) -> Self {
        self.push(at_ms, FaultAction::LinkFault { from, to, fault })
    }

    /// Install `fault` as the all-links default at `at_ms`.
    pub fn default_link_fault_at(self, at_ms: u64, fault: LinkFault) -> Self {
        self.push(at_ms, FaultAction::DefaultLinkFault(fault))
    }

    /// Remove every link-fault model at `at_ms`.
    pub fn clear_link_faults_at(self, at_ms: u64) -> Self {
        self.push(at_ms, FaultAction::ClearLinkFaults)
    }

    /// Replace `node`'s quorum set at `at_ms` (halt-and-reconfigure).
    pub fn reconfigure_at(self, at_ms: u64, node: NodeId, qset: QuorumSet) -> Self {
        self.push(at_ms, FaultAction::Reconfigure { node, qset })
    }

    /// Mark cascade stage `stage` (`label` names the failing org) at
    /// `at_ms`. Place the mark at or before the stage's first crash so
    /// everything that follows is attributed to it.
    pub fn stage_mark_at(self, at_ms: u64, stage: usize, label: &str) -> Self {
        self.push(
            at_ms,
            FaultAction::StageMark {
                stage,
                label: label.to_string(),
            },
        )
    }

    /// Finalizes the schedule (stable sort by timestamp).
    pub fn build(mut self) -> FaultSchedule {
        self.entries.sort_by_key(|e| e.at_ms);
        FaultSchedule {
            entries: self.entries,
            next: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_by_time_stably() {
        let mut s = FaultSchedule::builder()
            .revive_at(20_000, NodeId(1))
            .crash_at(5_000, NodeId(1))
            .heal_at(5_000) // same instant as the crash, added later
            .build();
        assert_eq!(s.len(), 3);
        let first = s.pop_due(5_000).unwrap();
        assert!(matches!(first.action, FaultAction::Crash(NodeId(1))));
        let second = s.pop_due(5_000).unwrap();
        assert!(matches!(second.action, FaultAction::Heal));
        assert!(s.pop_due(5_000).is_none(), "revive not due yet");
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.peek_time(), Some(20_000));
    }

    #[test]
    fn pop_due_drains_everything_at_or_before_now() {
        let mut s = FaultSchedule::builder()
            .crash_at(1_000, NodeId(0))
            .crash_at(2_000, NodeId(1))
            .crash_at(9_000, NodeId(2))
            .build();
        let mut popped = 0;
        while s.pop_due(2_500).is_some() {
            popped += 1;
        }
        assert_eq!(popped, 2);
        assert_eq!(s.remaining(), 1);
    }
}

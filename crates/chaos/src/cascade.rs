//! Cascading-failure campaigns and the survival frontier.
//!
//! A cascade campaign stages organization failures against a generated
//! FBAS topology (see `stellar_quorum::topology`) and asks the two
//! questions the paper's §4 guarantees reduce to under attrition:
//!
//! 1. **How deep can the failure run before the guarantees lapse?** —
//!    the *survival frontier*: the largest prefix of the staged failure
//!    sequence under which the surviving system still has a live quorum
//!    (or can self-heal into one) and still enjoys quorum intersection
//!    among the survivors.
//! 2. **Who gets dragged down?** — orgs that never failed but whose
//!    slices depended on the failed ones lose their quorums anyway (the
//!    Kim/Kwon/Kim cascade); the fixpoint here names them per stage.
//!
//! The module has two halves that cross-check each other:
//!
//! - [`CascadePlan`] compiles a campaign into a [`FaultSchedule`] —
//!   stage marks, per-validator crashes, and optionally a
//!   halt-and-reconfigure heal — to run against a real simulation,
//!   where the invariant monitor observes the frontier empirically.
//! - [`analyze_cascade`] computes the same frontier analytically from
//!   the quorum structure alone (no simulation), which scales to the
//!   500-org topologies of experiment E21 where simulating every
//!   validator is infeasible.

use crate::schedule::{FaultSchedule, FaultScheduleBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;
use stellar_quorum::criticality::delete_nodes;
use stellar_quorum::intersection::{FbaSystem, IntersectionResult};
use stellar_quorum::tiers::{synthesize_all, OrgConfig};
use stellar_quorum::{find_disjoint_quorums_with, CheckerOptions, GeneratedTopology};
use stellar_scp::NodeId;
use stellar_telemetry::Json;

/// In what order the campaign fails organizations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CascadeOrder {
    /// A seeded uniform shuffle of the org list — the "random attrition"
    /// campaign.
    Random,
    /// Highest trust quality first (ties broken by org order) — the
    /// adversarial campaign that aims straight at the tier-one clique.
    TopTierFirst,
}

/// A staged org-failure campaign against one generated topology.
#[derive(Clone, Copy, Debug)]
pub struct CascadePlan {
    /// Failure order.
    pub order: CascadeOrder,
    /// How many orgs fail, one per stage (clamped to the org count).
    pub n_stages: usize,
    /// Simulated time of the first stage (ms).
    pub start_ms: u64,
    /// Gap between successive stages (ms).
    pub stage_interval_ms: u64,
    /// When set, survivors halt-and-reconfigure at this time: every
    /// still-standing validator receives a freshly synthesized quorum
    /// set over the surviving orgs only.
    pub heal_at_ms: Option<u64>,
    /// Seed for the failure-order shuffle (only `Random` consumes it).
    pub seed: u64,
}

/// One stage of a compiled campaign: which org dies, and when.
#[derive(Clone, Debug)]
pub struct CascadeStage {
    /// 1-based stage number.
    pub stage: usize,
    /// The failing org's name.
    pub org: String,
    /// Simulated time the stage fires (ms).
    pub at_ms: u64,
    /// The org's validators (all crash at `at_ms`).
    pub validators: Vec<NodeId>,
}

impl CascadePlan {
    /// Orders the topology's orgs per [`CascadeOrder`] and takes the
    /// first `n_stages` as the campaign's staged failures.
    pub fn stages(&self, topo: &GeneratedTopology) -> Vec<CascadeStage> {
        let mut order: Vec<usize> = (0..topo.orgs.len()).collect();
        match self.order {
            CascadeOrder::Random => {
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0xca5c_ade0);
                order.shuffle(&mut rng);
            }
            CascadeOrder::TopTierFirst => {
                // Stable: equal-quality orgs keep generator order.
                order.sort_by_key(|&i| std::cmp::Reverse(topo.orgs[i].quality));
            }
        }
        order
            .into_iter()
            .take(self.n_stages.min(topo.orgs.len()))
            .enumerate()
            .map(|(k, i)| CascadeStage {
                stage: k + 1,
                org: topo.orgs[i].name.clone(),
                at_ms: self.start_ms + k as u64 * self.stage_interval_ms,
                validators: topo.orgs[i].validators.clone(),
            })
            .collect()
    }

    /// Compiles the campaign into a runnable fault schedule: per stage a
    /// [`crate::schedule::FaultAction::StageMark`] followed by a crash of
    /// every validator of the failing org, plus — when `heal_at_ms` is
    /// set — a halt-and-reconfigure step that hands every surviving
    /// validator a quorum set synthesized over the surviving orgs only.
    pub fn schedule(&self, topo: &GeneratedTopology) -> FaultSchedule {
        let stages = self.stages(topo);
        let mut b = FaultSchedule::builder();
        for s in &stages {
            b = b.stage_mark_at(s.at_ms, s.stage, &s.org);
            for v in &s.validators {
                b = b.crash_at(s.at_ms, *v);
            }
        }
        if let Some(heal_ms) = self.heal_at_ms {
            b = schedule_heal(b, topo, &stages, heal_ms);
        }
        b.build()
    }
}

/// Appends the halt-and-reconfigure step: synthesizes a fresh Fig. 6
/// configuration over the orgs that survive every stage and schedules a
/// [`crate::schedule::FaultAction::Reconfigure`] for each surviving
/// validator at `heal_ms`.
fn schedule_heal(
    mut b: FaultScheduleBuilder,
    topo: &GeneratedTopology,
    stages: &[CascadeStage],
    heal_ms: u64,
) -> FaultScheduleBuilder {
    let failed: BTreeSet<&str> = stages.iter().map(|s| s.org.as_str()).collect();
    let survivors: Vec<OrgConfig> = topo
        .orgs
        .iter()
        .filter(|o| !failed.contains(o.name.as_str()))
        .cloned()
        .collect();
    if survivors.is_empty() {
        return b; // Nobody left to heal.
    }
    for (node, qset) in synthesize_all(&survivors) {
        b = b.reconfigure_at(heal_ms, node, qset);
    }
    b
}

/// The analytic verdict for one cumulative failure prefix.
#[derive(Clone, Debug)]
pub struct StageAnalysis {
    /// 1-based stage number.
    pub stage: usize,
    /// The org that failed at this stage.
    pub org: String,
    /// Validators failed so far (cumulative).
    pub failed_validators: usize,
    /// Whether the survivors still contain a quorum.
    pub live: bool,
    /// Whether the survivors (slices pruned of the failed nodes) still
    /// enjoy quorum intersection.
    pub safe: bool,
    /// Orgs that did *not* fail but fell out of the maximal surviving
    /// quorum anyway — dragged down by slice dependencies.
    pub cascaded_orgs: Vec<String>,
    /// Whether halt-and-reconfigure over the surviving orgs would
    /// restore a live, intersecting configuration.
    pub heal_live: bool,
}

/// The analytic survival-frontier verdict for a full campaign.
#[derive(Clone, Debug)]
pub struct CascadeAnalysis {
    /// Per-prefix verdicts, one per stage.
    pub stages: Vec<StageAnalysis>,
    /// Largest `k` such that after every prefix of `k` stages the system
    /// stays safe and either live or healable.
    pub frontier: usize,
    /// The first stage past the frontier and its org, when the campaign
    /// runs deep enough to find one.
    pub first_fatal: Option<(usize, String)>,
}

impl CascadeAnalysis {
    /// Renders the analysis for the bench exporter.
    pub fn to_json(&self) -> Json {
        let stages: Vec<Json> = self
            .stages
            .iter()
            .map(|s| {
                Json::obj()
                    .set("stage", s.stage)
                    .set("org", s.org.as_str())
                    .set("failed_validators", s.failed_validators)
                    .set("live", s.live)
                    .set("safe", s.safe)
                    .set(
                        "cascaded_orgs",
                        Json::Arr(
                            s.cascaded_orgs
                                .iter()
                                .map(|o| Json::from(o.as_str()))
                                .collect(),
                        ),
                    )
                    .set("heal_live", s.heal_live)
            })
            .collect();
        let mut doc = Json::obj()
            .set("stages", Json::Arr(stages))
            .set("frontier", self.frontier);
        doc = match &self.first_fatal {
            Some((stage, org)) => doc.set(
                "first_fatal",
                Json::obj().set("stage", *stage).set("org", org.as_str()),
            ),
            None => doc.set("first_fatal", Json::Null),
        };
        doc
    }
}

/// Computes the survival frontier analytically: for every cumulative
/// prefix of `stages`, checks liveness (survivors embed a quorum),
/// safety (quorum intersection among survivors with failed nodes pruned
/// from every slice), cascaded orgs (non-failed orgs with no validator
/// in the maximal surviving quorum), and healability (a resynthesized
/// configuration over surviving orgs is live and intersecting).
///
/// Everything is derived from the quorum structure, so this scales to
/// topologies far beyond what the simulator can run — `opts` selects
/// the checker mode exactly as in `find_disjoint_quorums_with`.
pub fn analyze_cascade(
    topo: &GeneratedTopology,
    stages: &[CascadeStage],
    opts: &CheckerOptions,
) -> CascadeAnalysis {
    let all = topo.system.ids();
    let mut failed_orgs: BTreeSet<&str> = BTreeSet::new();
    let mut failed: BTreeSet<NodeId> = BTreeSet::new();
    let mut out = Vec::with_capacity(stages.len());
    let mut frontier = 0usize;
    let mut first_fatal = None;
    for s in stages {
        failed_orgs.insert(s.org.as_str());
        failed.extend(s.validators.iter().copied());
        let alive: BTreeSet<NodeId> = all.difference(&failed).copied().collect();
        let surviving_quorum = topo.system.max_quorum_in(&alive);
        let live = !surviving_quorum.is_empty();
        // Safety among survivors: prune the failed nodes out of every
        // surviving slice (the DSet construction) and check that the
        // what's left still enjoys quorum intersection. An empty
        // survivor set is vacuously safe.
        let pruned = FbaSystem::new(
            topo.system
                .nodes
                .iter()
                .filter(|(id, _)| !failed.contains(id))
                .map(|(id, q)| (*id, delete_nodes(q, &failed))),
        );
        let (verdict, _) = find_disjoint_quorums_with(&pruned, opts);
        let safe = !matches!(verdict, IntersectionResult::Disjoint(_, _));
        // Orgs nobody crashed but that dropped out of the surviving
        // quorum anyway: the cascade.
        let mut cascaded: BTreeSet<&str> = BTreeSet::new();
        for org in &topo.orgs {
            if failed_orgs.contains(org.name.as_str()) {
                continue;
            }
            if !org.validators.iter().any(|v| surviving_quorum.contains(v)) {
                cascaded.insert(org.name.as_str());
            }
        }
        let heal_live = heal_is_live(topo, &failed_orgs, opts);
        let ok = safe && (live || heal_live);
        if ok && first_fatal.is_none() {
            frontier = s.stage;
        } else if first_fatal.is_none() {
            first_fatal = Some((s.stage, s.org.clone()));
        }
        out.push(StageAnalysis {
            stage: s.stage,
            org: s.org.clone(),
            failed_validators: failed.len(),
            live,
            safe,
            cascaded_orgs: cascaded.into_iter().map(str::to_string).collect(),
            heal_live,
        });
    }
    CascadeAnalysis {
        stages: out,
        frontier,
        first_fatal,
    }
}

/// Whether a halt-and-reconfigure over the surviving orgs yields a
/// configuration that is both live and intersecting.
fn heal_is_live(
    topo: &GeneratedTopology,
    failed_orgs: &BTreeSet<&str>,
    opts: &CheckerOptions,
) -> bool {
    let survivors: Vec<OrgConfig> = topo
        .orgs
        .iter()
        .filter(|o| !failed_orgs.contains(o.name.as_str()))
        .cloned()
        .collect();
    if survivors.is_empty() {
        return false;
    }
    let healed = FbaSystem::new(synthesize_all(&survivors));
    if healed.max_quorum_in(&healed.ids()).is_empty() {
        return false;
    }
    let (verdict, _) = find_disjoint_quorums_with(&healed, opts);
    matches!(verdict, IntersectionResult::Intersecting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultAction;
    use stellar_quorum::{generate, TopologyFamily, TopologySpec};

    fn plan(order: CascadeOrder, n_stages: usize) -> CascadePlan {
        CascadePlan {
            order,
            n_stages,
            start_ms: 10_000,
            stage_interval_ms: 5_000,
            heal_at_ms: None,
            seed: 7,
        }
    }

    #[test]
    fn stages_are_deterministic_and_ordered() {
        let topo = generate(&TopologySpec::new(TopologyFamily::TierWeighted, 12, 3, 3));
        let a = plan(CascadeOrder::Random, 5).stages(&topo);
        let b = plan(CascadeOrder::Random, 5).stages(&topo);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.org, y.org);
            assert_eq!(x.at_ms, y.at_ms);
        }
        assert_eq!(a[0].at_ms, 10_000);
        assert_eq!(a[4].at_ms, 30_000);
    }

    #[test]
    fn top_tier_first_fails_high_quality_orgs_first() {
        let topo = generate(&TopologySpec::new(TopologyFamily::TierWeighted, 20, 3, 3));
        let stages = plan(CascadeOrder::TopTierFirst, 4).stages(&topo);
        let quality_of = |name: &str| {
            topo.orgs
                .iter()
                .find(|o| o.name == name)
                .expect("org exists")
                .quality
        };
        let top_quality = topo.orgs.iter().map(|o| o.quality).max().unwrap();
        for s in &stages {
            assert_eq!(quality_of(&s.org), top_quality, "stage {}", s.stage);
        }
    }

    #[test]
    fn schedule_interleaves_marks_and_crashes() {
        let topo = generate(&TopologySpec::new(TopologyFamily::Uniform, 5, 2, 1));
        let mut p = plan(CascadeOrder::Random, 2);
        p.heal_at_ms = Some(50_000);
        let sched = p.schedule(&topo);
        // 2 marks + 2*2 crashes + reconfigures for 3 surviving orgs * 2.
        assert_eq!(sched.len(), 2 + 4 + 6);
        let entries = sched.entries();
        assert!(matches!(
            entries[0].action,
            FaultAction::StageMark { stage: 1, .. }
        ));
        let n_crashes = entries
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Crash(_)))
            .count();
        assert_eq!(n_crashes, 4);
        let reconf: Vec<_> = entries
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Reconfigure { .. }))
            .collect();
        assert_eq!(reconf.len(), 6);
        assert!(reconf.iter().all(|e| e.at_ms == 50_000));
    }

    #[test]
    fn analysis_finds_a_frontier_and_a_fatal_stage() {
        let topo = generate(&TopologySpec::new(TopologyFamily::Uniform, 7, 3, 2));
        let stages = plan(CascadeOrder::Random, 7).stages(&topo);
        let a = analyze_cascade(&topo, &stages, &CheckerOptions::default());
        // Fig. 6 uniform orgs tolerate a minority of org failures; the
        // full campaign kills everyone, so a fatal stage must exist.
        assert!(a.frontier >= 1, "one org down must survive: {a:?}");
        assert!(a.frontier < 7, "seven of seven down cannot survive");
        let (fatal_stage, _) = a.first_fatal.clone().expect("fatal stage");
        assert_eq!(fatal_stage, a.frontier + 1);
        // Verdicts are monotone in this uniform symmetric family: every
        // stage at or below the frontier was ok.
        for s in &a.stages[..a.frontier] {
            assert!(
                s.safe && (s.live || s.heal_live),
                "stage {}: {s:?}",
                s.stage
            );
        }
    }

    #[test]
    fn healing_extends_the_frontier() {
        // 8 uniform orgs: liveness needs 6 of 8 (67% of orgs), so 3 org
        // failures stall the old configuration — but the survivors'
        // pruned slices still intersect (that lapses only at 4), and the
        // 5 surviving orgs resynthesized among themselves are live, so
        // the healable frontier reaches deeper than the live one.
        let topo = generate(&TopologySpec::new(TopologyFamily::Uniform, 8, 3, 2));
        let stages = plan(CascadeOrder::Random, 4).stages(&topo);
        let a = analyze_cascade(&topo, &stages, &CheckerOptions::default());
        let stalled_but_healable = a
            .stages
            .iter()
            .find(|s| !s.live && s.heal_live && s.safe)
            .expect("some prefix stalls the old config yet heals clean");
        assert!(stalled_but_healable.stage <= a.frontier);
    }

    #[test]
    fn cascaded_orgs_name_dragged_down_survivors() {
        let topo = generate(&TopologySpec::new(TopologyFamily::TierWeighted, 15, 3, 11));
        let stages = plan(CascadeOrder::TopTierFirst, 15).stages(&topo);
        let a = analyze_cascade(&topo, &stages, &CheckerOptions::default());
        // Killing the whole top tier must eventually drag non-failed
        // orgs out of the surviving quorum (everyone trusts the top).
        let dead_stage = a
            .stages
            .iter()
            .find(|s| !s.live)
            .expect("campaign kills liveness");
        assert!(
            !dead_stage.cascaded_orgs.is_empty()
                || dead_stage.failed_validators == topo.n_validators(),
            "liveness loss with orgs standing must name cascaded orgs: {dead_stage:?}"
        );
        for o in &dead_stage.cascaded_orgs {
            assert!(
                !a.stages[..dead_stage.stage].iter().any(|s| &s.org == o),
                "cascaded org {o} was never itself failed"
            );
        }
    }

    #[test]
    fn analysis_json_round_trips() {
        let topo = generate(&TopologySpec::new(TopologyFamily::Uniform, 5, 2, 1));
        let stages = plan(CascadeOrder::Random, 3).stages(&topo);
        let a = analyze_cascade(&topo, &stages, &CheckerOptions::default());
        let doc = a.to_json();
        let parsed = Json::parse(&doc.render_pretty()).expect("valid json");
        assert_eq!(
            parsed.get("frontier").and_then(Json::as_f64),
            Some(a.frontier as f64)
        );
        assert_eq!(
            parsed.get("stages").and_then(Json::as_arr).map(|s| s.len()),
            Some(3)
        );
    }
}

//! # stellar-chaos — fault injection, Byzantine adversaries, invariants
//!
//! The paper's claims are conditional ("safety for intact nodes",
//! "liveness when a quorum survives"); this crate is the apparatus that
//! attacks those conditions on purpose and checks that the guarantees
//! hold exactly when promised. Three pillars, layered on the
//! discrete-event simulator:
//!
//! - [`schedule`] — a timed fault-script DSL: crashes and revivals,
//!   network partitions with scheduled heals, and per-link
//!   drop/duplicate/delay/reorder models, all applied at deterministic
//!   points in simulated time.
//! - [`adversary`] — Byzantine drivers for puppet validators, forging
//!   real signed envelopes (equivocating nomination votes, split ballot
//!   confirmations, stale replays, strategic silence) so honest nodes
//!   exercise their full validation paths.
//! - [`monitor`] — an invariant monitor computing the *intact* set the
//!   FBA way and checking, every tick, that no two intact nodes diverge
//!   and that connected intact quorums keep closing ledgers.
//! - [`cascade`] — staged org-failure campaigns over generated FBAS
//!   topologies: compiles cascade plans into fault schedules (stage
//!   marks, crashes, halt-and-reconfigure healing) and computes the
//!   *survival frontier* analytically from the quorum structure.
//! - [`recovery`] — crash-restart recovery scenarios: the amnesia
//!   equivocation demonstration (reboot a mid-ballot quorum with and
//!   without durable persistence), randomized restart storms, and
//!   persistence twin runs comparing a rebooted run's ledger headers
//!   against an undisturbed twin.
//!
//! [`runner::ChaosRun`] glues them together; every run from one seed is
//! bit-reproducible, and the resulting [`runner::ChaosReport`] carries
//! the full event trace for replaying any violation it found.
//!
//! ```
//! use stellar_chaos::adversary::Strategy;
//! use stellar_chaos::runner::{ChaosConfig, ChaosRun};
//! use stellar_chaos::schedule::FaultSchedule;
//! use stellar_sim::scenario::Scenario;
//! use stellar_sim::SimConfig;
//! use stellar_scp::NodeId;
//!
//! let report = ChaosRun::new(ChaosConfig {
//!     sim: SimConfig {
//!         scenario: Scenario::ControlledMesh { n_validators: 5 },
//!         target_ledgers: 2,
//!         seed: 1,
//!         ..SimConfig::default()
//!     },
//!     adversaries: vec![(NodeId(4), Strategy::EquivocateNomination)],
//!     schedule: FaultSchedule::builder()
//!         .crash_at(8_000, NodeId(3))
//!         .revive_at(16_000, NodeId(3))
//!         .build(),
//!     ..ChaosConfig::default()
//! })
//! .run();
//! assert!(report.is_clean(), "{:?}", report.violations);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod cascade;
pub mod monitor;
pub mod recovery;
pub mod runner;
pub mod schedule;

pub use adversary::{Adversary, Injection, Strategy};
pub use cascade::{analyze_cascade, CascadeAnalysis, CascadeOrder, CascadePlan, CascadeStage};
pub use monitor::{
    intact_nodes, CollapseKind, FrontierReport, InvariantMonitor, StageMark, Violation,
};
pub use recovery::{
    amnesia_restart_scenario, persistence_twin_run, restart_storm, AmnesiaOutcome, TwinOutcome,
};
pub use runner::{ChaosConfig, ChaosReport, ChaosRun};
pub use schedule::{FaultAction, FaultSchedule};

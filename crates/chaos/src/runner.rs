//! The chaos runner: schedule + adversaries + monitor around one sim.
//!
//! [`ChaosRun`] wraps a [`Simulation`] and, around every event step,
//! interleaves the three chaos pillars deterministically:
//!
//! 1. fault-schedule actions due at or before the next event apply
//!    first (crashes, partitions, link-fault changes);
//! 2. the event fires;
//! 3. each adversary (in node-id order) drains its puppet's inbox and
//!    its injections enter the delivery pipeline;
//! 4. the invariant monitor checks safety/liveness at a bounded cadence.
//!
//! Everything draws from seeded RNG streams, so one `(config, seed)`
//! pair always produces the same event trace — enable tracing and two
//! runs are comparable entry-for-entry, which is how violation reports
//! become replayable.

use crate::adversary::{Adversary, Injection, Strategy};
use crate::monitor::{FrontierReport, InvariantMonitor, StageMark, Violation};
use crate::schedule::{FaultAction, FaultSchedule};
use std::collections::{BTreeMap, BTreeSet};
use stellar_scp::NodeId;
use stellar_sim::simulation::{validator_keys, TraceEntry};
use stellar_sim::{HealthAlert, SimConfig, Simulation};

/// Configuration of a chaos experiment.
pub struct ChaosConfig {
    /// The underlying network/run parameters.
    pub sim: SimConfig,
    /// Puppets to demote and the attack each runs.
    pub adversaries: Vec<(NodeId, Strategy)>,
    /// Scripted faults.
    pub schedule: FaultSchedule,
    /// Longest a connected intact quorum may go without closing a
    /// ledger before the monitor reports a stall; 0 disables.
    pub liveness_bound_ms: u64,
    /// Minimum simulated time between monitor sweeps.
    pub monitor_interval_ms: u64,
    /// Record the full event trace (costs memory; on for replays).
    pub record_trace: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        let sim = SimConfig::default();
        ChaosConfig {
            // 10 ledger intervals of silence from a connected intact
            // quorum is a stall by any reading of §7's pacing.
            liveness_bound_ms: 10 * sim.ledger_interval_ms,
            monitor_interval_ms: 250,
            record_trace: true,
            adversaries: Vec::new(),
            schedule: FaultSchedule::empty(),
            sim,
        }
    }
}

/// What a chaos run produced.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Invariant violations, in detection order (empty = clean run).
    pub violations: Vec<Violation>,
    /// The full event trace (empty unless `record_trace` was set).
    pub trace: Vec<TraceEntry>,
    /// Final ledger sequence per node.
    pub final_seqs: Vec<(NodeId, u64)>,
    /// The intact set at the end of the run.
    pub intact: BTreeSet<NodeId>,
    /// Total envelopes injected by adversaries.
    pub injections: u64,
    /// Simulated time at exit (ms).
    pub sim_time_ms: u64,
    /// The observer's flight-recorder timelines for every slot still in
    /// the retention window, captured only when the run produced
    /// violations (empty for clean runs). This is the per-slot story of
    /// the failure: which timers armed and fired, which envelopes
    /// arrived, how far balloting got on the stalled slot.
    pub flight_recording: String,
    /// Health-watchdog alerts raised during the run — stuck slots, slow
    /// closes — recorded whether or not any invariant broke. A chaos run
    /// that stays *safe* but loses health shows up here, not in
    /// `violations`.
    pub health: Vec<HealthAlert>,
    /// Merged cross-node causal traces of every sampled transaction that
    /// touched a violated slot (nominated into, externalized by, or
    /// applied in it), captured only when the run produced violations.
    /// Where the flight recording tells the per-slot consensus story,
    /// this tells the per-transaction story: each hop of the flood, each
    /// demand round, and which nodes carried the transaction how far.
    pub causal_traces: String,
    /// Cascade-stage marks the schedule scripted, in time order (empty
    /// for non-cascade runs).
    pub stage_marks: Vec<StageMark>,
    /// The survival-frontier attribution: the deepest stage the run
    /// survived and, past it, which org failure triggered the collapse.
    pub frontier: FrontierReport,
    /// Health alerts that fell inside a scheduled downtime window — the
    /// watchdog noticed, but the schedule predicted it. Kept apart from
    /// `health` so a cascade campaign's own crashes don't read as
    /// unexplained stalls.
    pub expected_health: Vec<HealthAlert>,
}

impl ChaosReport {
    /// True when every invariant held for the whole run.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An in-flight chaos experiment.
pub struct ChaosRun {
    sim: Simulation,
    schedule: FaultSchedule,
    adversaries: Vec<Adversary>,
    monitor: InvariantMonitor,
    last_monitor_ms: u64,
    monitor_interval_ms: u64,
    target_seq: u64,
}

impl ChaosRun {
    /// Builds the network, demotes the adversaries' nodes to puppets,
    /// and arms the monitor.
    pub fn new(cfg: ChaosConfig) -> ChaosRun {
        let target_seq = 1 + cfg.sim.target_ledgers;
        let seed = cfg.sim.seed;
        let mut sim = Simulation::new(cfg.sim);
        if cfg.record_trace {
            sim.enable_trace();
        }
        let byzantine: BTreeSet<NodeId> = cfg.adversaries.iter().map(|(id, _)| *id).collect();
        let honest: Vec<NodeId> = sim
            .validator_ids()
            .into_iter()
            .filter(|id| !byzantine.contains(id))
            .collect();
        let mut adversaries = Vec::new();
        for (id, strategy) in cfg.adversaries {
            sim.make_puppet(id);
            let qset = sim.validator(id).scp.quorum_set().clone();
            adversaries.push(Adversary::new(
                id,
                validator_keys(id),
                qset,
                strategy,
                honest.clone(),
                seed,
            ));
        }
        // Deterministic turn order regardless of construction order.
        adversaries.sort_by_key(Adversary::id);
        // Pre-register every scripted crash as an expected-downtime
        // window so the health watchdog annotates (rather than alerts
        // on) the stalls the schedule itself causes. A crash's window
        // runs until the node's next scripted revive/restart, or
        // open-ended when the script never brings it back.
        let mut open: BTreeMap<NodeId, u64> = BTreeMap::new();
        for e in cfg.schedule.entries() {
            match e.action {
                FaultAction::Crash(id) => {
                    open.entry(id).or_insert(e.at_ms);
                }
                FaultAction::Revive(id) | FaultAction::Restart(id) => {
                    if let Some(from) = open.remove(&id) {
                        sim.expect_downtime(id, from, e.at_ms);
                    }
                }
                _ => {}
            }
        }
        for (id, from) in open {
            sim.expect_downtime(id, from, u64::MAX);
        }
        ChaosRun {
            sim,
            schedule: cfg.schedule,
            adversaries,
            monitor: InvariantMonitor::new(byzantine, cfg.liveness_bound_ms),
            last_monitor_ms: 0,
            monitor_interval_ms: cfg.monitor_interval_ms.max(1),
            target_seq,
        }
    }

    /// The wrapped simulation (inspection between steps).
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// The monitor's findings so far.
    pub fn violations(&self) -> &[Violation] {
        self.monitor.violations()
    }

    /// Renders the observer's flight-recorder timeline for every slot
    /// still in its retention window, newest-slot-last.
    pub fn flight_recording(&self) -> String {
        let rec = &self.sim.telemetry(self.sim.observer_id()).recorder;
        let slots: std::collections::BTreeSet<u64> = rec.events().map(|e| e.slot).collect();
        let mut out = String::new();
        for slot in slots {
            out.push_str(&rec.timeline(slot));
            out.push('\n');
        }
        out
    }

    /// Renders the causal traces of every transaction whose lifecycle
    /// touched a slot named by a violation. A liveness stall names no
    /// slot, so it attaches the traces of every transaction still in
    /// flight instead — the pipeline state of exactly the load the
    /// stalled slot was supposed to carry.
    pub fn causal_traces_for_violations(&self, violations: &[Violation]) -> String {
        let mut slots: BTreeSet<u64> = BTreeSet::new();
        let mut pending = false;
        for v in violations {
            match v {
                Violation::ValueDivergence { slot, .. } => {
                    slots.insert(*slot);
                }
                Violation::HeaderDivergence { seq, .. } => {
                    slots.insert(*seq);
                }
                Violation::LivenessStall { .. } => pending = true,
            }
        }
        let mut out = String::new();
        for slot in slots {
            out.push_str(&self.sim.causal_traces_for_slot(slot));
        }
        if pending {
            out.push_str(&self.sim.causal_traces_pending());
        }
        out
    }

    /// Applies every scheduled fault due at or before the next event.
    fn apply_due_faults(&mut self) {
        let horizon = self
            .sim
            .peek_time()
            .unwrap_or(self.sim.now_ms())
            .max(self.sim.now_ms());
        while let Some(f) = self.schedule.pop_due(horizon) {
            match f.action {
                FaultAction::Crash(id) => self.sim.crash(id),
                FaultAction::Revive(id) => self.sim.revive(id),
                FaultAction::Restart(id) => self.sim.restart(id),
                FaultAction::FailFsync { node, count } => self.sim.fail_next_fsyncs(node, count),
                FaultAction::TornWrite(id) => self.sim.tear_next_crash(id),
                FaultAction::Partition { groups, heal_at_ms } => {
                    self.sim.set_partition(&groups, heal_at_ms)
                }
                FaultAction::Heal => self.sim.clear_partition(),
                FaultAction::LinkFault { from, to, fault } => {
                    self.sim.link_faults_mut().set_link(from, to, fault)
                }
                FaultAction::DefaultLinkFault(fault) => {
                    self.sim.link_faults_mut().set_default(fault)
                }
                FaultAction::ClearLinkFaults => self.sim.link_faults_mut().clear(),
                FaultAction::Reconfigure { node, qset } => self.sim.reconfigure_quorum(node, qset),
                FaultAction::StageMark { stage, label } => {
                    self.monitor.mark_stage(stage, &label, self.sim.now_ms())
                }
            }
        }
    }

    /// Gives every adversary a turn over its freshly drained inbox.
    fn adversary_turns(&mut self) {
        for i in 0..self.adversaries.len() {
            let id = self.adversaries[i].id();
            let inbox = self.sim.drain_puppet_inbox(id);
            let injections = self.adversaries[i].turn(&inbox);
            for inj in injections {
                match inj {
                    Injection::Direct { to, msg } => self.sim.inject_direct(id, to, msg),
                    Injection::Broadcast { msg } => self.sim.inject_broadcast(id, msg),
                }
            }
        }
    }

    /// One chaos step: faults, one simulation event, adversary turns,
    /// monitor sweep. Returns `false` when the simulation is exhausted.
    pub fn step(&mut self) -> bool {
        self.apply_due_faults();
        if !self.sim.step() {
            return false;
        }
        self.adversary_turns();
        let now = self.sim.now_ms();
        if now >= self.last_monitor_ms + self.monitor_interval_ms {
            self.last_monitor_ms = now;
            self.monitor.on_tick(&self.sim);
        }
        true
    }

    /// Runs until the fault script has fully played out **and** every
    /// non-puppet, non-crashed node reaches the target ledger count (or
    /// the simulation runs dry), then returns the report. The monitor
    /// always gets a final sweep.
    pub fn run(mut self) -> ChaosReport {
        while self.step() {
            let done = self.schedule.remaining() == 0
                && self.sim.validator_ids().into_iter().all(|id| {
                    self.sim.is_crashed(id)
                        || self.sim.is_puppet(id)
                        || self.sim.ledger_seq_of(id) >= self.target_seq
                });
            if done {
                break;
            }
        }
        self.monitor.on_tick(&self.sim);
        let final_seqs = self
            .sim
            .validator_ids()
            .into_iter()
            .map(|id| (id, self.sim.ledger_seq_of(id)))
            .collect();
        let intact = self.monitor.intact(&self.sim);
        let injections = self.adversaries.iter().map(Adversary::injected).sum();
        let violations = self.monitor.violations().to_vec();
        let (flight_recording, causal_traces) = if violations.is_empty() {
            (String::new(), String::new())
        } else {
            (
                self.flight_recording(),
                self.causal_traces_for_violations(&violations),
            )
        };
        ChaosReport {
            violations,
            trace: self.sim.trace().to_vec(),
            final_seqs,
            intact,
            injections,
            sim_time_ms: self.sim.now_ms(),
            flight_recording,
            health: self.sim.watchdog().alerts().to_vec(),
            causal_traces,
            stage_marks: self.monitor.stage_marks().to_vec(),
            frontier: self.monitor.frontier_report(),
            expected_health: self.sim.watchdog().expected_alerts().to_vec(),
        }
    }
}

//! Byzantine adversary nodes: scripted attacks against live SCP.
//!
//! An adversary drives a *puppet* validator inside the simulation (see
//! `Simulation::make_puppet`): the puppet holds real keys and sits in
//! honest nodes' quorum sets, but runs no protocol logic. Between
//! simulation steps the chaos runner hands the adversary everything the
//! puppet received and injects whatever the adversary wants to say — at
//! the envelope level, so honest nodes exercise their full signature
//! verification, statement processing, and federated-voting paths on
//! well-formed malicious input.
//!
//! The strategies here map to the paper's §3 threat model: Byzantine
//! nodes may say arbitrary, contradictory things to different peers, but
//! cannot forge other nodes' signatures. SCP guarantees safety for
//! *intact* nodes as long as befouled sets stay below the quorum
//! intersection threshold — which is exactly what the
//! [`crate::monitor::InvariantMonitor`] checks while these adversaries
//! run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use stellar_crypto::sign::KeyPair;
use stellar_overlay::FloodMessage;
use stellar_scp::{forge, Ballot, Envelope, NodeId, QuorumSet, SlotIndex, StatementKind, Value};
use stellar_sim::events::Flooded;

/// What an adversary wants the network layer to do after its turn.
#[derive(Clone, Debug)]
pub enum Injection {
    /// Send `msg` from the puppet to exactly one peer (the equivocation
    /// path: different peers get different payloads).
    Direct {
        /// The targeted peer.
        to: NodeId,
        /// The payload.
        msg: FloodMessage,
    },
    /// Flood `msg` from the puppet to all its overlay peers.
    Broadcast {
        /// The payload.
        msg: FloodMessage,
    },
}

/// The attack an adversary runs. All strategies are deterministic given
/// the adversary's seed and the traffic it observes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Vote for different nomination values toward different peers: half
    /// the network hears `voted {a}`, the other half `voted {b}`.
    EquivocateNomination,
    /// Claim to have confirmed commit for different ballot values toward
    /// different peers — the classic safety attack on ballot protocols.
    SplitConfirm,
    /// Re-flood stale envelopes recorded from earlier slots, stressing
    /// flood de-duplication and old-slot handling.
    ReplayStale,
    /// Say nothing at all while staying subscribed: honest nodes must
    /// reach agreement treating the node as failed, even though it still
    /// occupies their quorum slices.
    Silent,
}

/// A Byzantine driver for one puppet node.
pub struct Adversary {
    id: NodeId,
    keys: KeyPair,
    qset: QuorumSet,
    strategy: Strategy,
    rng: StdRng,
    /// Honest peers this adversary targets with direct sends.
    targets: Vec<NodeId>,
    /// Highest slot observed in incoming envelopes.
    max_slot: SlotIndex,
    /// Last slot this adversary attacked.
    acted_slot: SlotIndex,
    /// Values seen nominated for `max_slot`.
    nominated: BTreeSet<Value>,
    /// Ballot values seen for `max_slot`.
    balloted: BTreeSet<Value>,
    /// Envelopes recorded for replay (bounded).
    archive: Vec<Envelope>,
    /// Count of injections made (metric for experiments).
    injected: u64,
}

/// Cap on the replay archive; old slots dominate, which is the point.
const ARCHIVE_CAP: usize = 512;

impl Adversary {
    /// Creates an adversary driving puppet `id`. `keys` and `qset` must
    /// match what the simulation built for that node so forged envelopes
    /// verify; `targets` are the honest nodes to attack.
    pub fn new(
        id: NodeId,
        keys: KeyPair,
        qset: QuorumSet,
        strategy: Strategy,
        targets: Vec<NodeId>,
        seed: u64,
    ) -> Adversary {
        Adversary {
            id,
            keys,
            qset,
            strategy,
            // Distinct stream per puppet so multi-adversary runs stay
            // reproducible regardless of turn interleaving.
            rng: StdRng::seed_from_u64(seed ^ 0xBAD ^ u64::from(id.0) << 32),
            targets,
            max_slot: 0,
            acted_slot: 0,
            nominated: BTreeSet::new(),
            balloted: BTreeSet::new(),
            archive: Vec::new(),
            injected: 0,
        }
    }

    /// The puppet this adversary drives.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The attack being run.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Total envelopes injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// One adversary turn: digest the puppet's freshly drained inbox,
    /// then decide what (if anything) to say. Called by the chaos runner
    /// after every simulation step.
    pub fn turn(&mut self, inbox: &[(NodeId, Flooded)]) -> Vec<Injection> {
        for (_, flooded) in inbox {
            if let FloodMessage::Scp(env) = &*flooded.msg {
                self.observe(env);
            }
        }
        let out = self.act();
        self.injected += out.len() as u64;
        out
    }

    fn observe(&mut self, env: &Envelope) {
        let st = &env.statement;
        if st.slot > self.max_slot {
            self.max_slot = st.slot;
            self.nominated.clear();
            self.balloted.clear();
        }
        if st.slot == self.max_slot {
            match &st.kind {
                StatementKind::Nominate { voted, accepted } => {
                    self.nominated.extend(voted.iter().cloned());
                    self.nominated.extend(accepted.iter().cloned());
                }
                StatementKind::Prepare { ballot, .. } | StatementKind::Confirm { ballot, .. } => {
                    self.balloted.insert(ballot.value.clone());
                }
                StatementKind::Externalize { commit, .. } => {
                    self.balloted.insert(commit.value.clone());
                }
            }
        }
        if self.archive.len() < ARCHIVE_CAP {
            self.archive.push(env.clone());
        }
    }

    /// A value no honest node proposed — contradiction material when the
    /// adversary has seen fewer than two real candidates.
    fn fabricated(&self, slot: SlotIndex) -> Value {
        Value::new(format!("byz-{}-slot-{slot}", self.id.0).into_bytes())
    }

    /// Two conflicting values for `slot`: real candidates when observed,
    /// fabricated otherwise.
    fn conflicting_pair(&self, pool: &BTreeSet<Value>, slot: SlotIndex) -> (Value, Value) {
        let mut it = pool.iter();
        let a = it.next().cloned().unwrap_or_else(|| self.fabricated(slot));
        let b = it
            .next()
            .cloned()
            .unwrap_or_else(|| self.fabricated(slot + 1_000_000));
        (a, b)
    }

    fn act(&mut self) -> Vec<Injection> {
        if self.strategy == Strategy::Silent {
            return Vec::new();
        }
        // Attack each slot once, as soon as honest traffic reveals it.
        if self.max_slot == 0 || self.max_slot <= self.acted_slot {
            return Vec::new();
        }
        let slot = self.max_slot;
        self.acted_slot = slot;
        match self.strategy {
            Strategy::EquivocateNomination => {
                let (a, b) = self.conflicting_pair(&self.nominated.clone(), slot);
                self.split_send(
                    slot,
                    |this, v, side| {
                        let voted: BTreeSet<Value> = [v.clone()].into();
                        // One side also hears a bogus "accepted" claim, so
                        // honest nodes exercise the accept-vs-vote paths.
                        let accepted = if side { voted.clone() } else { BTreeSet::new() };
                        FloodMessage::Scp(forge::nominate(
                            &this.keys,
                            this.id,
                            slot,
                            this.qset.clone(),
                            voted,
                            accepted,
                        ))
                    },
                    a,
                    b,
                )
            }
            Strategy::SplitConfirm => {
                // Prefer real ballot values; fall back to nominated ones
                // early in the slot.
                let pool = if self.balloted.is_empty() {
                    self.nominated.clone()
                } else {
                    self.balloted.clone()
                };
                let (a, b) = self.conflicting_pair(&pool, slot);
                self.split_send(
                    slot,
                    |this, v, _| {
                        FloodMessage::Scp(forge::confirm(
                            &this.keys,
                            this.id,
                            slot,
                            this.qset.clone(),
                            Ballot::new(1, v.clone()),
                            1,
                            1,
                        ))
                    },
                    a,
                    b,
                )
            }
            Strategy::ReplayStale => {
                let stale: Vec<usize> = self
                    .archive
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.statement.slot < slot)
                    .map(|(i, _)| i)
                    .collect();
                let mut out = Vec::new();
                for _ in 0..3usize.min(stale.len()) {
                    let pick = stale[self.rng.gen_range(0usize..stale.len())];
                    out.push(Injection::Broadcast {
                        msg: FloodMessage::Scp(self.archive[pick].clone()),
                    });
                }
                out
            }
            Strategy::Silent => unreachable!("handled above"),
        }
    }

    /// Sends `make(value_a)` to even-indexed targets and `make(value_b)`
    /// to odd-indexed ones — the two halves of the network hear
    /// contradictory statements from the same signer.
    fn split_send(
        &mut self,
        _slot: SlotIndex,
        make: impl Fn(&Adversary, &Value, bool) -> FloodMessage,
        a: Value,
        b: Value,
    ) -> Vec<Injection> {
        let targets = self.targets.clone();
        targets
            .iter()
            .enumerate()
            .map(|(i, to)| {
                let side = i % 2 == 0;
                let v = if side { &a } else { &b };
                Injection::Direct {
                    to: *to,
                    msg: make(self, v, side),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_scp::Statement;

    fn qset() -> QuorumSet {
        QuorumSet::majority((0..4).map(NodeId).collect())
    }

    fn adversary(strategy: Strategy) -> Adversary {
        Adversary::new(
            NodeId(3),
            KeyPair::from_seed(3),
            qset(),
            strategy,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            7,
        )
    }

    fn honest_nominate(slot: SlotIndex, value: &[u8]) -> (NodeId, Flooded) {
        let keys = KeyPair::from_seed(0);
        let env = forge::nominate(
            &keys,
            NodeId(0),
            slot,
            qset(),
            [Value::new(value.to_vec())].into(),
            BTreeSet::new(),
        );
        (NodeId(0), Flooded::new(FloodMessage::Scp(env)))
    }

    fn scp_statement(inj: &Injection) -> &Statement {
        let msg = match inj {
            Injection::Direct { msg, .. } | Injection::Broadcast { msg } => msg,
        };
        match msg {
            FloodMessage::Scp(env) => &env.statement,
            other => panic!("expected SCP injection, got {other:?}"),
        }
    }

    #[test]
    fn equivocator_tells_peers_different_values() {
        let mut adv = adversary(Strategy::EquivocateNomination);
        let out = adv.turn(&[honest_nominate(2, b"real")]);
        assert_eq!(out.len(), 3, "one direct send per target");
        let mut voted_sets = BTreeSet::new();
        for inj in &out {
            match &scp_statement(inj).kind {
                StatementKind::Nominate { voted, .. } => {
                    voted_sets.insert(voted.clone());
                }
                k => panic!("expected nominate, got {k:?}"),
            }
        }
        assert!(
            voted_sets.len() >= 2,
            "peers must hear contradictory nomination votes"
        );
        // One attack per slot: a second turn with no new slot is quiet.
        assert!(adv.turn(&[]).is_empty());
    }

    #[test]
    fn split_confirm_signs_conflicting_ballots() {
        let mut adv = adversary(Strategy::SplitConfirm);
        let out = adv.turn(&[honest_nominate(5, b"x")]);
        let mut values = BTreeSet::new();
        for inj in &out {
            match &scp_statement(inj).kind {
                StatementKind::Confirm { ballot, .. } => {
                    values.insert(ballot.value.clone());
                }
                k => panic!("expected confirm, got {k:?}"),
            }
        }
        assert_eq!(values.len(), 2, "two conflicting confirmed ballots");
    }

    #[test]
    fn replay_rebroadcasts_only_stale_slots() {
        let mut adv = adversary(Strategy::ReplayStale);
        assert!(
            adv.turn(&[honest_nominate(1, b"a")]).is_empty(),
            "nothing stale yet"
        );
        let out = adv.turn(&[honest_nominate(2, b"b")]);
        assert!(!out.is_empty());
        for inj in &out {
            assert!(scp_statement(inj).slot < 2);
            assert!(matches!(inj, Injection::Broadcast { .. }));
        }
    }

    #[test]
    fn silent_adversary_never_speaks() {
        let mut adv = adversary(Strategy::Silent);
        for slot in 1..5 {
            assert!(adv.turn(&[honest_nominate(slot, b"v")]).is_empty());
        }
        assert_eq!(adv.injected(), 0);
    }
}

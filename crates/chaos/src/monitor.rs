//! The invariant monitor: SCP's promises, checked every tick.
//!
//! The paper's guarantees are conditional — they hold for **intact**
//! nodes, those outside the damage radius of the ill-behaved set. The
//! monitor computes intactness the FBA way (see [`intact_nodes`]): the
//! ill-behaved set — Byzantine puppets plus currently-crashed nodes —
//! must be *dispensable*: honest nodes still contain a quorum, and
//! *deleting* the ill nodes from every quorum set
//! ([`stellar_quorum::criticality::delete_nodes`] — their votes become
//! free for either side of a split) must preserve quorum intersection.
//! If either condition fails, *no* node is intact and SCP promises
//! nothing.
//!
//! Two invariant families are then checked over intact nodes only:
//!
//! - **Safety** (unconditional for intact nodes): no two intact nodes
//!   externalize different values for the same slot, and their ledger
//!   header hashes agree at every sequence number they share.
//! - **Liveness** (conditional): while a quorum of intact nodes is
//!   connected — no partition in force — the highest intact ledger must
//!   keep advancing within a configured bound. Probabilistic link faults
//!   are *not* excluded from eligibility: a schedule that drops all
//!   traffic should either disable the liveness check or expect the
//!   stall report it causes.

use std::collections::{BTreeMap, BTreeSet};
use stellar_crypto::Hash256;
use stellar_quorum::criticality::delete_nodes;
use stellar_quorum::{enjoys_quorum_intersection, FbaSystem};
use stellar_scp::{NodeId, QuorumSet, SlotIndex, Value};
use stellar_sim::Simulation;

/// A broken invariant, with enough context to find it in the event trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two intact nodes externalized different values for one slot — the
    /// core SCP safety property is gone.
    ValueDivergence {
        /// The slot both nodes decided.
        slot: SlotIndex,
        /// First witness.
        node_a: NodeId,
        /// What `node_a` externalized.
        value_a: Value,
        /// Second witness.
        node_b: NodeId,
        /// What `node_b` externalized.
        value_b: Value,
    },
    /// Two intact nodes closed the same ledger sequence with different
    /// header hashes (state divergence despite agreeing on values).
    HeaderDivergence {
        /// The diverging ledger sequence.
        seq: u64,
        /// First witness.
        node_a: NodeId,
        /// `node_a`'s header hash.
        hash_a: Hash256,
        /// Second witness.
        node_b: NodeId,
        /// `node_b`'s header hash.
        hash_b: Hash256,
    },
    /// A connected intact quorum failed to close a ledger within the
    /// configured bound.
    LivenessStall {
        /// The intact set that should have been making progress.
        intact: BTreeSet<NodeId>,
        /// When progress was last observed (ms).
        stalled_since_ms: u64,
        /// When the stall crossed the bound (ms).
        detected_at_ms: u64,
    },
}

/// The intact set, via the FBA *dispensable set* conditions: the honest
/// nodes are intact iff the ill-behaved set is dispensable, i.e.
///
/// 1. **quorum availability despite `ill`** — the honest nodes still
///    contain a quorum of the *original* system, and
/// 2. **quorum intersection despite `ill`** — after deleting `ill` from
///    every quorum set, the remaining quorums all intersect.
///
/// When both hold, the intact set is the maximal original-system quorum
/// among honest nodes; when either fails, nobody is intact and SCP
/// promises nothing. (This is the standard one-DSet approximation: it
/// treats all ill-behaved nodes as one failure event rather than
/// minimizing over every DSet containing them.)
pub fn intact_nodes(
    qsets: &BTreeMap<NodeId, QuorumSet>,
    ill: &BTreeSet<NodeId>,
) -> BTreeSet<NodeId> {
    let honest: BTreeSet<NodeId> = qsets
        .keys()
        .copied()
        .filter(|id| !ill.contains(id))
        .collect();
    if honest.is_empty() {
        return BTreeSet::new();
    }
    // Quorum availability despite ill.
    let original = FbaSystem::new(qsets.iter().map(|(id, q)| (*id, q.clone())));
    let available = original.max_quorum_in(&honest);
    if available.is_empty() {
        return BTreeSet::new();
    }
    // Quorum intersection despite ill: delete ill (their votes go to
    // either side of a split) and re-check.
    let reduced = FbaSystem::new(
        qsets
            .iter()
            .filter(|(id, _)| !ill.contains(id))
            .map(|(id, q)| (*id, delete_nodes(q, ill))),
    );
    if !enjoys_quorum_intersection(&reduced) {
        return BTreeSet::new();
    }
    available
}

/// A cascade-campaign stage the monitor has been told about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageMark {
    /// 1-based stage number.
    pub stage: usize,
    /// The failing org (or other stage label).
    pub label: String,
    /// Simulated time the stage began (ms).
    pub at_ms: u64,
}

/// How a cascade campaign first broke through the survival frontier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollapseKind {
    /// A safety or liveness violation was recorded.
    Violation,
    /// The intact set became empty: SCP promises nothing beyond this
    /// point — the Kim/Kwon/Kim cascade outcome (liveness loss, and
    /// divergence is no longer excluded).
    IntactCollapse,
}

/// The survival frontier as observed by the monitor: how many staged
/// failures the network absorbed before anything broke.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierReport {
    /// Largest stage prefix under which every invariant held and the
    /// intact set stayed non-empty. Equal to the number of marked stages
    /// when nothing ever broke.
    pub frontier: usize,
    /// The stage whose failures first broke through (stage number and
    /// org label), when anything did.
    pub triggering_stage: Option<StageMark>,
    /// What broke at the triggering stage.
    pub collapse: Option<CollapseKind>,
}

/// Watches a simulation for safety and liveness violations. Drive it
/// with [`InvariantMonitor::on_tick`] between simulation steps.
pub struct InvariantMonitor {
    /// Nodes under adversary control (always ill-behaved).
    byzantine: BTreeSet<NodeId>,
    /// Liveness bound in ms of no progress; 0 disables the check.
    liveness_bound_ms: u64,
    violations: Vec<Violation>,
    /// Slots / seqs already reported, to avoid duplicate findings.
    reported_slots: BTreeSet<SlotIndex>,
    reported_seqs: BTreeSet<u64>,
    /// Liveness bookkeeping.
    last_progress_ms: u64,
    last_max_seq: u64,
    eligible_since: Option<u64>,
    stall_reported: bool,
    ticks: u64,
    /// Cascade-campaign bookkeeping (see [`InvariantMonitor::mark_stage`]).
    stage_marks: Vec<StageMark>,
    first_violation_stage: Option<StageMark>,
    first_collapse_stage: Option<StageMark>,
}

impl InvariantMonitor {
    /// A monitor for a run where `byzantine` nodes are adversarial.
    /// `liveness_bound_ms` is the longest a connected intact quorum may
    /// go without closing a ledger (0 disables liveness checking).
    pub fn new(byzantine: BTreeSet<NodeId>, liveness_bound_ms: u64) -> InvariantMonitor {
        InvariantMonitor {
            byzantine,
            liveness_bound_ms,
            violations: Vec::new(),
            reported_slots: BTreeSet::new(),
            reported_seqs: BTreeSet::new(),
            last_progress_ms: 0,
            last_max_seq: 0,
            eligible_since: None,
            stall_reported: false,
            ticks: 0,
            stage_marks: Vec::new(),
            first_violation_stage: None,
            first_collapse_stage: None,
        }
    }

    /// Records entry into cascade stage `stage` (`label` names the org
    /// being failed) at simulated time `at_ms`. Violations and intactness
    /// collapse observed from this point — until the next mark — are
    /// attributed to this stage in the [`FrontierReport`].
    pub fn mark_stage(&mut self, stage: usize, label: &str, at_ms: u64) {
        self.stage_marks.push(StageMark {
            stage,
            label: label.to_string(),
            at_ms,
        });
    }

    /// Stages marked so far, in order.
    pub fn stage_marks(&self) -> &[StageMark] {
        &self.stage_marks
    }

    /// The survival frontier observed so far (see [`FrontierReport`]).
    /// The intact-collapse signal only engages once stages are marked, so
    /// non-cascade chaos runs always report a frontier of zero stages and
    /// no trigger.
    pub fn frontier_report(&self) -> FrontierReport {
        // Whichever attribution happened in the earlier stage wins; on a
        // tie, a recorded violation is the stronger finding.
        let trigger = match (&self.first_violation_stage, &self.first_collapse_stage) {
            (Some(v), Some(c)) if c.stage < v.stage => {
                Some((c.clone(), CollapseKind::IntactCollapse))
            }
            (Some(v), _) => Some((v.clone(), CollapseKind::Violation)),
            (None, Some(c)) => Some((c.clone(), CollapseKind::IntactCollapse)),
            (None, None) => None,
        };
        match trigger {
            Some((mark, kind)) => FrontierReport {
                frontier: mark.stage.saturating_sub(1),
                triggering_stage: Some(mark),
                collapse: Some(kind),
            },
            None => FrontierReport {
                frontier: self.stage_marks.last().map_or(0, |m| m.stage),
                triggering_stage: None,
                collapse: None,
            },
        }
    }

    /// The ill-behaved set right now: Byzantine plus currently crashed.
    pub fn ill_behaved(&self, sim: &Simulation) -> BTreeSet<NodeId> {
        let mut ill = self.byzantine.clone();
        for id in sim.validator_ids() {
            if sim.is_crashed(id) {
                ill.insert(id);
            }
        }
        ill
    }

    /// The currently-intact set (see [`intact_nodes`]).
    pub fn intact(&self, sim: &Simulation) -> BTreeSet<NodeId> {
        intact_nodes(&sim.quorum_sets(), &self.ill_behaved(sim))
    }

    /// Checks every invariant against the simulation's current state.
    pub fn on_tick(&mut self, sim: &Simulation) {
        self.ticks += 1;
        let intact = self.intact(sim);
        let violations_before = self.violations.len();
        self.check_safety(sim, &intact);
        if self.liveness_bound_ms > 0 {
            self.check_liveness(sim, &intact);
        }
        // Cascade attribution: the current stage owns whatever broke on
        // this tick. An empty intact set is itself a frontier event —
        // past that point SCP promises nothing, which is exactly the
        // cascade outcome even when no divergence materializes in-run.
        if let Some(current) = self.stage_marks.last().cloned() {
            if self.violations.len() > violations_before && self.first_violation_stage.is_none() {
                self.first_violation_stage = Some(current.clone());
            }
            if intact.is_empty() && self.first_collapse_stage.is_none() {
                self.first_collapse_stage = Some(current);
            }
        }
    }

    fn check_safety(&mut self, sim: &Simulation, intact: &BTreeSet<NodeId>) {
        // First intact witness per slot / seq; everyone else must match.
        let mut values: BTreeMap<SlotIndex, (NodeId, Value)> = BTreeMap::new();
        let mut headers: BTreeMap<u64, (NodeId, Hash256)> = BTreeMap::new();
        for id in intact {
            for (slot, value) in sim.externalizations(*id) {
                match values.get(&slot) {
                    None => {
                        values.insert(slot, (*id, value));
                    }
                    Some((first, v0)) if *v0 != value => {
                        if self.reported_slots.insert(slot) {
                            self.violations.push(Violation::ValueDivergence {
                                slot,
                                node_a: *first,
                                value_a: v0.clone(),
                                node_b: *id,
                                value_b: value,
                            });
                        }
                    }
                    Some(_) => {}
                }
            }
            for (seq, hash) in sim.header_hashes(*id) {
                match headers.get(&seq) {
                    None => {
                        headers.insert(seq, (*id, hash));
                    }
                    Some((first, h0)) if *h0 != hash => {
                        if self.reported_seqs.insert(seq) {
                            self.violations.push(Violation::HeaderDivergence {
                                seq,
                                node_a: *first,
                                hash_a: *h0,
                                node_b: *id,
                                hash_b: hash,
                            });
                        }
                    }
                    Some(_) => {}
                }
            }
        }
    }

    fn check_liveness(&mut self, sim: &Simulation, intact: &BTreeSet<NodeId>) {
        let now = sim.now_ms();
        let max_seq = intact
            .iter()
            .map(|id| sim.ledger_seq_of(*id))
            .max()
            .unwrap_or(0);
        if max_seq > self.last_max_seq {
            self.last_max_seq = max_seq;
            self.last_progress_ms = now;
            self.stall_reported = false;
        }
        let eligible = !intact.is_empty() && !sim.partition_active();
        if !eligible {
            // The guarantee is conditional; the clock restarts when the
            // condition next holds.
            self.eligible_since = None;
            return;
        }
        let since = *self.eligible_since.get_or_insert(now);
        let quiet_since = self.last_progress_ms.max(since);
        if now.saturating_sub(quiet_since) > self.liveness_bound_ms && !self.stall_reported {
            self.stall_reported = true;
            self.violations.push(Violation::LivenessStall {
                intact: intact.clone(),
                stalled_since_ms: quiet_since,
                detected_at_ms: now,
            });
        }
    }

    /// Everything found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of `on_tick` calls made (sanity hook for tests).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Consumes the monitor, yielding its findings.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority_system(n: u32) -> BTreeMap<NodeId, QuorumSet> {
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let q = QuorumSet::majority(ids.clone());
        ids.into_iter().map(|id| (id, q.clone())).collect()
    }

    #[test]
    fn all_honest_nodes_are_intact() {
        let qsets = majority_system(4);
        let intact = intact_nodes(&qsets, &BTreeSet::new());
        assert_eq!(intact.len(), 4);
    }

    #[test]
    fn one_byzantine_of_four_leaves_the_rest_intact() {
        let qsets = majority_system(4);
        let ill: BTreeSet<NodeId> = [NodeId(3)].into();
        let intact = intact_nodes(&qsets, &ill);
        assert_eq!(
            intact,
            (0..3).map(NodeId).collect::<BTreeSet<_>>(),
            "deleting one of four from majority(4) leaves an intact quorum"
        );
    }

    #[test]
    fn frontier_report_attributes_to_the_marked_stage() {
        let mut m = InvariantMonitor::new(BTreeSet::new(), 0);
        m.mark_stage(1, "org-a", 10_000);
        m.mark_stage(2, "org-b", 20_000);
        assert_eq!(
            m.frontier_report(),
            FrontierReport {
                frontier: 2,
                triggering_stage: None,
                collapse: None,
            },
            "clean campaign survives every marked stage"
        );
        // Simulate stage 3 collapsing intactness.
        m.mark_stage(3, "org-c", 30_000);
        m.first_collapse_stage = Some(StageMark {
            stage: 3,
            label: "org-c".into(),
            at_ms: 30_500,
        });
        let r = m.frontier_report();
        assert_eq!(r.frontier, 2);
        assert_eq!(r.collapse, Some(CollapseKind::IntactCollapse));
        assert_eq!(r.triggering_stage.unwrap().label, "org-c");
    }

    #[test]
    fn byzantine_majority_leaves_nobody_intact() {
        let qsets = majority_system(4);
        let ill: BTreeSet<NodeId> = [NodeId(1), NodeId(2), NodeId(3)].into();
        let intact = intact_nodes(&qsets, &ill);
        assert!(
            intact.is_empty(),
            "one honest node of four cannot contain a majority quorum, \
             so quorum availability fails and nobody is intact"
        );
    }
}

//! Crash-restart recovery scenarios: amnesia equivocation and storms.
//!
//! Stellar-core persists its SCP state to disk *before* emitting any
//! envelope derived from it, so a rebooted validator can never
//! contradict a vote the network already holds (§3, §5.4). This module
//! packages the two experiments that make that discipline falsifiable:
//!
//! - [`amnesia_restart_scenario`] — the targeted safety demonstration.
//!   One node externalizes a slot first; the other three (a quorum by
//!   themselves) are rebooted while still mid-ballot, *after* their
//!   confirm-commit votes for value `x` are out. With persistence off
//!   they forget those votes, re-nominate with a later close time, and
//!   commit `y ≠ x` — the invariant monitor flags the divergence. With
//!   persistence on the restored ballot state pins them to `x` and the
//!   run stays clean.
//! - [`restart_storm`] / [`persistence_twin_run`] — the statistical and
//!   differential checks: randomized reboot storms must stay
//!   violation-free, and a run disturbed by mid-run reboots must
//!   externalize byte-identical ledger headers to an undisturbed twin
//!   from the same seed.

use crate::monitor::{InvariantMonitor, Violation};
use crate::runner::{ChaosConfig, ChaosReport, ChaosRun};
use crate::schedule::FaultSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use stellar_crypto::Hash256;
use stellar_scp::{NodeId, SlotIndex};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};

/// What [`amnesia_restart_scenario`] observed.
#[derive(Clone, Debug)]
pub struct AmnesiaOutcome {
    /// Monitor findings (empty = the restarted quorum never
    /// contradicted its pre-reboot votes).
    pub violations: Vec<Violation>,
    /// The contested slot.
    pub slot: SlotIndex,
    /// The node that externalized the slot before the reboot.
    pub first_externalizer: NodeId,
    /// Whether the rebooted trio re-decided the slot within the window.
    pub trio_decided: bool,
}

/// Drives the targeted amnesia experiment (see the module docs) and
/// returns the monitor's findings. `persistence` selects whether nodes
/// keep a durable store; the same seed with the two settings is the
/// paper's safety argument in executable form.
pub fn amnesia_restart_scenario(persistence: bool, seed: u64) -> AmnesiaOutcome {
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 10,
        target_ledgers: 6,
        seed,
        persistence,
        max_sim_time_ms: 240_000,
        ..SimConfig::default()
    });
    let mut monitor = InvariantMonitor::new(BTreeSet::new(), 0);
    let ids = sim.validator_ids();
    // Step until exactly one node has externalized a slot the other
    // three have not: the three laggards are mid-ballot, their
    // confirm-commit votes for the winning value already on the wire
    // (that is what let the first node externalize).
    let mut lone: Option<(NodeId, SlotIndex)> = None;
    while lone.is_none() && sim.step() {
        for id in &ids {
            if let Some((slot, _)) = sim.externalizations(*id).last() {
                let all_lag = ids
                    .iter()
                    .filter(|o| *o != id)
                    .all(|o| !sim.externalizations(*o).iter().any(|(s, _)| s == slot));
                if all_lag {
                    lone = Some((*id, *slot));
                    break;
                }
            }
        }
    }
    let (first, slot) = lone.expect("some node must externalize a slot first");
    let others: Vec<NodeId> = ids.iter().copied().filter(|o| *o != first).collect();
    // Isolate the early externalizer (it keeps value x for the slot and
    // cannot help the others re-decide), then power-cycle the trio with
    // a few seconds of downtime so their re-proposed close times land in
    // a later second — an amnesiac re-decision cannot accidentally equal
    // the original value.
    sim.set_partition(&[vec![first], others.clone()], None);
    for id in &others {
        sim.crash(*id);
    }
    let resume_at = sim.now_ms() + 3_000;
    while sim.now_ms() < resume_at && sim.step() {}
    for id in &others {
        sim.revive(*id);
    }
    // The trio is a 3-of-4 quorum on its own: let it re-decide the slot
    // and check every decision against the first externalizer's.
    let deadline = sim.now_ms() + 60_000;
    let mut decided = false;
    while sim.now_ms() < deadline && sim.step() {
        monitor.on_tick(&sim);
        decided = others
            .iter()
            .all(|o| sim.externalizations(*o).iter().any(|(s, _)| *s == slot));
        if decided || !monitor.is_clean() {
            break;
        }
    }
    monitor.on_tick(&sim);
    AmnesiaOutcome {
        violations: monitor.violations().to_vec(),
        slot,
        first_externalizer: first,
        trio_decided: decided,
    }
}

/// Builds a randomized reboot schedule: `n_restarts` atomic restarts of
/// pseudo-random validators at pseudo-random times in `window_ms`,
/// deterministic in `seed`.
pub fn restart_storm_schedule(
    seed: u64,
    n_validators: u32,
    n_restarts: usize,
    window_ms: (u64, u64),
) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5708);
    let mut b = FaultSchedule::builder();
    for _ in 0..n_restarts {
        let at = rng.gen_range(window_ms.0..window_ms.1);
        let node = NodeId(rng.gen_range(0..n_validators));
        b = b.restart_at(at, node);
    }
    b.build()
}

/// Runs one randomized restart storm on a 4-validator mesh with
/// persistence on and returns the chaos report. A clean report means no
/// restarted node equivocated (safety) and everyone still reached the
/// ledger target (no stall).
pub fn restart_storm(seed: u64, n_restarts: usize, target_ledgers: u64) -> ChaosReport {
    restart_storm_on(
        seed,
        n_restarts,
        target_ledgers,
        stellar_store::BackendKind::from_env(),
    )
}

/// [`restart_storm`] pinned to a specific ledger storage backend. On
/// [`stellar_store::BackendKind::Disk`] every reboot also crashes the
/// node's data disk, so recovery exercises the durable-store fast path
/// (or its genesis-replay fallback) under the storm.
pub fn restart_storm_on(
    seed: u64,
    n_restarts: usize,
    target_ledgers: u64,
    backend: stellar_store::BackendKind,
) -> ChaosReport {
    let sim = SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 10,
        target_ledgers,
        seed,
        max_sim_time_ms: 600_000,
        store_backend: backend,
        ..SimConfig::default()
    };
    let window = (6_000, 6_000 + sim.ledger_interval_ms * target_ledgers);
    let schedule = restart_storm_schedule(seed, 4, n_restarts, window);
    ChaosRun::new(ChaosConfig {
        sim,
        adversaries: Vec::new(),
        schedule,
        liveness_bound_ms: 60_000,
        monitor_interval_ms: 250,
        record_trace: false,
    })
    .run()
}

/// Runs a randomized device-fault storm on the disk backend: before
/// each reboot the victim's disks (write-ahead log *and* ledger data
/// disk) suffer a burst of failed fsyncs, and half the reboots tear the
/// oldest unsynced record on the way down. Torn data disks force the
/// genesis-replay fallback; intact ones take the durable fast path —
/// either way the run must stay violation-free and reach the target.
pub fn disk_fault_storm(seed: u64, n_restarts: usize, target_ledgers: u64) -> ChaosReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C);
    let window = (6_000u64, 6_000 + 5_000 * target_ledgers);
    let mut b = FaultSchedule::builder();
    for i in 0..n_restarts {
        let at = rng.gen_range(window.0..window.1);
        let node = NodeId(rng.gen_range(0..4));
        b = b.fail_fsyncs_at(at.saturating_sub(500), node, rng.gen_range(1..4));
        if i % 2 == 0 {
            b = b.torn_write_at(at, node);
        }
        b = b.restart_at(at, node);
    }
    let sim = SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 10,
        target_ledgers,
        seed,
        max_sim_time_ms: 600_000,
        store_backend: stellar_store::BackendKind::Disk,
        ..SimConfig::default()
    };
    ChaosRun::new(ChaosConfig {
        sim,
        adversaries: Vec::new(),
        schedule: b.build(),
        liveness_bound_ms: 60_000,
        monitor_interval_ms: 250,
        record_trace: false,
    })
    .run()
}

/// The observer header chains of a persistence twin run: one seed, one
/// undisturbed run, and one run suffering mid-run reboots.
#[derive(Clone, Debug)]
pub struct TwinOutcome {
    /// `(seq, header hash)` chain of the undisturbed run.
    pub undisturbed: Vec<(u64, Hash256)>,
    /// `(seq, header hash)` chain of the rebooted run.
    pub disturbed: Vec<(u64, Hash256)>,
    /// The highest sequence both runs were asked to reach.
    pub target_seq: u64,
}

impl TwinOutcome {
    /// True when both runs externalized byte-identical headers for every
    /// sequence up to the target — durable recovery left no trace in the
    /// chain the network agreed on.
    pub fn headers_identical(&self) -> bool {
        let up_to = |chain: &[(u64, Hash256)]| -> BTreeMap<u64, Hash256> {
            chain
                .iter()
                .copied()
                .filter(|(seq, _)| *seq <= self.target_seq)
                .collect()
        };
        let a = up_to(&self.undisturbed);
        let b = up_to(&self.disturbed);
        !a.is_empty() && a == b
    }
}

/// Runs the persistence twin experiment: the same `SimConfig` (zero tx
/// load, persistence on) twice, once undisturbed and once with the
/// given `(at_ms, node)` reboots applied mid-run, and returns both
/// observer header chains for comparison.
pub fn persistence_twin_run(seed: u64, restarts: &[(u64, NodeId)]) -> TwinOutcome {
    let cfg = SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 10,
        tx_rate: 0.0,
        target_ledgers: 8,
        seed,
        max_sim_time_ms: 300_000,
        ..SimConfig::default()
    };
    let target_seq = 1 + cfg.target_ledgers;
    let mut undisturbed = Simulation::new(cfg.clone());
    undisturbed.run();
    let mut disturbed = Simulation::new(cfg);
    let mut pending: Vec<(u64, NodeId)> = restarts.to_vec();
    pending.sort_by_key(|(at, _)| *at);
    let mut next = 0;
    loop {
        while next < pending.len() && pending[next].0 <= disturbed.now_ms() {
            let (_, node) = pending[next];
            disturbed.restart(node);
            next += 1;
        }
        let done = next == pending.len()
            && disturbed
                .validator_ids()
                .into_iter()
                .all(|id| disturbed.ledger_seq_of(id) >= target_seq);
        if done || !disturbed.step() {
            break;
        }
    }
    let observer = undisturbed.observer_id();
    TwinOutcome {
        undisturbed: undisturbed.header_hashes(observer),
        disturbed: disturbed.header_hashes(observer),
        target_seq,
    }
}

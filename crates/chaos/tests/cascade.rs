//! Cascade-campaign integration suite: staged org failures against a
//! generated topology, run through the full simulator, cross-checked
//! against the analytic survival frontier.
//!
//! - below the frontier, campaigns externalize with zero monitor
//!   violations and no collapse attribution;
//! - past it, the monitor's frontier report reproduces the cascade and
//!   names the triggering org stage;
//! - halt-and-reconfigure turns a stalled configuration back into one
//!   that closes ledgers;
//! - and everything — schedules, frontiers, reports — is byte-identical
//!   across same-seed twin runs.

use std::collections::BTreeSet;
use stellar_chaos::cascade::{analyze_cascade, CascadeOrder, CascadePlan};
use stellar_chaos::runner::{ChaosConfig, ChaosReport, ChaosRun};
use stellar_chaos::{CollapseKind, Violation};
use stellar_quorum::{generate, CheckerOptions, TopologyFamily, TopologySpec};
use stellar_scp::NodeId;
use stellar_sim::scenario::Scenario;
use stellar_sim::SimConfig;

/// 8 uniform orgs × 2 validators: small enough to simulate, big enough
/// that liveness lapses (at 3 org failures) before safety does (at 4).
fn spec() -> TopologySpec {
    TopologySpec::new(TopologyFamily::Uniform, 8, 2, 2)
}

fn plan(n_stages: usize, heal_at_ms: Option<u64>) -> CascadePlan {
    CascadePlan {
        order: CascadeOrder::Random,
        n_stages,
        start_ms: 12_000,
        stage_interval_ms: 6_000,
        heal_at_ms,
        seed: 7,
    }
}

fn run_campaign(p: &CascadePlan, target_ledgers: u64, liveness_bound_ms: u64) -> ChaosReport {
    let topo = generate(&spec());
    ChaosRun::new(ChaosConfig {
        sim: SimConfig {
            scenario: Scenario::Generated { spec: spec() },
            n_accounts: 40,
            tx_rate: 2.0,
            target_ledgers,
            seed: 0xCA5C,
            max_sim_time_ms: 120_000,
            ..SimConfig::default()
        },
        schedule: p.schedule(&topo),
        liveness_bound_ms,
        ..ChaosConfig::default()
    })
    .run()
}

fn is_safety(v: &Violation) -> bool {
    !matches!(v, Violation::LivenessStall { .. })
}

#[test]
fn below_frontier_campaigns_externalize_cleanly() {
    let topo = generate(&spec());
    let full = plan(8, None);
    let analysis = analyze_cascade(&topo, &full.stages(&topo), &CheckerOptions::default());
    let live_frontier = analysis
        .stages
        .iter()
        .take_while(|s| s.live && s.safe)
        .count();
    assert!(live_frontier >= 1, "one org down must leave a live quorum");

    let p = plan(live_frontier, None);
    let report = run_campaign(&p, 10, 60_000);
    assert!(
        report.is_clean(),
        "below-frontier campaign must be violation-free: {:?}",
        report.violations
    );
    assert!(
        report.frontier.triggering_stage.is_none(),
        "no collapse below the frontier: {:?}",
        report.frontier
    );
    assert_eq!(report.frontier.frontier, live_frontier);
    assert_eq!(report.stage_marks.len(), live_frontier);
    // The watchdog saw the scheduled crashes, but as *expected* downtime
    // — none of the scripted victims' stalls surface as real alerts.
    let victims: BTreeSet<NodeId> = full.stages(&topo)[..live_frontier]
        .iter()
        .flat_map(|s| s.validators.iter().copied())
        .collect();
    for alert in &report.health {
        let node = match alert {
            stellar_sim::HealthAlert::StuckSlot { node, .. } => *node,
            stellar_sim::HealthAlert::SlowClose { node, .. } => *node,
        };
        assert!(
            !victims.contains(&node),
            "scheduled victim {node:?} raised an unexpected real alert: {alert:?}"
        );
    }
}

#[test]
fn past_frontier_report_names_the_triggering_stage() {
    let report = run_campaign(&plan(8, None), 16, 60_000);
    assert_eq!(report.stage_marks.len(), 8);
    let trigger = report
        .frontier
        .triggering_stage
        .as_ref()
        .expect("an 8-of-8 org campaign must collapse");
    assert!(trigger.stage >= 2, "a single org failure cannot collapse");
    assert!(!trigger.label.is_empty(), "trigger must name the org");
    assert_eq!(report.frontier.frontier, trigger.stage - 1);
    // A crash-only cascade collapses intactness; it cannot forge
    // divergence, so the run stays free of safety violations.
    assert_eq!(
        report.frontier.collapse,
        Some(CollapseKind::IntactCollapse),
        "{:?}",
        report.frontier
    );
    assert!(
        !report.violations.iter().any(is_safety),
        "crash-only cascade forged divergence: {:?}",
        report.violations
    );
    // The trigger label is a real org of the generated topology.
    let topo = generate(&spec());
    assert!(
        topo.orgs.iter().any(|o| o.name == trigger.label),
        "unknown org {:?}",
        trigger.label
    );
}

#[test]
fn halt_and_reconfigure_resumes_closing() {
    let topo = generate(&spec());
    let full = plan(8, None);
    let analysis = analyze_cascade(&topo, &full.stages(&topo), &CheckerOptions::default());
    // The first prefix that stalls the old configuration but heals into
    // a live, intersecting one (8 uniform orgs: 3 failures).
    let stalled = analysis
        .stages
        .iter()
        .find(|s| !s.live && s.safe && s.heal_live)
        .expect("some prefix stalls yet heals");
    let k = stalled.stage;
    let last_stage_ms = 12_000 + (k as u64 - 1) * 6_000;

    // Without healing, the survivors stop closing: the run exhausts its
    // sim-time budget with every surviving node stuck.
    let unhealed = run_campaign(&plan(k, None), 30, 0);
    let crashed: BTreeSet<NodeId> = full.stages(&topo)[..k]
        .iter()
        .flat_map(|s| s.validators.iter().copied())
        .collect();
    let survivor_seq = |r: &ChaosReport| {
        r.final_seqs
            .iter()
            .filter(|(id, _)| !crashed.contains(id))
            .map(|(_, s)| *s)
            .max()
            .expect("survivors exist")
    };
    let stalled_seq = survivor_seq(&unhealed);

    // With a halt-and-reconfigure step shortly after the last failure,
    // the survivors adopt a configuration synthesized over the living
    // orgs and resume closing ledgers.
    let healed = run_campaign(&plan(k, Some(last_stage_ms + 12_000)), 30, 0);
    let healed_seq = survivor_seq(&healed);
    assert!(
        healed_seq > stalled_seq,
        "healed survivors must out-close the stalled twin ({healed_seq} vs {stalled_seq})"
    );
    assert!(
        !healed.violations.iter().any(is_safety),
        "healing must not forge divergence: {:?}",
        healed.violations
    );
}

#[test]
fn twin_runs_are_byte_identical() {
    let p = plan(2, None);
    let a = run_campaign(&p, 8, 60_000);
    let b = run_campaign(&p, 8, 60_000);
    assert_eq!(a.final_seqs, b.final_seqs);
    assert_eq!(format!("{:?}", a.violations), format!("{:?}", b.violations));
    assert_eq!(
        format!("{:?}", a.stage_marks),
        format!("{:?}", b.stage_marks)
    );
    assert_eq!(format!("{:?}", a.frontier), format!("{:?}", b.frontier));
    assert_eq!(
        format!("{:?}", a.expected_health),
        format!("{:?}", b.expected_health)
    );

    // The analytic layer twins too, down to rendered JSON.
    let topo = generate(&spec());
    let full = plan(8, None);
    let x = analyze_cascade(&topo, &full.stages(&topo), &CheckerOptions::default());
    let y = analyze_cascade(&topo, &full.stages(&topo), &CheckerOptions::default());
    assert_eq!(x.to_json().render_pretty(), y.to_json().render_pretty());
}

//! Acceptance: durable persistence is what stands between a reboot and
//! an SCP safety violation (§3, §5.4).
//!
//! The same amnesia scenario runs with persistence off (the rebooted
//! quorum forgets its confirm-commit votes and contradicts them — the
//! monitor must catch the divergence) and on (the restored ballot state
//! pins the quorum to its pre-reboot value — the run must stay clean).
//! Randomized restart storms and a differential twin run then check the
//! property statistically and byte-for-byte.

use stellar_chaos::recovery::{
    amnesia_restart_scenario, disk_fault_storm, persistence_twin_run, restart_storm,
    restart_storm_on,
};
use stellar_chaos::Violation;
use stellar_scp::NodeId;

#[test]
fn amnesiac_restart_equivocates_without_persistence() {
    let out = amnesia_restart_scenario(false, 901);
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, Violation::ValueDivergence { slot, .. } if *slot == out.slot)),
        "an amnesiac quorum must contradict its pre-reboot votes on \
         slot {} (first externalized by {}): {:?}",
        out.slot,
        out.first_externalizer,
        out.violations
    );
}

#[test]
fn durable_restart_never_equivocates() {
    let out = amnesia_restart_scenario(true, 901);
    assert!(
        out.trio_decided,
        "the restored quorum must re-decide slot {} (no stall)",
        out.slot
    );
    assert!(
        out.violations.is_empty(),
        "restored ballot state must pin the quorum to its pre-reboot \
         value: {:?}",
        out.violations
    );
}

#[test]
fn restart_storms_stay_safe_with_persistence() {
    // 25 randomized reboot storms, each hammering a 4-validator mesh
    // with 6 restarts: with write-ahead persistence nobody may
    // equivocate (safety) and everybody must still reach the ledger
    // target (no stall).
    for trial in 0..25u64 {
        let report = restart_storm(9_000 + trial, 6, 6);
        assert!(report.is_clean(), "trial {trial}: {:?}", report.violations);
        for (id, seq) in &report.final_seqs {
            assert!(*seq >= 7, "trial {trial}: node {id} stalled at seq {seq}");
        }
    }
}

#[test]
fn restart_storms_stay_safe_on_the_disk_backend() {
    // Same property with the ledger on the disk backend: every reboot
    // also crashes the data disk, so the storm exercises durable-store
    // recovery (manifest + segment checksum verification, bucket-blob
    // cross-checks) under concurrent consensus.
    for trial in 0..8u64 {
        let report = restart_storm_on(9_100 + trial, 6, 6, stellar_store::BackendKind::Disk);
        assert!(report.is_clean(), "trial {trial}: {:?}", report.violations);
        for (id, seq) in &report.final_seqs {
            assert!(*seq >= 7, "trial {trial}: node {id} stalled at seq {seq}");
        }
    }
}

#[test]
fn disk_fault_storms_stay_safe() {
    // Device faults layered under the reboots: failed fsyncs leave the
    // write-back cache dirty, torn writes corrupt the oldest staged
    // record. Recovery must refuse corrupt state (falling back to
    // genesis replay + archive catch-up) and the network must neither
    // equivocate nor stall.
    for trial in 0..6u64 {
        let report = disk_fault_storm(9_300 + trial, 5, 6);
        assert!(report.is_clean(), "trial {trial}: {:?}", report.violations);
        for (id, seq) in &report.final_seqs {
            assert!(*seq >= 7, "trial {trial}: node {id} stalled at seq {seq}");
        }
    }
}

#[test]
fn rebooted_run_externalizes_identical_ledgers() {
    // Differential check: rebooting three different nodes mid-run must
    // leave the externalized chain byte-identical to an undisturbed twin
    // from the same seed — recovery is invisible to the network.
    let twin = persistence_twin_run(
        77,
        &[
            (12_300, NodeId(1)),
            (22_400, NodeId(2)),
            (31_700, NodeId(3)),
        ],
    );
    assert!(
        twin.headers_identical(),
        "disturbed run diverged from its twin:\n  undisturbed: {:?}\n  disturbed: {:?}",
        twin.undisturbed,
        twin.disturbed
    );
}

//! Acceptance tests for the chaos subsystem: the paper's conditional
//! guarantees, exercised end-to-end under scripted faults and live
//! Byzantine adversaries.

use std::collections::BTreeSet;
use stellar_chaos::adversary::Strategy;
use stellar_chaos::monitor::Violation;
use stellar_chaos::runner::{ChaosConfig, ChaosRun};
use stellar_chaos::schedule::FaultSchedule;
use stellar_overlay::LinkFault;
use stellar_scp::NodeId;
use stellar_sim::scenario::Scenario;
use stellar_sim::SimConfig;

fn byz_mesh(n: u32, target_ledgers: u64, seed: u64) -> SimConfig {
    SimConfig {
        scenario: Scenario::ByzantineMesh { n_validators: n },
        n_accounts: 50,
        tx_rate: 0.0,
        target_ledgers,
        seed,
        max_sim_time_ms: 300_000,
        ..SimConfig::default()
    }
}

/// The tentpole acceptance criterion: equivocating adversaries below the
/// quorum-intersection threshold (`f = 2` for 7 nodes with `n − f`
/// slices) must not split the intact nodes — every intact node
/// externalizes the identical value at every slot, and the ledger header
/// hashes chain identically.
#[test]
fn equivocators_below_threshold_cannot_split_intact_nodes() {
    let mut run = ChaosRun::new(ChaosConfig {
        sim: byz_mesh(7, 3, 0xC0FFEE),
        adversaries: vec![
            (NodeId(5), Strategy::EquivocateNomination),
            (NodeId(6), Strategy::SplitConfirm),
        ],
        ..ChaosConfig::default()
    });
    let target = 1 + run.sim().config().target_ledgers;
    while run.step() {
        let honest_done = run
            .sim()
            .validator_ids()
            .into_iter()
            .all(|id| run.sim().is_puppet(id) || run.sim().ledger_seq_of(id) >= target);
        if honest_done {
            break;
        }
    }
    assert!(
        run.violations().is_empty(),
        "monitor must stay clean: {:?}",
        run.violations()
    );
    let honest: Vec<NodeId> = (0..5).map(NodeId).collect();
    for id in &honest {
        assert!(
            run.sim().ledger_seq_of(*id) >= target,
            "honest node {id} stalled under equivocation"
        );
    }
    // Explicit cross-check, independent of the monitor: identical values
    // per slot and identical header hashes per sequence, across every
    // honest node.
    let reference = run.sim().externalizations(honest[0]);
    assert!(!reference.is_empty());
    let ref_headers = run.sim().header_hashes(honest[0]);
    for id in &honest[1..] {
        let ext = run.sim().externalizations(*id);
        for (slot, value) in &ext {
            if let Some((_, v0)) = reference.iter().find(|(s, _)| s == slot) {
                assert_eq!(v0, value, "slot {slot} split between honest nodes");
            }
        }
        let headers = run.sim().header_hashes(*id);
        for (seq, hash) in &headers {
            if let Some((_, h0)) = ref_headers.iter().find(|(s, _)| s == seq) {
                assert_eq!(h0, hash, "ledger {seq} hash diverged");
            }
        }
    }
}

/// Determinism: the same seed and the same fault script must reproduce
/// the identical event trace, entry for entry — including adversary
/// injections and probabilistic link faults.
#[test]
fn same_seed_reproduces_identical_event_trace() {
    let make = || {
        ChaosRun::new(ChaosConfig {
            sim: byz_mesh(5, 2, 77),
            adversaries: vec![(NodeId(4), Strategy::EquivocateNomination)],
            schedule: FaultSchedule::builder()
                .link_fault_at(
                    2_000,
                    NodeId(0),
                    NodeId(1),
                    LinkFault::none().with_drop(0.3),
                )
                .crash_at(9_000, NodeId(3))
                .revive_at(15_000, NodeId(3))
                .build(),
            record_trace: true,
            ..ChaosConfig::default()
        })
        .run()
    };
    let a = make();
    let b = make();
    assert!(!a.trace.is_empty(), "trace must be recorded");
    assert_eq!(a.trace.len(), b.trace.len(), "trace lengths differ");
    assert_eq!(a.trace, b.trace, "same seed must replay identically");
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.final_seqs, b.final_seqs);
}

/// A silent-but-subscribed adversary plus a scripted crash still leaves
/// an intact quorum (5 honest of 7, `f = 2`), which must keep closing
/// ledgers and stay clean.
#[test]
fn silence_and_crash_below_threshold_stay_clean_and_live() {
    let report = ChaosRun::new(ChaosConfig {
        sim: byz_mesh(7, 3, 31),
        adversaries: vec![(NodeId(6), Strategy::Silent)],
        schedule: FaultSchedule::builder()
            .crash_at(7_000, NodeId(5))
            .revive_at(20_000, NodeId(5))
            .build(),
        ..ChaosConfig::default()
    })
    .run();
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(
        report.intact.len() >= 5,
        "after the revive the intact set must cover every honest node: {:?}",
        report.intact
    );
    for (id, seq) in &report.final_seqs {
        if *id != NodeId(6) {
            assert!(*seq >= 4, "node {id} stuck at ledger {seq}");
        }
    }
}

/// Stale replay floods must bounce off de-duplication and old-slot
/// handling without perturbing consensus.
#[test]
fn stale_replay_is_harmless() {
    let report = ChaosRun::new(ChaosConfig {
        sim: byz_mesh(5, 3, 12),
        adversaries: vec![(NodeId(4), Strategy::ReplayStale)],
        ..ChaosConfig::default()
    })
    .run();
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(report.injections > 0, "replayer must actually replay");
}

/// The liveness monitor works: severing every link (without a declared
/// partition, so the intact quorum still *looks* connected) must be
/// reported as a stall once the bound passes.
#[test]
fn total_message_loss_is_reported_as_a_liveness_stall() {
    let report = ChaosRun::new(ChaosConfig {
        sim: SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 50,
            tx_rate: 2.0,
            target_ledgers: 8,
            seed: 3,
            max_sim_time_ms: 90_000,
            ..SimConfig::default()
        },
        schedule: FaultSchedule::builder()
            .default_link_fault_at(6_000, LinkFault::none().with_drop(1.0))
            .build(),
        liveness_bound_ms: 20_000,
        ..ChaosConfig::default()
    })
    .run();
    let stalls: Vec<&Violation> = report
        .violations
        .iter()
        .filter(|v| matches!(v, Violation::LivenessStall { .. }))
        .collect();
    assert!(
        !stalls.is_empty(),
        "dropping all traffic must trip the liveness monitor; got {:?}",
        report.violations
    );
    // And no bogus safety findings: nodes stalled, they did not diverge.
    assert_eq!(stalls.len(), report.violations.len());
    // A violating run must ship the observer's flight-recorder dump: the
    // per-slot timeline of the stall (timers arming/firing with nothing
    // arriving) is the debugging artifact the chaos harness exists for.
    assert!(
        !report.flight_recording.is_empty(),
        "violations must capture a flight recording"
    );
    assert!(
        report.flight_recording.contains("timeline"),
        "recording must render per-slot timelines:\n{}",
        report.flight_recording
    );
    assert!(
        report.flight_recording.contains("timer armed"),
        "the stalled slot's timeline must show timer activity:\n{}",
        report.flight_recording
    );
    // The stall also ships causal traces of the in-flight transactions:
    // each one shows submission (and, before the faults landed, flood
    // hops) with no apply — the per-transaction view of the stall.
    assert!(
        report.causal_traces.contains("trace "),
        "a stall must attach in-flight transaction traces:\n{}",
        report.causal_traces
    );
    assert!(
        report.causal_traces.contains("submit"),
        "in-flight traces start at submission:\n{}",
        report.causal_traces
    );
    // And the health watchdog flags the stuck nodes independently of the
    // invariant monitor.
    assert!(
        !report.health.is_empty(),
        "nodes stuck for the whole back half of the run must raise \
         stuck-slot alerts"
    );
}

/// Clean runs stay lean: no violations, no flight recording attached.
#[test]
fn clean_run_attaches_no_flight_recording() {
    let report = ChaosRun::new(ChaosConfig {
        sim: byz_mesh(4, 2, 21),
        ..ChaosConfig::default()
    })
    .run();
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(report.flight_recording.is_empty());
    assert!(report.causal_traces.is_empty());
    assert!(
        report.health.is_empty(),
        "a healthy run raises no watchdog alerts: {:?}",
        report.health
    );
}

/// A partition into two non-quorum halves declared to the monitor makes
/// liveness ineligible — no stall may be reported while split, and after
/// the heal the network must resume and finish clean.
#[test]
fn declared_partition_suspends_liveness_judgment() {
    let ids: Vec<NodeId> = (0..6).map(NodeId).collect();
    let report = ChaosRun::new(ChaosConfig {
        sim: byz_mesh(6, 4, 9),
        schedule: FaultSchedule::builder()
            .partition_at(
                8_000,
                vec![ids[..3].to_vec(), ids[3..].to_vec()],
                Some(40_000),
            )
            .build(),
        liveness_bound_ms: 25_000,
        ..ChaosConfig::default()
    })
    .run();
    assert!(report.is_clean(), "{:?}", report.violations);
    let seqs: BTreeSet<u64> = report.final_seqs.iter().map(|(_, s)| *s).collect();
    assert!(
        seqs.iter().all(|s| *s >= 5),
        "all nodes must finish after the heal: {:?}",
        report.final_seqs
    );
}

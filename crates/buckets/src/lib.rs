//! The bucket list and history archive (paper §5.1, §5.4, Fig. 3).
//!
//! Stellar cannot rehash hundreds of millions of ledger entries on every
//! 5-second ledger close, nor ship a full snapshot to every node that
//! reconnects. The **bucket list** solves both: ledger entries are
//! stratified *by time of last modification* into exponentially sized
//! buckets, so each close only touches the small, hot top levels, and
//! reconciliation after a disconnect only downloads the buckets that
//! differ. The paper notes the structure's similarity to log-structured
//! merge trees, relaxed because buckets are only ever read sequentially
//! during merges — random access by key stays in the ledger store.
//!
//! * [`bucket`] — a single sorted bucket of live entries and tombstones,
//!   with a content hash and a sequential merge.
//! * [`bucket_list`] — the leveled structure: level *i* spills into level
//!   *i+1* every `4^(i+1)` ledgers; the cumulative hash over the level
//!   hashes is the ledger header's snapshot hash.
//! * [`archive`] — the write-only history archive: checkpointed bucket
//!   snapshots plus every transaction set, enough for a new node to
//!   bootstrap ("there needs to be some place one can look up a
//!   transaction from two years ago").
//!
//! Simplification noted in `DESIGN.md`: production splits each level into
//! `curr`/`snap` halves and merges in background threads to bound
//! per-ledger I/O; merges here are synchronous and in-memory, preserving
//! the same asymptotics (work per close amortizes to O(changes · levels))
//! with simpler code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod bucket;
pub mod bucket_list;

pub use archive::HistoryArchive;
pub use bucket::{Bucket, BucketEntry};
pub use bucket_list::BucketList;

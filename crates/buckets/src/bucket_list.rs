//! The leveled bucket list (§5.1): snapshot hashing that scales.
//!
//! Entries are stratified by time of last modification into exponentially
//! sized levels. Each ledger close merges that ledger's changes into level
//! 0; every `4^(i+1)` ledgers, level *i* spills into level *i+1*. Most
//! closes therefore touch only the small top levels, and the big cold
//! buckets at the bottom are merged (and re-hashed) exponentially rarely —
//! this is the "overhead of merging buckets, which get larger" visible in
//! the paper's Fig. 9 account sweep.

use crate::bucket::Bucket;
use stellar_crypto::{sha256::Sha256, Hash256};
use stellar_ledger::entry::{LedgerEntry, LedgerKey};

/// Number of levels; `4^(NUM_LEVELS)` ledgers before the bottom level
/// spills, which at 5 s/ledger is far beyond any experiment horizon.
pub const NUM_LEVELS: usize = 10;

/// The leveled bucket structure.
#[derive(Clone, Debug)]
pub struct BucketList {
    levels: Vec<Bucket>,
    /// Cached per-level hashes, invalidated on change.
    level_hashes: Vec<Option<Hash256>>,
    /// Cumulative work counter: slots merged so far (metrics for the
    /// Fig. 9 "merging buckets" overhead).
    pub merge_work: u64,
}

impl Default for BucketList {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketList {
    /// An empty bucket list.
    pub fn new() -> BucketList {
        BucketList {
            levels: vec![Bucket::empty(); NUM_LEVELS],
            level_hashes: vec![None; NUM_LEVELS],
            merge_work: 0,
        }
    }

    /// Seeds the list from a full state snapshot (genesis or catch-up):
    /// everything lands in the bottom level, as if untouched for ages.
    pub fn seed(entries: impl IntoIterator<Item = LedgerEntry>) -> BucketList {
        let mut list = BucketList::new();
        let changes: Vec<(LedgerKey, Option<LedgerEntry>)> =
            entries.into_iter().map(|e| (e.key(), Some(e))).collect();
        list.levels[NUM_LEVELS - 1] = Bucket::from_changes(&changes);
        list
    }

    /// The spill period of level `i`: it spills into `i+1` every
    /// `4^(i+1)` ledgers.
    fn spill_period(i: usize) -> u64 {
        4u64.pow(i as u32 + 1)
    }

    /// Adds one ledger's change batch (at `ledger_seq`) and performs any
    /// spills that fall due.
    pub fn add_batch(&mut self, ledger_seq: u64, changes: &[(LedgerKey, Option<LedgerEntry>)]) {
        // Spill from the deepest due level upward, so a batch never
        // leapfrogs levels within one close. Skip the bottom level (it
        // only accumulates).
        for i in (0..NUM_LEVELS - 1).rev() {
            if ledger_seq.is_multiple_of(Self::spill_period(i)) && !self.levels[i].is_empty() {
                let spilled = std::mem::take(&mut self.levels[i]);
                let bottom = i + 1 == NUM_LEVELS - 1;
                self.merge_work += (spilled.len() + self.levels[i + 1].len()) as u64;
                self.levels[i + 1] = self.levels[i + 1].merge(&spilled, bottom);
                self.level_hashes[i] = None;
                self.level_hashes[i + 1] = None;
            }
        }
        if !changes.is_empty() {
            let batch = Bucket::from_changes(changes);
            self.merge_work += (batch.len() + self.levels[0].len()) as u64;
            self.levels[0] = self.levels[0].merge(&batch, false);
            self.level_hashes[0] = None;
        }
    }

    /// The snapshot hash: a cumulative hash over the per-level bucket
    /// hashes ("a small, fixed index of reference hashes", §5.1).
    pub fn hash(&mut self) -> Hash256 {
        let mut h = Sha256::new();
        for i in 0..NUM_LEVELS {
            let lh = match self.level_hashes[i] {
                Some(x) => x,
                None => {
                    let x = self.levels[i].hash();
                    self.level_hashes[i] = Some(x);
                    x
                }
            };
            h.update(lh.as_bytes());
        }
        h.finish()
    }

    /// Per-level bucket hashes (what peers exchange to reconcile: only
    /// buckets whose hashes differ need downloading).
    pub fn level_hashes(&mut self) -> Vec<Hash256> {
        (0..NUM_LEVELS)
            .map(|i| match self.level_hashes[i] {
                Some(x) => x,
                None => {
                    let x = self.levels[i].hash();
                    self.level_hashes[i] = Some(x);
                    x
                }
            })
            .collect()
    }

    /// Read access to a level (archive snapshots, tests).
    pub fn level(&self, i: usize) -> &Bucket {
        &self.levels[i]
    }

    /// Total slots across all levels.
    pub fn total_entries(&self) -> usize {
        self.levels.iter().map(Bucket::len).sum()
    }

    /// Reconstructs the latest live state by merging bottom-up (catch-up
    /// path for a new node that downloaded the buckets).
    pub fn reconstruct_state(&self) -> Vec<LedgerEntry> {
        let mut acc = Bucket::empty();
        for i in (0..NUM_LEVELS).rev() {
            acc = acc.merge(&self.levels[i], false);
        }
        acc.live_entries().cloned().collect()
    }

    /// Which levels differ from another list (reconciliation after a
    /// disconnect downloads only these).
    pub fn diff_levels(&mut self, other: &mut BucketList) -> Vec<usize> {
        let a = self.level_hashes();
        let b = other.level_hashes();
        (0..NUM_LEVELS).filter(|&i| a[i] != b[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::PublicKey;
    use stellar_ledger::entry::{AccountEntry, AccountId};

    fn change(n: u64, balance: i64) -> (LedgerKey, Option<LedgerEntry>) {
        let id = AccountId(PublicKey(n));
        (
            LedgerKey::Account(id),
            Some(LedgerEntry::Account(AccountEntry::new(id, balance))),
        )
    }

    fn delete(n: u64) -> (LedgerKey, Option<LedgerEntry>) {
        (LedgerKey::Account(AccountId(PublicKey(n))), None)
    }

    #[test]
    fn hash_changes_with_batches() {
        let mut bl = BucketList::new();
        let h0 = bl.hash();
        bl.add_batch(1, &[change(1, 10)]);
        let h1 = bl.hash();
        assert_ne!(h0, h1);
        bl.add_batch(2, &[change(1, 20)]);
        assert_ne!(h1, bl.hash());
    }

    #[test]
    fn identical_histories_identical_hashes() {
        let mut a = BucketList::new();
        let mut b = BucketList::new();
        for seq in 1..=100u64 {
            let batch = [change(seq % 7, seq as i64)];
            a.add_batch(seq, &batch);
            b.add_batch(seq, &batch);
        }
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn spills_move_entries_down() {
        let mut bl = BucketList::new();
        for seq in 1..=16u64 {
            bl.add_batch(seq, &[change(seq, seq as i64)]);
        }
        // After 16 ledgers, level-0 spilled at 4, 8, 12, 16 and level-1
        // spilled at 16.
        assert!(!bl.level(1).is_empty() || !bl.level(2).is_empty());
        assert_eq!(bl.reconstruct_state().len(), 16);
    }

    #[test]
    fn reconstruct_state_sees_latest_versions_and_deletes() {
        let mut bl = BucketList::new();
        bl.add_batch(1, &[change(1, 10), change(2, 20)]);
        bl.add_batch(2, &[change(1, 99)]);
        bl.add_batch(3, &[delete(2)]);
        let state = bl.reconstruct_state();
        assert_eq!(state.len(), 1);
        match &state[0] {
            LedgerEntry::Account(a) => assert_eq!(a.balance, 99),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seeded_list_reconstructs_seed() {
        let entries: Vec<LedgerEntry> = (0..50u64)
            .map(|n| LedgerEntry::Account(AccountEntry::new(AccountId(PublicKey(n)), n as i64)))
            .collect();
        let bl = BucketList::seed(entries.clone());
        let mut got = bl.reconstruct_state();
        got.sort_by_key(|e| e.key());
        assert_eq!(got.len(), entries.len());
    }

    #[test]
    fn diff_levels_detects_divergence() {
        let mut a = BucketList::new();
        let mut b = BucketList::new();
        for seq in 1..=20u64 {
            let batch = [change(seq, seq as i64)];
            a.add_batch(seq, &batch);
            b.add_batch(seq, &batch);
        }
        assert!(a.diff_levels(&mut b).is_empty());
        b.add_batch(21, &[change(999, 1)]);
        a.add_batch(21, &[]);
        assert!(!a.diff_levels(&mut b).is_empty());
    }

    #[test]
    fn merge_work_grows_with_account_count() {
        // The Fig. 9 effect: more accounts ⇒ bigger buckets ⇒ more merge
        // work per spill.
        let work = |n: u64| {
            let mut bl = BucketList::new();
            for seq in 1..=64u64 {
                let batch: Vec<_> = (0..n).map(|k| change(seq * 1000 + k, 1)).collect();
                bl.add_batch(seq, &batch);
            }
            bl.merge_work
        };
        assert!(work(20) > work(2) * 5);
    }

    #[test]
    fn hash_cache_consistent_with_recompute() {
        let mut bl = BucketList::new();
        for seq in 1..=40u64 {
            bl.add_batch(seq, &[change(seq % 5, seq as i64)]);
        }
        let cached = bl.hash();
        // Recompute from a fresh clone with no caches.
        let mut fresh = bl.clone();
        fresh.level_hashes = vec![None; NUM_LEVELS];
        assert_eq!(cached, fresh.hash());
    }
}

//! The leveled bucket list (§5.1): snapshot hashing that scales.
//!
//! Entries are stratified by time of last modification into exponentially
//! sized levels. Each ledger close merges that ledger's changes into level
//! 0; every `4^(i+1)` ledgers, level *i* spills into level *i+1*. Most
//! closes therefore touch only the small top levels, and the big cold
//! buckets at the bottom are merged (and re-hashed) exponentially rarely —
//! this is the "overhead of merging buckets, which get larger" visible in
//! the paper's Fig. 9 account sweep.
//!
//! With a data disk attached ([`BucketList::attach_disk`]), level blobs
//! are additionally persisted — each level's serialized form under
//! `bkt/<i>`, whose SHA-256 *is* the level hash — and cold levels (≥
//! [`SPILL_MIN_LEVEL`]) drop their in-RAM buckets entirely once their
//! blob is durable. Deep levels are then resident only as `(hash, len)`
//! bookkeeping; they are re-loaded (and hash-verified) only when a deep
//! spill falls due, which is exponentially rare. The blob format is
//! byte-identical to the history archive's checkpoint blobs, so archive
//! publishing streams spilled levels without re-encoding.

use crate::bucket::Bucket;
use std::cell::RefCell;
use std::rc::Rc;
use stellar_crypto::codec::{Decode, Encode};
use stellar_crypto::sha256::{sha256, Sha256};
use stellar_crypto::Hash256;
use stellar_ledger::entry::{LedgerEntry, LedgerKey};
use stellar_persist::DurableStore;

/// Number of levels; `4^(NUM_LEVELS)` ledgers before the bottom level
/// spills, which at 5 s/ledger is far beyond any experiment horizon.
pub const NUM_LEVELS: usize = 10;

/// Levels at or below this index are spilled to disk (RAM copy dropped)
/// once their blob is durable. Level 6 spills into 7 every 4^7 ≈ 16k
/// ledgers — deep enough that re-loading is negligible, shallow enough
/// that a seeded bottom level never stays resident.
pub const SPILL_MIN_LEVEL: usize = 6;

/// Version stamp of the on-disk bucket metadata record.
const BUCKET_META_VERSION: u32 = 1;

/// Disk key of the bucket metadata record.
const BUCKET_META_KEY: &str = "bkt/meta";

fn level_key(i: usize) -> String {
    format!("bkt/{i}")
}

/// One level: either resident, or spilled to disk with its identifying
/// hash and slot count retained.
#[derive(Clone, Debug)]
enum LevelSlot {
    /// The bucket is in RAM.
    Ram(Bucket),
    /// The bucket lives on disk under `bkt/<i>`; `hash` is the level
    /// hash (= SHA-256 of the blob), `len` its slot count, `bytes` the
    /// blob size.
    Spilled {
        hash: Hash256,
        len: usize,
        bytes: u64,
    },
}

impl LevelSlot {
    fn len(&self) -> usize {
        match self {
            LevelSlot::Ram(b) => b.len(),
            LevelSlot::Spilled { len, .. } => *len,
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The leveled bucket structure.
///
/// Cloning shares the attached data disk (the clone writes to the same
/// simulated device); validators that need independent disks construct
/// their own lists.
#[derive(Clone, Debug)]
pub struct BucketList {
    levels: Vec<LevelSlot>,
    /// Cached per-level hashes, invalidated on change. A spilled level's
    /// hash is always cached (it is the key to its blob).
    level_hashes: Vec<Option<Hash256>>,
    /// Cumulative work counter: slots merged so far (metrics for the
    /// Fig. 9 "merging buckets" overhead).
    pub merge_work: u64,
    /// The node's data disk, shared with the ledger store's disk backend
    /// so one sync per close covers both.
    disk: Option<Rc<RefCell<DurableStore>>>,
    /// Per-level hash as last made durable; levels whose current hash
    /// matches are skipped by [`BucketList::persist_levels`].
    synced: Vec<Option<Hash256>>,
}

impl Default for BucketList {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketList {
    /// An empty bucket list.
    pub fn new() -> BucketList {
        BucketList {
            levels: (0..NUM_LEVELS)
                .map(|_| LevelSlot::Ram(Bucket::empty()))
                .collect(),
            level_hashes: vec![None; NUM_LEVELS],
            merge_work: 0,
            disk: None,
            synced: vec![None; NUM_LEVELS],
        }
    }

    /// Seeds the list from a full state snapshot (genesis or catch-up):
    /// everything lands in the bottom level, as if untouched for ages.
    pub fn seed(entries: impl IntoIterator<Item = LedgerEntry>) -> BucketList {
        let mut list = BucketList::new();
        let changes: Vec<(LedgerKey, Option<LedgerEntry>)> =
            entries.into_iter().map(|e| (e.key(), Some(e))).collect();
        list.levels[NUM_LEVELS - 1] = LevelSlot::Ram(Bucket::from_changes(&changes));
        list
    }

    /// The spill period of level `i`: it spills into `i+1` every
    /// `4^(i+1)` ledgers.
    fn spill_period(i: usize) -> u64 {
        4u64.pow(i as u32 + 1)
    }

    /// Re-loads a spilled level into RAM, verifying its blob hash.
    fn ensure_ram(&mut self, i: usize) {
        let LevelSlot::Spilled { hash, .. } = self.levels[i] else {
            return;
        };
        let disk = self.disk.as_ref().expect("spilled level without a disk");
        let blob = disk
            .borrow()
            .read(&level_key(i))
            .expect("spilled bucket blob must be durable");
        assert_eq!(sha256(&blob), hash, "spilled bucket blob hash mismatch");
        let bucket = Bucket::decode(&blob).expect("durable bucket blob decodes");
        self.levels[i] = LevelSlot::Ram(bucket);
    }

    /// Read-only view of a level's bucket, loading a spilled one into a
    /// scratch copy without mutating the list.
    fn level_snapshot(&self, i: usize) -> std::borrow::Cow<'_, Bucket> {
        match &self.levels[i] {
            LevelSlot::Ram(b) => std::borrow::Cow::Borrowed(b),
            LevelSlot::Spilled { hash, .. } => {
                let disk = self.disk.as_ref().expect("spilled level without a disk");
                let blob = disk
                    .borrow()
                    .read(&level_key(i))
                    .expect("spilled bucket blob must be durable");
                assert_eq!(sha256(&blob), *hash, "spilled bucket blob hash mismatch");
                std::borrow::Cow::Owned(Bucket::decode(&blob).expect("durable blob decodes"))
            }
        }
    }

    /// Adds one ledger's change batch (at `ledger_seq`) and performs any
    /// spills that fall due.
    pub fn add_batch(&mut self, ledger_seq: u64, changes: &[(LedgerKey, Option<LedgerEntry>)]) {
        // Spill from the deepest due level upward, so a batch never
        // leapfrogs levels within one close. Skip the bottom level (it
        // only accumulates).
        for i in (0..NUM_LEVELS - 1).rev() {
            if ledger_seq.is_multiple_of(Self::spill_period(i)) && !self.levels[i].is_empty() {
                self.ensure_ram(i);
                self.ensure_ram(i + 1);
                let spilled =
                    match std::mem::replace(&mut self.levels[i], LevelSlot::Ram(Bucket::empty())) {
                        LevelSlot::Ram(b) => b,
                        LevelSlot::Spilled { .. } => unreachable!("ensure_ram loaded it"),
                    };
                let LevelSlot::Ram(below) = &self.levels[i + 1] else {
                    unreachable!("ensure_ram loaded it")
                };
                let bottom = i + 1 == NUM_LEVELS - 1;
                self.merge_work += (spilled.len() + below.len()) as u64;
                self.levels[i + 1] = LevelSlot::Ram(below.merge(&spilled, bottom));
                self.level_hashes[i] = None;
                self.level_hashes[i + 1] = None;
            }
        }
        if !changes.is_empty() {
            self.ensure_ram(0);
            let batch = Bucket::from_changes(changes);
            let LevelSlot::Ram(level0) = &self.levels[0] else {
                unreachable!("ensure_ram loaded it")
            };
            self.merge_work += (batch.len() + level0.len()) as u64;
            self.levels[0] = LevelSlot::Ram(level0.merge(&batch, false));
            self.level_hashes[0] = None;
        }
    }

    fn level_hash(&mut self, i: usize) -> Hash256 {
        match self.level_hashes[i] {
            Some(x) => x,
            None => {
                let x = match &self.levels[i] {
                    LevelSlot::Ram(b) => b.hash(),
                    LevelSlot::Spilled { hash, .. } => *hash,
                };
                self.level_hashes[i] = Some(x);
                x
            }
        }
    }

    /// The snapshot hash: a cumulative hash over the per-level bucket
    /// hashes ("a small, fixed index of reference hashes", §5.1).
    pub fn hash(&mut self) -> Hash256 {
        let mut h = Sha256::new();
        for i in 0..NUM_LEVELS {
            let lh = self.level_hash(i);
            h.update(lh.as_bytes());
        }
        h.finish()
    }

    /// Per-level bucket hashes (what peers exchange to reconcile: only
    /// buckets whose hashes differ need downloading).
    pub fn level_hashes(&mut self) -> Vec<Hash256> {
        (0..NUM_LEVELS).map(|i| self.level_hash(i)).collect()
    }

    /// Read access to a resident level (archive snapshots, tests).
    ///
    /// Panics on a disk-spilled level — use [`BucketList::level_bytes`]
    /// for a representation that works for both.
    pub fn level(&self, i: usize) -> &Bucket {
        match &self.levels[i] {
            LevelSlot::Ram(b) => b,
            LevelSlot::Spilled { .. } => {
                panic!("level {i} is spilled to disk; use level_bytes")
            }
        }
    }

    /// Slot count of a level, resident or spilled.
    pub fn level_len(&self, i: usize) -> usize {
        self.levels[i].len()
    }

    /// A level's serialized blob — the concatenated slot encodings whose
    /// SHA-256 is the level hash. Spilled levels stream straight from
    /// their durable blob; resident levels encode from cached bytes.
    pub fn level_bytes(&self, i: usize) -> Vec<u8> {
        match &self.levels[i] {
            LevelSlot::Ram(b) => b.encoded_bytes(),
            LevelSlot::Spilled { .. } => {
                let disk = self.disk.as_ref().expect("spilled level without a disk");
                disk.borrow()
                    .read(&level_key(i))
                    .expect("spilled bucket blob must be durable")
            }
        }
    }

    /// Total slots across all levels.
    pub fn total_entries(&self) -> usize {
        self.levels.iter().map(LevelSlot::len).sum()
    }

    /// Bytes of RAM the resident levels hold (spilled levels cost only
    /// their bookkeeping).
    pub fn resident_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| match l {
                LevelSlot::Ram(b) => b.encoded_len(),
                LevelSlot::Spilled { .. } => 0,
            })
            .sum()
    }

    /// Bytes of durable blob the spilled (non-resident) levels occupy.
    pub fn spilled_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| match l {
                LevelSlot::Ram(_) => 0,
                LevelSlot::Spilled { bytes, .. } => *bytes,
            })
            .sum()
    }

    /// Reconstructs the latest live state by merging bottom-up (catch-up
    /// path for a new node that downloaded the buckets).
    pub fn reconstruct_state(&self) -> Vec<LedgerEntry> {
        let mut acc = Bucket::empty();
        for i in (0..NUM_LEVELS).rev() {
            acc = acc.merge(&self.level_snapshot(i), false);
        }
        acc.live_entries().cloned().collect()
    }

    /// Which levels differ from another list (reconciliation after a
    /// disconnect downloads only these).
    pub fn diff_levels(&mut self, other: &mut BucketList) -> Vec<usize> {
        let a = self.level_hashes();
        let b = other.level_hashes();
        (0..NUM_LEVELS).filter(|&i| a[i] != b[i]).collect()
    }

    // ---- disk spill ----

    /// Attaches the node's data disk: persists every level blob now
    /// (one sync) and drops cold levels from RAM. Called once at node
    /// construction, with the store's disk, so bucket blobs and ledger
    /// segments ride the same device.
    pub fn attach_disk(&mut self, disk: Rc<RefCell<DurableStore>>, ledger_seq: u64) {
        self.disk = Some(disk);
        self.persist_levels(ledger_seq);
        let ok = self
            .disk
            .as_ref()
            .expect("just attached")
            .borrow_mut()
            .sync();
        if ok {
            self.note_synced();
        }
    }

    /// True when a data disk is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Stages every changed level blob plus the bucket metadata record
    /// onto the data disk. Nothing is durable until the caller syncs the
    /// disk (the ledger store's flush provides that sync, so bucket and
    /// store writes commit atomically per close).
    pub fn persist_levels(&mut self, ledger_seq: u64) {
        let Some(disk) = self.disk.clone() else {
            return;
        };
        let mut disk = disk.borrow_mut();
        for i in 0..NUM_LEVELS {
            let h = self.level_hash(i);
            if self.synced[i] != Some(h) {
                let blob = match &self.levels[i] {
                    LevelSlot::Ram(b) => b.encoded_bytes(),
                    // Spilled ⇒ already durable under the same hash.
                    LevelSlot::Spilled { .. } => continue,
                };
                disk.write(&level_key(i), &blob);
            }
        }
        let mut meta = Vec::new();
        BUCKET_META_VERSION.encode(&mut meta);
        ledger_seq.encode(&mut meta);
        for i in 0..NUM_LEVELS {
            self.level_hash(i); // ensure cached
        }
        for i in 0..NUM_LEVELS {
            self.level_hashes[i]
                .expect("cached above")
                .encode(&mut meta);
            (self.levels[i].len() as u64).encode(&mut meta);
        }
        disk.write(BUCKET_META_KEY, &meta);
    }

    /// Records that the disk sync following [`BucketList::persist_levels`]
    /// succeeded: every level blob staged there is now durable. Cold
    /// levels (≥ [`SPILL_MIN_LEVEL`]) drop their RAM copy — only when a
    /// disk holds the blob; without one the RAM copy is the only copy.
    pub fn note_synced(&mut self) {
        let spill_ok = self.disk.is_some();
        for i in 0..NUM_LEVELS {
            let h = self.level_hash(i);
            self.synced[i] = Some(h);
            if spill_ok && i >= SPILL_MIN_LEVEL {
                if let LevelSlot::Ram(b) = &self.levels[i] {
                    if !b.is_empty() {
                        self.levels[i] = LevelSlot::Spilled {
                            hash: h,
                            len: b.len(),
                            bytes: b.encoded_len(),
                        };
                    }
                }
            }
        }
    }

    /// Rebuilds a bucket list from a data disk, verifying every level
    /// blob against `expected_hashes` (the per-level hashes the node's
    /// write-ahead LCL record vouches for). Returns the list and the
    /// ledger sequence its blobs describe, or `None` if anything is
    /// missing, torn, or divergent — callers then fall back to archive
    /// replay.
    pub fn recover(
        disk: Rc<RefCell<DurableStore>>,
        expected_hashes: &[Hash256],
    ) -> Option<(BucketList, u64)> {
        if expected_hashes.len() != NUM_LEVELS {
            return None;
        }
        let meta = disk.borrow().read(BUCKET_META_KEY)?;
        let mut input = meta.as_slice();
        let version = u32::decode(&mut input).ok()?;
        if version != BUCKET_META_VERSION {
            return None;
        }
        let ledger_seq = u64::decode(&mut input).ok()?;
        let mut list = BucketList::new();
        for (i, expected) in expected_hashes.iter().enumerate() {
            let hash = Hash256::decode(&mut input).ok()?;
            let len = u64::decode(&mut input).ok()? as usize;
            if hash != *expected {
                return None;
            }
            let blob = disk.borrow().read(&level_key(i)).or_else(|| {
                // An always-empty level may never have been written.
                (len == 0).then(Vec::new)
            })?;
            if sha256(&blob) != hash {
                return None;
            }
            if i >= SPILL_MIN_LEVEL && len > 0 {
                list.levels[i] = LevelSlot::Spilled {
                    hash,
                    len,
                    bytes: blob.len() as u64,
                };
            } else {
                let bucket = Bucket::decode(&blob).ok()?;
                if bucket.len() != len {
                    return None;
                }
                list.levels[i] = LevelSlot::Ram(bucket);
            }
            list.level_hashes[i] = Some(hash);
            list.synced[i] = Some(hash);
        }
        list.disk = Some(disk);
        Some((list, ledger_seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::PublicKey;
    use stellar_ledger::entry::{AccountEntry, AccountId};

    fn change(n: u64, balance: i64) -> (LedgerKey, Option<LedgerEntry>) {
        let id = AccountId(PublicKey(n));
        (
            LedgerKey::Account(id),
            Some(LedgerEntry::Account(AccountEntry::new(id, balance))),
        )
    }

    fn delete(n: u64) -> (LedgerKey, Option<LedgerEntry>) {
        (LedgerKey::Account(AccountId(PublicKey(n))), None)
    }

    #[test]
    fn hash_changes_with_batches() {
        let mut bl = BucketList::new();
        let h0 = bl.hash();
        bl.add_batch(1, &[change(1, 10)]);
        let h1 = bl.hash();
        assert_ne!(h0, h1);
        bl.add_batch(2, &[change(1, 20)]);
        assert_ne!(h1, bl.hash());
    }

    #[test]
    fn identical_histories_identical_hashes() {
        let mut a = BucketList::new();
        let mut b = BucketList::new();
        for seq in 1..=100u64 {
            let batch = [change(seq % 7, seq as i64)];
            a.add_batch(seq, &batch);
            b.add_batch(seq, &batch);
        }
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn spills_move_entries_down() {
        let mut bl = BucketList::new();
        for seq in 1..=16u64 {
            bl.add_batch(seq, &[change(seq, seq as i64)]);
        }
        // After 16 ledgers, level-0 spilled at 4, 8, 12, 16 and level-1
        // spilled at 16.
        assert!(!bl.level(1).is_empty() || !bl.level(2).is_empty());
        assert_eq!(bl.reconstruct_state().len(), 16);
    }

    #[test]
    fn reconstruct_state_sees_latest_versions_and_deletes() {
        let mut bl = BucketList::new();
        bl.add_batch(1, &[change(1, 10), change(2, 20)]);
        bl.add_batch(2, &[change(1, 99)]);
        bl.add_batch(3, &[delete(2)]);
        let state = bl.reconstruct_state();
        assert_eq!(state.len(), 1);
        match &state[0] {
            LedgerEntry::Account(a) => assert_eq!(a.balance, 99),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seeded_list_reconstructs_seed() {
        let entries: Vec<LedgerEntry> = (0..50u64)
            .map(|n| LedgerEntry::Account(AccountEntry::new(AccountId(PublicKey(n)), n as i64)))
            .collect();
        let bl = BucketList::seed(entries.clone());
        let mut got = bl.reconstruct_state();
        got.sort_by_key(|e| e.key());
        assert_eq!(got.len(), entries.len());
    }

    #[test]
    fn diff_levels_detects_divergence() {
        let mut a = BucketList::new();
        let mut b = BucketList::new();
        for seq in 1..=20u64 {
            let batch = [change(seq, seq as i64)];
            a.add_batch(seq, &batch);
            b.add_batch(seq, &batch);
        }
        assert!(a.diff_levels(&mut b).is_empty());
        b.add_batch(21, &[change(999, 1)]);
        a.add_batch(21, &[]);
        assert!(!a.diff_levels(&mut b).is_empty());
    }

    #[test]
    fn merge_work_grows_with_account_count() {
        // The Fig. 9 effect: more accounts ⇒ bigger buckets ⇒ more merge
        // work per spill.
        let work = |n: u64| {
            let mut bl = BucketList::new();
            for seq in 1..=64u64 {
                let batch: Vec<_> = (0..n).map(|k| change(seq * 1000 + k, 1)).collect();
                bl.add_batch(seq, &batch);
            }
            bl.merge_work
        };
        assert!(work(20) > work(2) * 5);
    }

    #[test]
    fn hash_cache_consistent_with_recompute() {
        let mut bl = BucketList::new();
        for seq in 1..=40u64 {
            bl.add_batch(seq, &[change(seq % 5, seq as i64)]);
        }
        let cached = bl.hash();
        // Recompute from a fresh clone with no caches.
        let mut fresh = bl.clone();
        fresh.level_hashes = vec![None; NUM_LEVELS];
        assert_eq!(cached, fresh.hash());
    }

    #[test]
    fn disk_spill_preserves_hashes_and_state() {
        let entries: Vec<LedgerEntry> = (0..200u64)
            .map(|n| LedgerEntry::Account(AccountEntry::new(AccountId(PublicKey(n)), n as i64)))
            .collect();
        let mut ram = BucketList::seed(entries.clone());
        let expected = ram.hash();

        let disk = Rc::new(RefCell::new(DurableStore::new()));
        let mut spilled = BucketList::seed(entries);
        spilled.attach_disk(disk.clone(), 1);
        // The seeded bottom level must have left RAM.
        assert_eq!(spilled.resident_bytes(), 0);
        assert!(disk.borrow().read(&level_key(NUM_LEVELS - 1)).is_some());
        assert_eq!(spilled.hash(), expected);
        assert_eq!(spilled.total_entries(), 200);
        assert_eq!(spilled.reconstruct_state().len(), 200);
        // Archive blob path reads the durable bytes directly.
        assert_eq!(
            sha256(&spilled.level_bytes(NUM_LEVELS - 1)),
            spilled.level_hashes()[NUM_LEVELS - 1]
        );

        // Batches keep both lists in lockstep even across deep reloads.
        for seq in 2..=40u64 {
            let batch = [change(seq % 9, seq as i64)];
            ram.add_batch(seq, &batch);
            spilled.add_batch(seq, &batch);
            spilled.persist_levels(seq);
            assert!(disk.borrow_mut().sync());
            spilled.note_synced();
            assert_eq!(ram.hash(), spilled.hash(), "seq {seq}");
        }
    }

    #[test]
    fn note_synced_without_a_disk_keeps_deep_levels_resident() {
        // Regression: a diskless list must never mark a deep level
        // Spilled — the RAM copy is the only copy, and dropping it both
        // loses the data (ensure_ram panics later) and zeroes the
        // level's resident-byte accounting.
        let entries: Vec<LedgerEntry> = (0..200u64)
            .map(|n| LedgerEntry::Account(AccountEntry::new(AccountId(PublicKey(n)), n as i64)))
            .collect();
        let mut bl = BucketList::seed(entries);
        let expected = bl.hash();
        bl.note_synced();
        assert!(bl.resident_bytes() > 0, "deep level dropped without a disk");
        assert_eq!(bl.hash(), expected);
        assert_eq!(bl.reconstruct_state().len(), 200);
    }

    #[test]
    fn recover_roundtrip_and_tamper_detection() {
        let entries: Vec<LedgerEntry> = (0..150u64)
            .map(|n| LedgerEntry::Account(AccountEntry::new(AccountId(PublicKey(n)), n as i64)))
            .collect();
        let disk = Rc::new(RefCell::new(DurableStore::new()));
        let mut bl = BucketList::seed(entries);
        bl.attach_disk(disk.clone(), 1);
        for seq in 2..=10u64 {
            bl.add_batch(seq, &[change(seq, seq as i64)]);
            bl.persist_levels(seq);
            assert!(disk.borrow_mut().sync());
            bl.note_synced();
        }
        let want = bl.hash();
        let hashes = bl.level_hashes();

        let (mut back, seq) = BucketList::recover(disk.clone(), &hashes).unwrap();
        assert_eq!(seq, 10);
        assert_eq!(back.hash(), want);
        assert_eq!(back.total_entries(), bl.total_entries());

        // Divergent expected hashes are refused.
        let mut wrong = hashes.clone();
        wrong[0] = Hash256::ZERO;
        assert!(BucketList::recover(disk.clone(), &wrong).is_none());

        // A torn level blob is refused even with honest expectations.
        let mut torn = disk.borrow().clone();
        torn.write(&level_key(NUM_LEVELS - 1), b"partial");
        torn.tear_next_crash();
        torn.crash();
        assert!(BucketList::recover(Rc::new(RefCell::new(torn)), &hashes).is_none());
    }
}

//! A single bucket: a sorted set of entry versions and tombstones.

use std::collections::BTreeMap;
use stellar_crypto::codec::Encode;
use stellar_crypto::{sha256::Sha256, Hash256};
use stellar_ledger::entry::{LedgerEntry, LedgerKey};

/// One slot in a bucket: the latest version of an entry, or a tombstone
/// recording its deletion (needed so deletions shadow older versions in
/// lower levels until they reach the bottom).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BucketEntry {
    /// A live entry version.
    Live(LedgerEntry),
    /// The entry was deleted.
    Dead,
}

impl BucketEntry {
    fn encode_with_key(&self, key: &LedgerKey, out: &mut Vec<u8>) {
        key.encode(out);
        match self {
            BucketEntry::Live(e) => {
                0u8.encode(out);
                e.encode(out);
            }
            BucketEntry::Dead => 1u8.encode(out),
        }
    }
}

/// A sorted, content-hashed bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bucket {
    entries: BTreeMap<LedgerKey, BucketEntry>,
}

impl Bucket {
    /// The empty bucket.
    pub fn empty() -> Bucket {
        Bucket::default()
    }

    /// Builds a bucket from a ledger-close change feed.
    pub fn from_changes(changes: &[(LedgerKey, Option<LedgerEntry>)]) -> Bucket {
        let mut entries = BTreeMap::new();
        for (key, change) in changes {
            let be = match change {
                Some(e) => BucketEntry::Live(e.clone()),
                None => BucketEntry::Dead,
            };
            entries.insert(key.clone(), be);
        }
        Bucket { entries }
    }

    /// Number of slots (live + tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the bucket holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry version by key.
    pub fn get(&self, key: &LedgerKey) -> Option<&BucketEntry> {
        self.entries.get(key)
    }

    /// Sequential iteration (the only access pattern merges need).
    pub fn iter(&self) -> impl Iterator<Item = (&LedgerKey, &BucketEntry)> {
        self.entries.iter()
    }

    /// Content hash: SHA-256 over the sorted serialized slots.
    ///
    /// Incremental hashing means the cost is one pass over the bucket,
    /// paid only when the bucket changes (i.e. at merge time).
    pub fn hash(&self) -> Hash256 {
        let mut h = Sha256::new();
        let mut buf = Vec::new();
        for (k, v) in &self.entries {
            buf.clear();
            v.encode_with_key(k, &mut buf);
            h.update(&buf);
        }
        h.finish()
    }

    /// Merges `newer` over `self`, producing the combined bucket.
    ///
    /// Newer versions shadow older ones. Tombstones are kept unless
    /// `bottom_level` is set, in which case they annihilate (nothing below
    /// could still hold a shadowed version).
    pub fn merge(&self, newer: &Bucket, bottom_level: bool) -> Bucket {
        let mut out = self.entries.clone();
        for (k, v) in &newer.entries {
            out.insert(k.clone(), v.clone());
        }
        if bottom_level {
            out.retain(|_, v| !matches!(v, BucketEntry::Dead));
        }
        Bucket { entries: out }
    }

    /// Live entries only (for state reconstruction during catch-up).
    pub fn live_entries(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.entries.values().filter_map(|v| match v {
            BucketEntry::Live(e) => Some(e),
            BucketEntry::Dead => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::PublicKey;
    use stellar_ledger::entry::{AccountEntry, AccountId};

    fn key(n: u64) -> LedgerKey {
        LedgerKey::Account(AccountId(PublicKey(n)))
    }

    fn live(n: u64, balance: i64) -> (LedgerKey, Option<LedgerEntry>) {
        (
            key(n),
            Some(LedgerEntry::Account(AccountEntry::new(
                AccountId(PublicKey(n)),
                balance,
            ))),
        )
    }

    fn dead(n: u64) -> (LedgerKey, Option<LedgerEntry>) {
        (key(n), None)
    }

    #[test]
    fn hash_is_order_independent_and_content_sensitive() {
        let a = Bucket::from_changes(&[live(1, 10), live(2, 20)]);
        let b = Bucket::from_changes(&[live(2, 20), live(1, 10)]);
        assert_eq!(a.hash(), b.hash());
        let c = Bucket::from_changes(&[live(1, 11), live(2, 20)]);
        assert_ne!(a.hash(), c.hash());
        assert_eq!(Bucket::empty().hash(), Bucket::empty().hash());
    }

    #[test]
    fn merge_newer_shadows_older() {
        let old = Bucket::from_changes(&[live(1, 10), live(2, 20)]);
        let new = Bucket::from_changes(&[live(1, 99)]);
        let merged = old.merge(&new, false);
        match merged.get(&key(1)).unwrap() {
            BucketEntry::Live(LedgerEntry::Account(a)) => assert_eq!(a.balance, 99),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn tombstones_survive_mid_levels_and_annihilate_at_bottom() {
        let old = Bucket::from_changes(&[live(1, 10)]);
        let new = Bucket::from_changes(&[dead(1)]);
        let mid = old.merge(&new, false);
        assert!(matches!(mid.get(&key(1)), Some(BucketEntry::Dead)));
        let bottom = old.merge(&new, true);
        assert!(bottom.get(&key(1)).is_none());
        assert!(bottom.is_empty());
    }

    #[test]
    fn live_entries_skips_tombstones() {
        let b = Bucket::from_changes(&[live(1, 10), dead(2)]);
        assert_eq!(b.live_entries().count(), 1);
    }
}

//! A single bucket: a sorted set of entry versions and tombstones.
//!
//! Internally a bucket is a key-sorted vector of reference-counted
//! *slots*, each carrying its serialized form. Sorting makes
//! [`Bucket::merge`] a linear merge-join (the dominant cost of deep
//! spills), ref-counting lets unchanged slots flow from input to output
//! buckets without copying the entry, and the cached bytes make
//! [`Bucket::hash`] a pure streaming pass — each entry is serialized once
//! in its lifetime, no matter how many merges and hashes it survives.
//! The hash value is byte-identical to serializing on the fly.

use std::rc::Rc;
use stellar_crypto::codec::{Decode, DecodeError, Encode};
use stellar_crypto::{sha256::Sha256, Hash256};
use stellar_ledger::entry::{LedgerEntry, LedgerKey};

/// One slot in a bucket: the latest version of an entry, or a tombstone
/// recording its deletion (needed so deletions shadow older versions in
/// lower levels until they reach the bottom).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BucketEntry {
    /// A live entry version.
    Live(LedgerEntry),
    /// The entry was deleted.
    Dead,
}

/// A key, its entry version, and their serialization — computed once when
/// the slot is created and reused by every later hash.
#[derive(Debug)]
struct Slot {
    key: LedgerKey,
    entry: BucketEntry,
    enc: Vec<u8>,
}

impl Slot {
    fn new(key: LedgerKey, entry: BucketEntry) -> Slot {
        let mut enc = Vec::new();
        key.encode(&mut enc);
        match &entry {
            BucketEntry::Live(e) => {
                0u8.encode(&mut enc);
                e.encode(&mut enc);
            }
            BucketEntry::Dead => 1u8.encode(&mut enc),
        }
        Slot { key, entry, enc }
    }
}

/// A sorted, content-hashed bucket.
#[derive(Clone, Debug, Default)]
pub struct Bucket {
    /// Slots sorted by key, keys unique. `Rc` so merges share unchanged
    /// slots with their inputs instead of re-allocating them.
    slots: Vec<Rc<Slot>>,
    /// Total cached-encoding bytes across slots — the exact size of
    /// [`Bucket::encoded_bytes`], tracked at construction so resident-set
    /// gauges never have to walk the slots.
    bytes: u64,
}

impl PartialEq for Bucket {
    fn eq(&self, other: &Bucket) -> bool {
        self.slots.len() == other.slots.len()
            && self
                .slots
                .iter()
                .zip(&other.slots)
                .all(|(a, b)| a.key == b.key && a.entry == b.entry)
    }
}

impl Eq for Bucket {}

impl Bucket {
    /// The empty bucket.
    pub fn empty() -> Bucket {
        Bucket::default()
    }

    /// Builds a bucket from a ledger-close change feed (later changes to
    /// the same key shadow earlier ones).
    pub fn from_changes(changes: &[(LedgerKey, Option<LedgerEntry>)]) -> Bucket {
        let mut slots: Vec<Rc<Slot>> = changes
            .iter()
            .map(|(key, change)| {
                let be = match change {
                    Some(e) => BucketEntry::Live(e.clone()),
                    None => BucketEntry::Dead,
                };
                Rc::new(Slot::new(key.clone(), be))
            })
            .collect();
        // Stable sort + keep-last dedup: the last change for a key wins,
        // matching map-insert semantics.
        slots.sort_by(|a, b| a.key.cmp(&b.key));
        let mut deduped: Vec<Rc<Slot>> = Vec::with_capacity(slots.len());
        for s in slots {
            if deduped.last().is_some_and(|p| p.key == s.key) {
                *deduped.last_mut().expect("nonempty") = s;
            } else {
                deduped.push(s);
            }
        }
        let bytes = deduped.iter().map(|s| s.enc.len() as u64).sum();
        Bucket {
            slots: deduped,
            bytes,
        }
    }

    /// Rebuilds a bucket from its serialized form (a concatenation of
    /// slot encodings, as produced by [`Bucket::encoded_bytes`] — also
    /// the archive's checkpoint blob format). Slots must appear in key
    /// order with unique keys; anything else is a corrupt blob.
    pub fn decode(blob: &[u8]) -> Result<Bucket, DecodeError> {
        let mut input = blob;
        let mut slots: Vec<Rc<Slot>> = Vec::new();
        while !input.is_empty() {
            let start = input;
            let key = LedgerKey::decode(&mut input)?;
            let entry = match u8::decode(&mut input)? {
                0 => BucketEntry::Live(LedgerEntry::decode(&mut input)?),
                1 => BucketEntry::Dead,
                t => return Err(DecodeError::BadTag(t.into())),
            };
            if slots.last().is_some_and(|p| p.key >= key) {
                return Err(DecodeError::Invalid("bucket slots out of order"));
            }
            let enc = start[..start.len() - input.len()].to_vec();
            slots.push(Rc::new(Slot { key, entry, enc }));
        }
        let bytes = blob.len() as u64;
        Ok(Bucket { slots, bytes })
    }

    /// The serialized bucket: every slot's cached encoding, concatenated
    /// in key order. `sha256(encoded_bytes()) == hash()` by construction.
    pub fn encoded_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bytes as usize);
        for s in &self.slots {
            out.extend_from_slice(&s.enc);
        }
        out
    }

    /// Size of [`Bucket::encoded_bytes`] without materializing it.
    pub fn encoded_len(&self) -> u64 {
        self.bytes
    }

    /// Number of slots (live + tombstones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the bucket holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Looks up an entry version by key (binary search).
    pub fn get(&self, key: &LedgerKey) -> Option<&BucketEntry> {
        let i = self.slots.binary_search_by(|s| s.key.cmp(key)).ok()?;
        Some(&self.slots[i].entry)
    }

    /// Sequential iteration in key order (the access pattern merges need).
    pub fn iter(&self) -> impl Iterator<Item = (&LedgerKey, &BucketEntry)> {
        self.slots.iter().map(|s| (&s.key, &s.entry))
    }

    /// Content hash: SHA-256 over the sorted serialized slots.
    ///
    /// Streams each slot's cached bytes — no per-hash serialization. The
    /// resulting value is identical to encoding every `(key, entry)` pair
    /// in key order, so cached and from-scratch hashes always agree.
    pub fn hash(&self) -> Hash256 {
        let mut h = Sha256::new();
        for s in &self.slots {
            h.update(&s.enc);
        }
        h.finish()
    }

    /// Merges `newer` over `self`, producing the combined bucket.
    ///
    /// Newer versions shadow older ones. Tombstones are kept unless
    /// `bottom_level` is set, in which case they annihilate (nothing below
    /// could still hold a shadowed version). Linear merge-join over the
    /// two sorted slot vectors; surviving slots are shared, not copied.
    pub fn merge(&self, newer: &Bucket, bottom_level: bool) -> Bucket {
        let mut out: Vec<Rc<Slot>> = Vec::with_capacity(self.slots.len() + newer.slots.len());
        let mut older = self.slots.iter().peekable();
        let mut fresh = newer.slots.iter().peekable();
        loop {
            let take_fresh = match (older.peek(), fresh.peek()) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(o), Some(f)) => {
                    if o.key < f.key {
                        false
                    } else {
                        if o.key == f.key {
                            older.next(); // shadowed by the newer version
                        }
                        true
                    }
                }
            };
            let slot = if take_fresh {
                fresh.next().expect("peeked")
            } else {
                older.next().expect("peeked")
            };
            if bottom_level && matches!(slot.entry, BucketEntry::Dead) {
                continue;
            }
            out.push(Rc::clone(slot));
        }
        let bytes = out.iter().map(|s| s.enc.len() as u64).sum();
        Bucket { slots: out, bytes }
    }

    /// Live entries only (for state reconstruction during catch-up).
    pub fn live_entries(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.slots.iter().filter_map(|s| match &s.entry {
            BucketEntry::Live(e) => Some(e),
            BucketEntry::Dead => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::PublicKey;
    use stellar_ledger::entry::{AccountEntry, AccountId};

    fn key(n: u64) -> LedgerKey {
        LedgerKey::Account(AccountId(PublicKey(n)))
    }

    fn live(n: u64, balance: i64) -> (LedgerKey, Option<LedgerEntry>) {
        (
            key(n),
            Some(LedgerEntry::Account(AccountEntry::new(
                AccountId(PublicKey(n)),
                balance,
            ))),
        )
    }

    fn dead(n: u64) -> (LedgerKey, Option<LedgerEntry>) {
        (key(n), None)
    }

    #[test]
    fn hash_is_order_independent_and_content_sensitive() {
        let a = Bucket::from_changes(&[live(1, 10), live(2, 20)]);
        let b = Bucket::from_changes(&[live(2, 20), live(1, 10)]);
        assert_eq!(a.hash(), b.hash());
        let c = Bucket::from_changes(&[live(1, 11), live(2, 20)]);
        assert_ne!(a.hash(), c.hash());
        assert_eq!(Bucket::empty().hash(), Bucket::empty().hash());
    }

    #[test]
    fn later_change_for_same_key_wins() {
        let b = Bucket::from_changes(&[live(1, 10), live(1, 99)]);
        assert_eq!(b.len(), 1);
        match b.get(&key(1)).unwrap() {
            BucketEntry::Live(LedgerEntry::Account(a)) => assert_eq!(a.balance, 99),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_newer_shadows_older() {
        let old = Bucket::from_changes(&[live(1, 10), live(2, 20)]);
        let new = Bucket::from_changes(&[live(1, 99)]);
        let merged = old.merge(&new, false);
        match merged.get(&key(1)).unwrap() {
            BucketEntry::Live(LedgerEntry::Account(a)) => assert_eq!(a.balance, 99),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_interleaves_in_key_order() {
        let old = Bucket::from_changes(&[live(1, 1), live(3, 3), live(5, 5)]);
        let new = Bucket::from_changes(&[live(0, 0), live(3, 33), live(6, 6)]);
        let merged = old.merge(&new, false);
        let keys: Vec<&LedgerKey> = merged.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "merge output must stay key-sorted");
        assert_eq!(merged.len(), 5);
        // The merged bucket hashes identically to a from-scratch build of
        // the same final contents — cached encodings are not stale.
        let rebuilt =
            Bucket::from_changes(&[live(0, 0), live(1, 1), live(3, 33), live(5, 5), live(6, 6)]);
        assert_eq!(merged.hash(), rebuilt.hash());
    }

    #[test]
    fn tombstones_survive_mid_levels_and_annihilate_at_bottom() {
        let old = Bucket::from_changes(&[live(1, 10)]);
        let new = Bucket::from_changes(&[dead(1)]);
        let mid = old.merge(&new, false);
        assert!(matches!(mid.get(&key(1)), Some(BucketEntry::Dead)));
        let bottom = old.merge(&new, true);
        assert!(bottom.get(&key(1)).is_none());
        assert!(bottom.is_empty());
    }

    #[test]
    fn encode_decode_roundtrip_preserves_hash() {
        let b = Bucket::from_changes(&[live(1, 10), dead(2), live(3, 30)]);
        let blob = b.encoded_bytes();
        assert_eq!(blob.len() as u64, b.encoded_len());
        assert_eq!(stellar_crypto::sha256::sha256(&blob), b.hash());
        let back = Bucket::decode(&blob).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.hash(), b.hash());
        assert_eq!(back.encoded_len(), b.encoded_len());
        // Truncation never decodes.
        assert!(Bucket::decode(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn live_entries_skips_tombstones() {
        let b = Bucket::from_changes(&[live(1, 10), dead(2)]);
        assert_eq!(b.live_entries().count(), 1);
    }
}

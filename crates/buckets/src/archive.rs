//! The write-only history archive (§5.4).
//!
//! "Stellar-core creates a write-only history archive containing each
//! transaction set that was confirmed and snapshots of buckets. The
//! archive lets new nodes bootstrap themselves when joining the network.
//! It also provides a record of ledger history."
//!
//! The archive is content-addressed flat storage — production uses S3 or
//! Glacier; here a map of hash → bytes with the same put/get discipline
//! (append-only, idempotent puts). Checkpoints are taken every
//! [`CHECKPOINT_PERIOD`] ledgers, as in production (64).

use crate::bucket_list::BucketList;
use std::collections::BTreeMap;
use stellar_crypto::Hash256;
use stellar_ledger::header::LedgerHeader;
use stellar_ledger::txset::TransactionSet;

/// Ledgers between checkpoints (production: 64).
pub const CHECKPOINT_PERIOD: u64 = 64;

/// A checkpoint manifest: everything needed to bootstrap at a ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// The checkpointed ledger header.
    pub header: LedgerHeader,
    /// Bucket hashes by level at this ledger.
    pub bucket_hashes: Vec<Hash256>,
}

/// An append-only, content-addressed history archive.
#[derive(Clone, Debug, Default)]
pub struct HistoryArchive {
    /// Content-addressed blobs (serialized buckets).
    blobs: BTreeMap<Hash256, Vec<u8>>,
    /// Confirmed transaction sets by ledger sequence.
    tx_sets: BTreeMap<u64, TransactionSet>,
    /// Headers by ledger sequence.
    headers: BTreeMap<u64, LedgerHeader>,
    /// Checkpoints by ledger sequence.
    checkpoints: BTreeMap<u64, Checkpoint>,
    /// Total bytes written (cheap-storage cost accounting).
    pub bytes_written: u64,
}

impl HistoryArchive {
    /// An empty archive.
    pub fn new() -> HistoryArchive {
        HistoryArchive::default()
    }

    /// Records a closed ledger: its header and transaction set, plus a
    /// checkpoint with bucket snapshots when one falls due.
    pub fn publish(
        &mut self,
        header: &LedgerHeader,
        tx_set: &TransactionSet,
        buckets: &mut BucketList,
    ) {
        let seq = header.ledger_seq;
        self.headers.insert(seq, header.clone());
        let bytes = tx_set.wire_size() as u64;
        self.bytes_written += bytes;
        self.tx_sets.insert(seq, tx_set.clone());

        if seq.is_multiple_of(CHECKPOINT_PERIOD) {
            let hashes = buckets.level_hashes();
            for (i, h) in hashes.iter().enumerate() {
                if !self.blobs.contains_key(h) {
                    // The blob format is the bucket's canonical encoding
                    // (whose SHA-256 is the level hash), so disk-spilled
                    // levels stream straight through without re-encoding.
                    let buf = buckets.level_bytes(i);
                    self.bytes_written += buf.len() as u64;
                    self.blobs.insert(*h, buf);
                }
            }
            self.checkpoints.insert(
                seq,
                Checkpoint {
                    header: header.clone(),
                    bucket_hashes: hashes,
                },
            );
        }
    }

    /// Looks up a historical transaction set ("a transaction from two
    /// years ago").
    pub fn tx_set(&self, ledger_seq: u64) -> Option<&TransactionSet> {
        self.tx_sets.get(&ledger_seq)
    }

    /// Looks up a historical header.
    pub fn header(&self, ledger_seq: u64) -> Option<&LedgerHeader> {
        self.headers.get(&ledger_seq)
    }

    /// The latest checkpoint at or before `ledger_seq` (catch-up starting
    /// point for a bootstrapping node).
    pub fn latest_checkpoint_at(&self, ledger_seq: u64) -> Option<&Checkpoint> {
        self.checkpoints
            .range(..=ledger_seq)
            .next_back()
            .map(|(_, c)| c)
    }

    /// Fetches a bucket blob by hash.
    pub fn bucket_blob(&self, hash: &Hash256) -> Option<&[u8]> {
        self.blobs.get(hash).map(Vec::as_slice)
    }

    /// The transaction sets needed to replay from a checkpoint to `target`.
    pub fn replay_range(&self, from_exclusive: u64, target: u64) -> Vec<&TransactionSet> {
        self.tx_sets
            .range(from_exclusive + 1..=target)
            .map(|(_, t)| t)
            .collect()
    }

    /// Number of checkpoints taken.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// The highest ledger sequence published, if any.
    pub fn latest_seq(&self) -> Option<u64> {
        self.headers.keys().next_back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_ledger::header::LedgerParams;

    fn header(seq: u64) -> LedgerHeader {
        let mut h = LedgerHeader::genesis(Hash256::ZERO);
        h.ledger_seq = seq;
        h
    }

    #[test]
    fn publishes_and_retrieves_history() {
        let mut arch = HistoryArchive::new();
        let mut bl = BucketList::new();
        for seq in 1..=130u64 {
            let set = TransactionSet::empty(Hash256::ZERO);
            arch.publish(&header(seq), &set, &mut bl);
        }
        assert!(arch.tx_set(77).is_some());
        assert!(arch.header(130).is_some());
        assert_eq!(arch.checkpoint_count(), 2); // at 64 and 128
        let cp = arch.latest_checkpoint_at(130).unwrap();
        assert_eq!(cp.header.ledger_seq, 128);
        assert_eq!(arch.replay_range(128, 130).len(), 2);
    }

    #[test]
    fn checkpoint_blobs_are_content_addressed_and_deduped() {
        let mut arch = HistoryArchive::new();
        let mut bl = BucketList::new();
        let set = TransactionSet::empty(Hash256::ZERO);
        arch.publish(&header(64), &set, &mut bl);
        let written = arch.bytes_written;
        // Same (empty) buckets at the next checkpoint: no new blob bytes
        // beyond the tx set.
        arch.publish(&header(128), &set, &mut bl);
        assert_eq!(arch.bytes_written, written + set.wire_size() as u64);
        for h in &arch.latest_checkpoint_at(128).unwrap().bucket_hashes {
            assert!(arch.bucket_blob(h).is_some());
        }
    }

    #[test]
    fn params_survive_in_headers() {
        let mut arch = HistoryArchive::new();
        let mut bl = BucketList::new();
        let mut h = header(64);
        h.params = LedgerParams {
            protocol_version: 9,
            ..LedgerParams::default()
        };
        arch.publish(&h, &TransactionSet::empty(Hash256::ZERO), &mut bl);
        assert_eq!(arch.header(64).unwrap().params.protocol_version, 9);
    }
}

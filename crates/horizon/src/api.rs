//! Horizon proper: queries and submission against a validator's state.
//!
//! Horizon "has read-only access to stellar-core's SQL database,
//! minimizing the risk of destabilizing stellar-core" — mirrored here by
//! taking `&Herder` for every query and mutating only through the
//! explicit submission path.

use stellar_herder::queue::QueueError;
use stellar_herder::Herder;
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::AccountId;
use stellar_ledger::pathfind::{find_best_path, quote_path};
use stellar_ledger::tx::TransactionEnvelope;
use stellar_telemetry::SpanEvent;

/// A client-facing account summary (balances across all assets).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccountInfo {
    /// The account id.
    pub id: AccountId,
    /// Native XLM balance (stroops).
    pub xlm_balance: i64,
    /// Current sequence number.
    pub seq_num: u64,
    /// Issued-asset balances: (asset, balance, limit, authorized).
    pub trustlines: Vec<(Asset, i64, i64, bool)>,
    /// Subentry count (drives the reserve).
    pub num_subentries: u32,
}

/// The uniform paged-response envelope every list-returning horizon
/// endpoint yields. Continuation is cursor-based: pass `cursor` back
/// unchanged to fetch the next page; `None` means the listing (or, for
/// archive scans, the scan) is complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Page<T> {
    /// The records in this page — at most `limit` of them.
    pub records: Vec<T>,
    /// Continuation cursor for the next request, or `None` when done.
    pub cursor: Option<u64>,
    /// The page size this response was produced with.
    pub limit: usize,
}

impl<T> Page<T> {
    /// Pages a fully-materialized listing: skips `cursor` records, takes
    /// `limit`, and sets the continuation cursor iff records remain.
    fn slice(all: Vec<T>, cursor: Option<u64>, limit: usize) -> Page<T> {
        let skip = cursor.unwrap_or(0) as usize;
        let total = all.len();
        let records: Vec<T> = all.into_iter().skip(skip).take(limit).collect();
        let consumed = skip + records.len();
        Page {
            records,
            cursor: (consumed < total).then_some(consumed as u64),
            limit,
        }
    }
}

/// An archive hit from [`Horizon::find_transaction`]: where the
/// transaction landed, plus — when this node's span store still holds
/// them — its per-phase lifecycle timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// The ledger sequence that confirmed the transaction.
    pub ledger_seq: u64,
    /// The confirmed envelope.
    pub envelope: TransactionEnvelope,
    /// Node-local lifecycle spans (submit, queue admit, flood hops,
    /// nomination, externalize, apply, archive, horizon-visible), in
    /// causal order. `None` when the transaction was sampled out of
    /// tracing or its spans have been evicted from the bounded buffer —
    /// the archive answer is unaffected either way.
    pub timeline: Option<Vec<SpanEvent>>,
}

/// The horizon query/submission facade over one validator.
pub struct Horizon;

impl Horizon {
    /// Fetches an account summary, or `None` if it does not exist.
    pub fn account(herder: &Herder, id: AccountId) -> Option<AccountInfo> {
        let a = herder.store.account(id)?;
        // Indexed range scan over this account's trustlines — on the
        // disk backend a full entry dump would page in the whole store.
        let trustlines: Vec<(Asset, i64, i64, bool)> = herder
            .store
            .trustlines_of(id)
            .into_iter()
            .map(|t| (t.asset, t.balance, t.limit, t.authorized))
            .collect();
        Some(AccountInfo {
            id,
            xlm_balance: a.balance,
            seq_num: a.seq_num,
            trustlines,
            num_subentries: a.num_subentries,
        })
    }

    /// Submits a transaction to the validator's pending queue.
    pub fn submit(herder: &mut Herder, env: TransactionEnvelope) -> Result<(), QueueError> {
        let store = &herder.store;
        // Split borrow: queue.submit needs &store, &mut queue, &mut cache.
        let q = &mut herder.queue;
        q.submit(store, env, &mut herder.sig_cache)
    }

    /// The aggregated order book for a pair: `(price, total amount)`
    /// levels, best price first. The cursor is the level index to resume
    /// from.
    pub fn order_book(
        herder: &Herder,
        selling: &Asset,
        buying: &Asset,
        cursor: Option<u64>,
        limit: usize,
    ) -> Page<(stellar_ledger::amount::Price, i64)> {
        let mut levels: Vec<(stellar_ledger::amount::Price, i64)> = Vec::new();
        for offer in herder.store.offers_for_pair(selling, buying) {
            match levels.last_mut() {
                Some((p, total)) if *p == offer.price => *total += offer.amount,
                _ => levels.push((offer.price, offer.amount)),
            }
        }
        Page::slice(levels, cursor, limit)
    }

    /// Finds the cheapest payment path delivering `dest_amount` (§5.4:
    /// "features such as payment path finding are implemented entirely in
    /// horizon").
    pub fn find_payment_path(
        herder: &Herder,
        send_asset: &Asset,
        dest_asset: &Asset,
        dest_amount: i64,
        candidate_mids: &[Asset],
    ) -> Option<(Vec<Asset>, i64)> {
        let delta = herder.store.begin();
        find_best_path(&delta, send_asset, dest_asset, dest_amount, candidate_mids)
    }

    /// Quotes the cost of a specific path without executing it.
    pub fn quote(
        herder: &Herder,
        send_asset: &Asset,
        dest_asset: &Asset,
        dest_amount: i64,
        path: &[Asset],
    ) -> Option<i64> {
        let delta = herder.store.begin();
        quote_path(&delta, send_asset, dest_asset, dest_amount, path)
    }

    /// Lists a historical ledger's transactions ("there needs to be some
    /// place one can look up a transaction from two years ago"). The
    /// cursor is the transaction index within the set; an unarchived
    /// ledger yields an empty, exhausted page.
    pub fn transactions_in_ledger(
        herder: &Herder,
        ledger_seq: u64,
        cursor: Option<u64>,
        limit: usize,
    ) -> Page<TransactionEnvelope> {
        let txs: Vec<TransactionEnvelope> = herder
            .archive
            .tx_set(ledger_seq)
            .map(|set| set.txs.clone())
            .unwrap_or_default();
        Page::slice(txs, cursor, limit)
    }

    /// Finds the ledger a transaction hash was confirmed in (linear scan
    /// of the archive; production horizon indexes this in its DB). Each
    /// call scans at most `limit` ledgers starting at `cursor` (default:
    /// the first post-genesis ledger). A hit yields one [`TxRecord`] —
    /// including the node-local lifecycle timeline when the trace store
    /// still holds it — and ends the scan; an empty page with a cursor
    /// means "not found yet, resume here".
    pub fn find_transaction(
        herder: &Herder,
        tx_hash: stellar_crypto::Hash256,
        cursor: Option<u64>,
        limit: usize,
    ) -> Page<TxRecord> {
        let start = cursor.unwrap_or(2);
        let last = herder.header.ledger_seq;
        let mut seq = start;
        while seq <= last && seq - start < limit as u64 {
            if let Some(set) = herder.archive.tx_set(seq) {
                if let Some(env) = set.txs.iter().find(|env| env.hash() == tx_hash) {
                    let timeline = Horizon::transaction_timeline(herder, tx_hash, None, usize::MAX);
                    return Page {
                        records: vec![TxRecord {
                            ledger_seq: seq,
                            envelope: env.clone(),
                            timeline: (!timeline.records.is_empty()).then_some(timeline.records),
                        }],
                        cursor: None,
                        limit,
                    };
                }
            }
            seq += 1;
        }
        Page {
            records: Vec::new(),
            cursor: (seq <= last).then_some(seq),
            limit,
        }
    }

    /// The per-phase lifecycle timeline of one transaction, from this
    /// node's span store: every span whose trace id matches the
    /// transaction's content hash, in causal order. Cursor-paged like
    /// every other listing; a transaction that was sampled out, evicted,
    /// or never seen here yields an empty, exhausted page.
    pub fn transaction_timeline(
        herder: &Herder,
        tx_hash: stellar_crypto::Hash256,
        cursor: Option<u64>,
        limit: usize,
    ) -> Page<SpanEvent> {
        let mut spans: Vec<SpanEvent> = herder
            .telemetry
            .spans
            .for_trace(tx_hash.prefix_u64())
            .into_iter()
            .cloned()
            .collect();
        spans.sort_by_key(|s| (s.t_ms, s.phase.order()));
        Page::slice(spans, cursor, limit)
    }

    /// Drives `find_transaction` to completion — the convenience most
    /// tests and examples want when the archive is small.
    pub fn find_transaction_exhaustive(
        herder: &Herder,
        tx_hash: stellar_crypto::Hash256,
    ) -> Option<TxRecord> {
        let mut cursor = None;
        loop {
            let mut page = Horizon::find_transaction(herder, tx_hash, cursor, 64);
            if let Some(hit) = page.records.pop() {
                return Some(hit);
            }
            cursor = Some(page.cursor?);
        }
    }

    /// Current fee statistics: base fee and the last clearing rate.
    pub fn fee_stats(herder: &Herder) -> (i64, i64) {
        let base = herder.header.params.base_fee;
        let last_clearing = herder
            .archive
            .tx_set(herder.header.ledger_seq)
            .map_or(base, |s| s.base_fee_rate);
        (base, last_clearing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stellar_crypto::sign::KeyPair;
    use stellar_ledger::amount::{xlm, Price, BASE_FEE};
    use stellar_ledger::entry::AccountEntry;
    use stellar_ledger::ops::{apply_operation, ExecEnv};
    use stellar_ledger::store::LedgerStore;
    use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction};
    use stellar_scp::NodeId;

    fn keys(n: u64) -> KeyPair {
        KeyPair::from_seed(800 + n)
    }

    fn acct(n: u64) -> AccountId {
        AccountId(keys(n).public())
    }

    fn herder() -> Herder {
        let mut store = LedgerStore::new();
        for i in 0..3 {
            store.put_account(AccountEntry::new(acct(i), xlm(100)));
        }
        let usd = Asset::issued(acct(2), "USD");
        {
            let env = ExecEnv::default();
            let mut d = store.begin();
            apply_operation(
                &mut d,
                acct(0),
                &Operation::ChangeTrust {
                    asset: usd.clone(),
                    limit: 500,
                },
                &env,
            )
            .unwrap();
            apply_operation(
                &mut d,
                acct(2),
                &Operation::Payment {
                    destination: acct(0),
                    asset: usd.clone(),
                    amount: 200,
                },
                &env,
            )
            .unwrap();
            apply_operation(
                &mut d,
                acct(0),
                &Operation::ManageOffer {
                    offer_id: 0,
                    selling: usd,
                    buying: Asset::Native,
                    amount: 100,
                    price: Price::new(2, 1),
                    passive: false,
                },
                &env,
            )
            .unwrap();
            let ch = d.into_changes();
            store.commit(ch);
        }
        Herder::new(NodeId(0), store, BTreeMap::new())
    }

    #[test]
    fn account_summary_includes_trustlines() {
        let h = herder();
        let info = Horizon::account(&h, acct(0)).unwrap();
        assert_eq!(info.xlm_balance, xlm(100));
        assert_eq!(info.trustlines.len(), 1);
        assert_eq!(info.trustlines[0].1, 200);
        assert_eq!(info.num_subentries, 2); // trustline + offer
        assert!(Horizon::account(&h, acct(9)).is_none());
    }

    #[test]
    fn queries_are_identical_on_the_disk_backend() {
        // Horizon reads go through the backend trait: the same queries
        // over the same state must answer identically on the disk store.
        let ram = herder();
        let disk_store = stellar_store::open(
            &ram.store,
            stellar_store::BackendKind::Disk,
            &stellar_store::DiskConfig::default(),
        );
        let disk = Herder::new(NodeId(0), disk_store, BTreeMap::new());
        let usd = Asset::issued(acct(2), "USD");
        for a in 0..3 {
            assert_eq!(
                Horizon::account(&ram, acct(a)),
                Horizon::account(&disk, acct(a))
            );
        }
        let ram_book = Horizon::order_book(&ram, &usd, &Asset::Native, None, 10);
        let disk_book = Horizon::order_book(&disk, &usd, &Asset::Native, None, 10);
        assert_eq!(ram_book.records, disk_book.records);
        assert_eq!(
            Horizon::find_payment_path(&ram, &Asset::Native, &usd, 50, &[]),
            Horizon::find_payment_path(&disk, &Asset::Native, &usd, 50, &[]),
        );
    }

    #[test]
    fn order_book_aggregates_levels() {
        let h = herder();
        let usd = Asset::issued(acct(2), "USD");
        let book = Horizon::order_book(&h, &usd, &Asset::Native, None, 10);
        assert_eq!(book.records.len(), 1);
        assert_eq!(book.records[0], (Price::new(2, 1), 100));
        assert_eq!(book.cursor, None);
        let empty = Horizon::order_book(&h, &Asset::Native, &usd, None, 10);
        assert!(empty.records.is_empty());
        assert_eq!(empty.cursor, None);
    }

    #[test]
    fn order_book_pages_with_cursor() {
        // Three distinct price levels, page size 2: the first page carries
        // a continuation cursor, the second is final.
        let mut h = herder();
        let usd = Asset::issued(acct(2), "USD");
        {
            let env = ExecEnv::default();
            let mut d = h.store.begin();
            for (n, d_) in [(3u32, 1u32), (4, 1)] {
                apply_operation(
                    &mut d,
                    acct(0),
                    &Operation::ManageOffer {
                        offer_id: 0,
                        selling: usd.clone(),
                        buying: Asset::Native,
                        amount: 10,
                        price: Price::new(n, d_),
                        passive: false,
                    },
                    &env,
                )
                .unwrap();
            }
            let ch = d.into_changes();
            h.store.commit(ch);
        }
        let first = Horizon::order_book(&h, &usd, &Asset::Native, None, 2);
        assert_eq!(first.records.len(), 2);
        assert_eq!(first.cursor, Some(2));
        assert_eq!(first.limit, 2);
        let rest = Horizon::order_book(&h, &usd, &Asset::Native, first.cursor, 2);
        assert_eq!(rest.records.len(), 1);
        assert_eq!(rest.cursor, None);
        // The two pages together are the whole book, best price first.
        let all = Horizon::order_book(&h, &usd, &Asset::Native, None, 10);
        let stitched: Vec<_> = first.records.iter().chain(&rest.records).cloned().collect();
        assert_eq!(stitched, all.records);
    }

    #[test]
    fn path_finding_quotes_through_the_book() {
        // The book sells USD for XLM at 2 XLM/USD, so a sender holding
        // XLM can deliver USD: 50 USD costs 100 XLM.
        let h = herder();
        let usd = Asset::issued(acct(2), "USD");
        let (path, cost) = Horizon::find_payment_path(&h, &Asset::Native, &usd, 50, &[]).unwrap();
        assert!(path.is_empty());
        assert_eq!(cost, 100);
        assert_eq!(Horizon::quote(&h, &Asset::Native, &usd, 50, &[]), Some(100));
        // The reverse direction has no offers.
        assert_eq!(
            Horizon::find_payment_path(&h, &usd, &Asset::Native, 50, &[]),
            None
        );
    }

    #[test]
    fn submit_goes_to_queue() {
        let mut h = herder();
        let env = stellar_ledger::tx::TransactionEnvelope::sign(
            Transaction {
                source: acct(1),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(0),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&keys(1)],
        );
        Horizon::submit(&mut h, env.clone()).unwrap();
        assert_eq!(h.queue.len(), 1);
        assert_eq!(Horizon::submit(&mut h, env), Err(QueueError::Duplicate));
    }

    #[test]
    fn fee_stats_report_base_fee() {
        let h = herder();
        assert_eq!(Horizon::fee_stats(&h), (BASE_FEE, BASE_FEE));
    }

    #[test]
    fn find_transaction_scans_archive() {
        // Drive a tiny consensus-free close through the herder directly.
        let mut h = herder();
        let env = stellar_ledger::tx::TransactionEnvelope::sign(
            Transaction {
                source: acct(1),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(0),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&keys(1)],
        );
        let tx_hash = env.hash();
        let set = stellar_ledger::txset::TransactionSet::assemble(h.header.hash(), vec![env], 100);
        h.learn_tx_set(set.clone());
        let value = stellar_herder::StellarValue::new(set.hash(), 100);
        assert!(h.apply_externalized(2, &value));
        let hit = Horizon::find_transaction(&h, tx_hash, None, 64);
        assert_eq!(hit.records.len(), 1);
        let rec = &hit.records[0];
        assert_eq!(rec.ledger_seq, 2);
        assert_eq!(rec.envelope.hash(), tx_hash);
        assert_eq!(hit.cursor, None);
        let miss = Horizon::find_transaction(&h, stellar_crypto::Hash256::ZERO, None, 64);
        assert!(miss.records.is_empty());
        assert_eq!(miss.cursor, None);
        assert_eq!(
            Horizon::find_transaction_exhaustive(&h, stellar_crypto::Hash256::ZERO),
            None
        );

        // Scan continuation: limit 1 per call walks the archive one
        // ledger at a time until the hash turns up.
        let step = Horizon::find_transaction(&h, tx_hash, None, 1);
        assert!(step.records.len() == 1 || step.cursor.is_some());
        assert_eq!(
            Horizon::find_transaction_exhaustive(&h, tx_hash)
                .unwrap()
                .ledger_seq,
            2
        );

        // The archived ledger's transactions page out too.
        let txs = Horizon::transactions_in_ledger(&h, 2, None, 10);
        assert_eq!(txs.records.len(), 1);
        assert_eq!(txs.records[0].hash(), tx_hash);
        let unarchived = Horizon::transactions_in_ledger(&h, 99, None, 10);
        assert!(unarchived.records.is_empty() && unarchived.cursor.is_none());
    }

    #[test]
    fn find_transaction_attaches_the_lifecycle_timeline() {
        // Same consensus-free close as above; the herder records the
        // close-milestone spans (externalize → apply → archive → flush →
        // horizon-visible) for every applied transaction, and horizon
        // surfaces them on the archive hit.
        let mut h = herder();
        let env = stellar_ledger::tx::TransactionEnvelope::sign(
            Transaction {
                source: acct(1),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(0),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&keys(1)],
        );
        let tx_hash = env.hash();
        let set = stellar_ledger::txset::TransactionSet::assemble(h.header.hash(), vec![env], 100);
        h.learn_tx_set(set.clone());
        let value = stellar_herder::StellarValue::new(set.hash(), 100);
        assert!(h.apply_externalized(2, &value));

        let rec = Horizon::find_transaction_exhaustive(&h, tx_hash).unwrap();
        let timeline = rec.timeline.expect("applied tx must carry a timeline");
        let tags: Vec<&str> = timeline.iter().map(|s| s.phase.tag()).collect();
        assert_eq!(
            tags,
            [
                "externalized",
                "applied",
                "archived",
                "flushed",
                "horizon_visible"
            ],
            "close milestones in pipeline order"
        );
        assert!(timeline.iter().all(|s| s.trace == tx_hash.prefix_u64()));

        // The standalone endpoint pages the same spans.
        let first = Horizon::transaction_timeline(&h, tx_hash, None, 2);
        assert_eq!(first.records.len(), 2);
        assert_eq!(first.cursor, Some(2));
        let rest = Horizon::transaction_timeline(&h, tx_hash, first.cursor, 8);
        assert_eq!(rest.records.len(), 3);
        assert_eq!(rest.cursor, None);
        let stitched: Vec<SpanEvent> = first.records.into_iter().chain(rest.records).collect();
        assert_eq!(stitched, timeline);

        // Sampled-out tracing: no timeline, unchanged archive answer.
        let mut h2 = herder();
        h2.telemetry.spans.configure(0, 64);
        let env2 = Horizon::transactions_in_ledger(&h, 2, None, 1).records[0].clone();
        let set2 =
            stellar_ledger::txset::TransactionSet::assemble(h2.header.hash(), vec![env2], 100);
        h2.learn_tx_set(set2.clone());
        assert!(h2.apply_externalized(2, &stellar_herder::StellarValue::new(set2.hash(), 100)));
        let rec2 = Horizon::find_transaction_exhaustive(&h2, tx_hash).unwrap();
        assert_eq!(rec2.ledger_seq, 2);
        assert!(rec2.timeline.is_none(), "sampled out ⇒ no timeline");
        let empty = Horizon::transaction_timeline(&h2, tx_hash, None, 8);
        assert!(empty.records.is_empty() && empty.cursor.is_none());
    }
}

//! Horizon proper: queries and submission against a validator's state.
//!
//! Horizon "has read-only access to stellar-core's SQL database,
//! minimizing the risk of destabilizing stellar-core" — mirrored here by
//! taking `&Herder` for every query and mutating only through the
//! explicit submission path.
//!
//! Every endpoint shares one failure surface, [`HorizonError`]; list
//! endpoints return `Result<Page<T>, HorizonError>` with cursor-based
//! continuation. (The pre-redesign ad-hoc shapes lived on as
//! `legacy_*` wrappers for one release of grace and are now gone.)

use crate::admission::{AdmissionConfig, AdmissionControl};
use crate::ingest::Indexer;
use crate::stream::SubscriptionHub;
use stellar_crypto::Hash256;
use stellar_herder::queue::QueueError;
use stellar_herder::Herder;
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::AccountId;
use stellar_ledger::pathfind::{find_best_path, quote_path};
use stellar_ledger::tx::TransactionEnvelope;
use stellar_telemetry::{Registry, SpanEvent};

/// Typed failure surface shared by every Horizon endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HorizonError {
    /// The requested resource does not exist.
    NotFound,
    /// The request itself is invalid: bad paging parameters, or a
    /// submission the queue refused outright.
    Malformed {
        /// Static reason label (no allocation on the reject path).
        reason: &'static str,
    },
    /// Load was shed before reaching the validator; retry later.
    RateLimited {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The data behind the requested cursor window is gone (evicted
    /// stream buffer, indexer still catching up); resume from `resume`.
    Staleness {
        /// Cursor to resume from.
        resume: u64,
    },
}

impl std::fmt::Display for HorizonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HorizonError::NotFound => write!(f, "not found"),
            HorizonError::Malformed { reason } => write!(f, "malformed request: {reason}"),
            HorizonError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited; retry after {retry_after_ms}ms")
            }
            HorizonError::Staleness { resume } => {
                write!(f, "cursor window gone; resume from {resume}")
            }
        }
    }
}

/// Backoff suggested when the validator's pending queue is full: one
/// ledger interval, after which a close will have drained it.
pub(crate) const QUEUE_FULL_RETRY_MS: u64 = 5000;

/// Static reject label for a queue refusal (no allocation on the
/// submission hot path).
fn submit_reject_reason(e: &QueueError) -> &'static str {
    match e {
        QueueError::FeeTooLow => "fee_too_low",
        QueueError::UnknownSource => "unknown_source",
        QueueError::StaleSequence => "stale_sequence",
        QueueError::BadSignature => "bad_signature",
        QueueError::Duplicate => "duplicate",
        QueueError::QueueFull => "queue_full",
    }
}

/// Rejects the degenerate page size before any endpoint does work: a
/// zero-limit page can make no progress, so handing back a cursor would
/// loop a paging client forever.
pub(crate) fn check_limit(limit: usize) -> Result<(), HorizonError> {
    if limit == 0 {
        return Err(HorizonError::Malformed {
            reason: "limit must be positive",
        });
    }
    Ok(())
}

/// A client-facing account summary (balances across all assets).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccountInfo {
    /// The account id.
    pub id: AccountId,
    /// Native XLM balance (stroops).
    pub xlm_balance: i64,
    /// Current sequence number.
    pub seq_num: u64,
    /// Issued-asset balances: (asset, balance, limit, authorized).
    pub trustlines: Vec<(Asset, i64, i64, bool)>,
    /// Subentry count (drives the reserve).
    pub num_subentries: u32,
}

/// The uniform paged-response envelope every list-returning horizon
/// endpoint yields. Continuation is cursor-based: pass `cursor` back
/// unchanged to fetch the next page; `None` means the listing (or, for
/// archive scans, the scan) is complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Page<T> {
    /// The records in this page — at most `limit` of them.
    pub records: Vec<T>,
    /// Continuation cursor for the next request, or `None` when done.
    pub cursor: Option<u64>,
    /// The page size this response was produced with.
    pub limit: usize,
}

impl<T> Page<T> {
    /// Pages a fully-materialized listing: skips `cursor` records, takes
    /// `limit`, and sets the continuation cursor iff records remain.
    ///
    /// Edge cases are absorbed here so every endpoint inherits them: a
    /// cursor at or past the end yields an empty terminal page (no wrap,
    /// no panic), and a zero limit — which can never make progress — is
    /// terminal rather than echoing the same cursor back forever.
    pub(crate) fn slice(all: Vec<T>, cursor: Option<u64>, limit: usize) -> Page<T> {
        let total = all.len();
        let skip = usize::try_from(cursor.unwrap_or(0))
            .unwrap_or(usize::MAX)
            .min(total);
        let records: Vec<T> = all.into_iter().skip(skip).take(limit).collect();
        let consumed = skip + records.len();
        Page {
            records,
            cursor: (limit > 0 && consumed < total).then_some(consumed as u64),
            limit,
        }
    }
}

/// An archive hit from [`Horizon::find_transaction`]: where the
/// transaction landed, plus — when this node's span store still holds
/// them — its per-phase lifecycle timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// The ledger sequence that confirmed the transaction.
    pub ledger_seq: u64,
    /// The confirmed envelope.
    pub envelope: TransactionEnvelope,
    /// Node-local lifecycle spans (submit, queue admit, flood hops,
    /// nomination, externalize, apply, archive, horizon-visible), in
    /// causal order. `None` when the transaction was sampled out of
    /// tracing or its spans have been evicted from the bounded buffer —
    /// the archive answer is unaffected either way.
    pub timeline: Option<Vec<SpanEvent>>,
}

/// Current fee statistics, named instead of a bare tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeeStats {
    /// The protocol minimum fee per operation (stroops).
    pub base_fee: i64,
    /// The per-operation rate the last closed ledger actually cleared at
    /// (equals `base_fee` when there was no fee auction).
    pub last_clearing_fee: i64,
    /// Transactions pending in this validator's queue — the congestion
    /// signal a fee-bidding client reads.
    pub queued_txs: usize,
}

/// A successful submission receipt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitResult {
    /// The accepted transaction's content hash — the key for
    /// [`Horizon::find_transaction`] once it lands.
    pub tx_hash: Hash256,
    /// The lifecycle trace id (E18): the hash's u64 prefix, matching the
    /// span timeline [`Horizon::transaction_timeline`] serves.
    pub trace: u64,
}

/// The horizon query/submission facade over one validator.
pub struct Horizon;

impl Horizon {
    /// Fetches an account summary.
    pub fn account(herder: &Herder, id: AccountId) -> Result<AccountInfo, HorizonError> {
        let a = herder.store.account(id).ok_or(HorizonError::NotFound)?;
        // Indexed range scan over this account's trustlines — on the
        // disk backend a full entry dump would page in the whole store.
        let trustlines: Vec<(Asset, i64, i64, bool)> = herder
            .store
            .trustlines_of(id)
            .into_iter()
            .map(|t| (t.asset, t.balance, t.limit, t.authorized))
            .collect();
        Ok(AccountInfo {
            id,
            xlm_balance: a.balance,
            seq_num: a.seq_num,
            trustlines,
            num_subentries: a.num_subentries,
        })
    }

    /// Submits a transaction to the validator's pending queue, returning
    /// a receipt carrying the lifecycle trace id. A full queue surfaces
    /// as [`HorizonError::RateLimited`] (backpressure); every other
    /// refusal is [`HorizonError::Malformed`] with a static reason.
    pub fn submit(
        herder: &mut Herder,
        env: TransactionEnvelope,
    ) -> Result<SubmitResult, HorizonError> {
        let tx_hash = env.hash();
        let store = &herder.store;
        // Split borrow: queue.submit needs &store, &mut queue, &mut cache.
        let q = &mut herder.queue;
        match q.submit(store, env, &mut herder.sig_cache) {
            Ok(()) => Ok(SubmitResult {
                tx_hash,
                trace: tx_hash.prefix_u64(),
            }),
            Err(QueueError::QueueFull) => Err(HorizonError::RateLimited {
                retry_after_ms: QUEUE_FULL_RETRY_MS,
            }),
            Err(e) => Err(HorizonError::Malformed {
                reason: submit_reject_reason(&e),
            }),
        }
    }

    /// The aggregated order book for a pair: `(price, total amount)`
    /// levels, best price first. The cursor is the level index to resume
    /// from.
    pub fn order_book(
        herder: &Herder,
        selling: &Asset,
        buying: &Asset,
        cursor: Option<u64>,
        limit: usize,
    ) -> Result<Page<(stellar_ledger::amount::Price, i64)>, HorizonError> {
        check_limit(limit)?;
        let mut levels: Vec<(stellar_ledger::amount::Price, i64)> = Vec::new();
        for offer in herder.store.offers_for_pair(selling, buying) {
            match levels.last_mut() {
                Some((p, total)) if *p == offer.price => *total += offer.amount,
                _ => levels.push((offer.price, offer.amount)),
            }
        }
        Ok(Page::slice(levels, cursor, limit))
    }

    /// Finds the cheapest payment path delivering `dest_amount` (§5.4:
    /// "features such as payment path finding are implemented entirely in
    /// horizon").
    pub fn find_payment_path(
        herder: &Herder,
        send_asset: &Asset,
        dest_asset: &Asset,
        dest_amount: i64,
        candidate_mids: &[Asset],
    ) -> Option<(Vec<Asset>, i64)> {
        let delta = herder.store.begin();
        find_best_path(&delta, send_asset, dest_asset, dest_amount, candidate_mids)
    }

    /// Quotes the cost of a specific path without executing it.
    pub fn quote(
        herder: &Herder,
        send_asset: &Asset,
        dest_asset: &Asset,
        dest_amount: i64,
        path: &[Asset],
    ) -> Option<i64> {
        let delta = herder.store.begin();
        quote_path(&delta, send_asset, dest_asset, dest_amount, path)
    }

    /// Lists a historical ledger's transactions ("there needs to be some
    /// place one can look up a transaction from two years ago"). The
    /// cursor is the transaction index within the set. A ledger this
    /// node has not closed yet is [`HorizonError::NotFound`]; a closed
    /// but locally unarchived one yields an empty, exhausted page.
    pub fn transactions_in_ledger(
        herder: &Herder,
        ledger_seq: u64,
        cursor: Option<u64>,
        limit: usize,
    ) -> Result<Page<TransactionEnvelope>, HorizonError> {
        check_limit(limit)?;
        if ledger_seq > herder.header.ledger_seq {
            return Err(HorizonError::NotFound);
        }
        let txs: Vec<TransactionEnvelope> = herder
            .archive
            .tx_set(ledger_seq)
            .map(|set| set.txs.clone())
            .unwrap_or_default();
        Ok(Page::slice(txs, cursor, limit))
    }

    /// Finds the ledger a transaction hash was confirmed in (linear scan
    /// of the archive; production horizon indexes this in its DB). Each
    /// call scans at most `limit` ledgers starting at `cursor` (default:
    /// the first post-genesis ledger). A hit yields one [`TxRecord`] —
    /// including the node-local lifecycle timeline when the trace store
    /// still holds it — and ends the scan; an empty page with a cursor
    /// means "not found yet, resume here".
    pub fn find_transaction(
        herder: &Herder,
        tx_hash: stellar_crypto::Hash256,
        cursor: Option<u64>,
        limit: usize,
    ) -> Result<Page<TxRecord>, HorizonError> {
        check_limit(limit)?;
        let start = cursor.unwrap_or(2);
        let last = herder.header.ledger_seq;
        let mut seq = start;
        while seq <= last && seq - start < limit as u64 {
            if let Some(set) = herder.archive.tx_set(seq) {
                if let Some(env) = set.txs.iter().find(|env| env.hash() == tx_hash) {
                    let timeline =
                        Horizon::transaction_timeline(herder, tx_hash, None, usize::MAX)?;
                    return Ok(Page {
                        records: vec![TxRecord {
                            ledger_seq: seq,
                            envelope: env.clone(),
                            timeline: (!timeline.records.is_empty()).then_some(timeline.records),
                        }],
                        cursor: None,
                        limit,
                    });
                }
            }
            // A u64::MAX cursor must terminate the scan, not wrap.
            match seq.checked_add(1) {
                Some(next) => seq = next,
                None => {
                    return Ok(Page {
                        records: Vec::new(),
                        cursor: None,
                        limit,
                    })
                }
            }
        }
        Ok(Page {
            records: Vec::new(),
            cursor: (seq <= last).then_some(seq),
            limit,
        })
    }

    /// The per-phase lifecycle timeline of one transaction, from this
    /// node's span store: every span whose trace id matches the
    /// transaction's content hash, in causal order. Cursor-paged like
    /// every other listing; a transaction that was sampled out, evicted,
    /// or never seen here yields an empty, exhausted page.
    pub fn transaction_timeline(
        herder: &Herder,
        tx_hash: stellar_crypto::Hash256,
        cursor: Option<u64>,
        limit: usize,
    ) -> Result<Page<SpanEvent>, HorizonError> {
        check_limit(limit)?;
        let mut spans: Vec<SpanEvent> = herder
            .telemetry
            .spans
            .for_trace(tx_hash.prefix_u64())
            .into_iter()
            .cloned()
            .collect();
        spans.sort_by_key(|s| (s.t_ms, s.phase.order()));
        Ok(Page::slice(spans, cursor, limit))
    }

    /// Drives `find_transaction` to completion — the convenience most
    /// tests and examples want when the archive is small.
    pub fn find_transaction_exhaustive(
        herder: &Herder,
        tx_hash: stellar_crypto::Hash256,
    ) -> Option<TxRecord> {
        let mut cursor = None;
        loop {
            let mut page = Horizon::find_transaction(herder, tx_hash, cursor, 64).ok()?;
            if let Some(hit) = page.records.pop() {
                return Some(hit);
            }
            cursor = Some(page.cursor?);
        }
    }

    /// Current fee statistics: the protocol base fee, the last ledger's
    /// clearing rate, and this validator's queue depth.
    pub fn fee_stats(herder: &Herder) -> FeeStats {
        let base = herder.header.params.base_fee;
        let last_clearing = herder
            .archive
            .tx_set(herder.header.ledger_seq)
            .map_or(base, |s| s.base_fee_rate);
        FeeStats {
            base_fee: base,
            last_clearing_fee: last_clearing,
            queued_txs: herder.queue.len(),
        }
    }
}

/// The assembled Horizon production pipeline over one validator: the
/// ingestion [`Indexer`], the [`SubscriptionHub`], and front-door
/// [`AdmissionControl`] — the three layers of Fig. 5's client-facing
/// tier. Everything here is off-consensus: the pipeline consumes the
/// close-event feed *after* each close is final and gates what enters
/// the queue, so running it (or not) cannot change externalized headers
/// or bucket hashes.
pub struct HorizonPipeline {
    /// Materializes history/trades/effects at every close.
    pub indexer: Indexer,
    /// Fans out per-close deltas to cursor-anchored subscribers.
    pub hub: SubscriptionHub,
    /// Token-bucket + global-limit front door for `submit`.
    pub admission: AdmissionControl,
}

impl HorizonPipeline {
    /// Attaches the full pipeline to a validator: enables the herder's
    /// close-event feed, seeds the indexer from current state, bounds
    /// the tx queue (backpressure), and installs admission control.
    pub fn attach(herder: &mut Herder, cfg: AdmissionConfig) -> HorizonPipeline {
        herder.queue.set_capacity(Some(cfg.queue_capacity));
        HorizonPipeline {
            indexer: Indexer::attach(herder),
            hub: SubscriptionHub::new(crate::stream::DEFAULT_BUFFER),
            admission: AdmissionControl::new(cfg),
        }
    }

    /// Drains and materializes any close events the validator produced
    /// since the last call. Call after every ledger close (or batch of
    /// closes — the feed is buffered).
    pub fn on_close(&mut self, herder: &mut Herder) {
        let events = herder.take_close_events();
        for ev in &events {
            self.indexer.apply_close(ev, &herder.archive);
            self.hub.publish(ev);
        }
        self.indexer.note_head(herder.header.ledger_seq);
    }

    /// Admission-controlled submission: the per-source token bucket and
    /// global queue limit run first; only admitted transactions reach
    /// signature verification and the queue.
    pub fn submit(
        &mut self,
        herder: &mut Herder,
        env: TransactionEnvelope,
        now_ms: u64,
    ) -> Result<SubmitResult, HorizonError> {
        self.admission
            .admit(env.tx.source, now_ms, herder.queue.len())?;
        Horizon::submit(herder, env)
    }

    /// One merged metrics registry over all three layers (`ingest.*`,
    /// `stream.*`, `admission.*`).
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.merge(&self.indexer.registry);
        reg.merge(&self.hub.registry);
        reg.merge(&self.admission.registry);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stellar_crypto::sign::KeyPair;
    use stellar_ledger::amount::{xlm, Price, BASE_FEE};
    use stellar_ledger::entry::AccountEntry;
    use stellar_ledger::ops::{apply_operation, ExecEnv};
    use stellar_ledger::store::LedgerStore;
    use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction};
    use stellar_scp::NodeId;

    fn keys(n: u64) -> KeyPair {
        KeyPair::from_seed(800 + n)
    }

    fn acct(n: u64) -> AccountId {
        AccountId(keys(n).public())
    }

    fn herder() -> Herder {
        let mut store = LedgerStore::new();
        for i in 0..3 {
            store.put_account(AccountEntry::new(acct(i), xlm(100)));
        }
        let usd = Asset::issued(acct(2), "USD");
        {
            let env = ExecEnv::default();
            let mut d = store.begin();
            apply_operation(
                &mut d,
                acct(0),
                &Operation::ChangeTrust {
                    asset: usd.clone(),
                    limit: 500,
                },
                &env,
            )
            .unwrap();
            apply_operation(
                &mut d,
                acct(2),
                &Operation::Payment {
                    destination: acct(0),
                    asset: usd.clone(),
                    amount: 200,
                },
                &env,
            )
            .unwrap();
            apply_operation(
                &mut d,
                acct(0),
                &Operation::ManageOffer {
                    offer_id: 0,
                    selling: usd,
                    buying: Asset::Native,
                    amount: 100,
                    price: Price::new(2, 1),
                    passive: false,
                },
                &env,
            )
            .unwrap();
            let ch = d.into_changes();
            store.commit(ch);
        }
        Herder::new(NodeId(0), store, BTreeMap::new())
    }

    #[test]
    fn account_summary_includes_trustlines() {
        let h = herder();
        let info = Horizon::account(&h, acct(0)).unwrap();
        assert_eq!(info.xlm_balance, xlm(100));
        assert_eq!(info.trustlines.len(), 1);
        assert_eq!(info.trustlines[0].1, 200);
        assert_eq!(info.num_subentries, 2); // trustline + offer
        assert_eq!(Horizon::account(&h, acct(9)), Err(HorizonError::NotFound));
    }

    #[test]
    fn queries_are_identical_on_the_disk_backend() {
        // Horizon reads go through the backend trait: the same queries
        // over the same state must answer identically on the disk store.
        let ram = herder();
        let disk_store = stellar_store::open(
            &ram.store,
            stellar_store::BackendKind::Disk,
            &stellar_store::DiskConfig::default(),
        );
        let disk = Herder::new(NodeId(0), disk_store, BTreeMap::new());
        let usd = Asset::issued(acct(2), "USD");
        for a in 0..3 {
            assert_eq!(
                Horizon::account(&ram, acct(a)),
                Horizon::account(&disk, acct(a))
            );
        }
        let ram_book = Horizon::order_book(&ram, &usd, &Asset::Native, None, 10).unwrap();
        let disk_book = Horizon::order_book(&disk, &usd, &Asset::Native, None, 10).unwrap();
        assert_eq!(ram_book.records, disk_book.records);
        assert_eq!(
            Horizon::find_payment_path(&ram, &Asset::Native, &usd, 50, &[]),
            Horizon::find_payment_path(&disk, &Asset::Native, &usd, 50, &[]),
        );
    }

    #[test]
    fn order_book_aggregates_levels() {
        let h = herder();
        let usd = Asset::issued(acct(2), "USD");
        let book = Horizon::order_book(&h, &usd, &Asset::Native, None, 10).unwrap();
        assert_eq!(book.records.len(), 1);
        assert_eq!(book.records[0], (Price::new(2, 1), 100));
        assert_eq!(book.cursor, None);
        let empty = Horizon::order_book(&h, &Asset::Native, &usd, None, 10).unwrap();
        assert!(empty.records.is_empty());
        assert_eq!(empty.cursor, None);
    }

    #[test]
    fn order_book_pages_with_cursor() {
        // Three distinct price levels, page size 2: the first page carries
        // a continuation cursor, the second is final.
        let mut h = herder();
        let usd = Asset::issued(acct(2), "USD");
        {
            let env = ExecEnv::default();
            let mut d = h.store.begin();
            for (n, d_) in [(3u32, 1u32), (4, 1)] {
                apply_operation(
                    &mut d,
                    acct(0),
                    &Operation::ManageOffer {
                        offer_id: 0,
                        selling: usd.clone(),
                        buying: Asset::Native,
                        amount: 10,
                        price: Price::new(n, d_),
                        passive: false,
                    },
                    &env,
                )
                .unwrap();
            }
            let ch = d.into_changes();
            h.store.commit(ch);
        }
        let first = Horizon::order_book(&h, &usd, &Asset::Native, None, 2).unwrap();
        assert_eq!(first.records.len(), 2);
        assert_eq!(first.cursor, Some(2));
        assert_eq!(first.limit, 2);
        let rest = Horizon::order_book(&h, &usd, &Asset::Native, first.cursor, 2).unwrap();
        assert_eq!(rest.records.len(), 1);
        assert_eq!(rest.cursor, None);
        // The two pages together are the whole book, best price first.
        let all = Horizon::order_book(&h, &usd, &Asset::Native, None, 10).unwrap();
        let stitched: Vec<_> = first.records.iter().chain(&rest.records).cloned().collect();
        assert_eq!(stitched, all.records);
    }

    #[test]
    fn path_finding_quotes_through_the_book() {
        // The book sells USD for XLM at 2 XLM/USD, so a sender holding
        // XLM can deliver USD: 50 USD costs 100 XLM.
        let h = herder();
        let usd = Asset::issued(acct(2), "USD");
        let (path, cost) = Horizon::find_payment_path(&h, &Asset::Native, &usd, 50, &[]).unwrap();
        assert!(path.is_empty());
        assert_eq!(cost, 100);
        assert_eq!(Horizon::quote(&h, &Asset::Native, &usd, 50, &[]), Some(100));
        // The reverse direction has no offers.
        assert_eq!(
            Horizon::find_payment_path(&h, &usd, &Asset::Native, 50, &[]),
            None
        );
    }

    #[test]
    fn submit_goes_to_queue() {
        let mut h = herder();
        let env = stellar_ledger::tx::TransactionEnvelope::sign(
            Transaction {
                source: acct(1),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(0),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&keys(1)],
        );
        let receipt = Horizon::submit(&mut h, env.clone()).unwrap();
        assert_eq!(receipt.tx_hash, env.hash());
        assert_eq!(receipt.trace, env.hash().prefix_u64());
        assert_eq!(h.queue.len(), 1);
        assert_eq!(
            Horizon::submit(&mut h, env),
            Err(HorizonError::Malformed {
                reason: "duplicate"
            })
        );
    }

    #[test]
    fn fee_stats_report_base_fee() {
        let h = herder();
        assert_eq!(
            Horizon::fee_stats(&h),
            FeeStats {
                base_fee: BASE_FEE,
                last_clearing_fee: BASE_FEE,
                queued_txs: 0,
            }
        );
    }

    #[test]
    fn find_transaction_scans_archive() {
        // Drive a tiny consensus-free close through the herder directly.
        let mut h = herder();
        let env = stellar_ledger::tx::TransactionEnvelope::sign(
            Transaction {
                source: acct(1),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(0),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&keys(1)],
        );
        let tx_hash = env.hash();
        let set = stellar_ledger::txset::TransactionSet::assemble(h.header.hash(), vec![env], 100);
        h.learn_tx_set(set.clone());
        let value = stellar_herder::StellarValue::new(set.hash(), 100);
        assert!(h.apply_externalized(2, &value));
        let hit = Horizon::find_transaction(&h, tx_hash, None, 64).unwrap();
        assert_eq!(hit.records.len(), 1);
        let rec = &hit.records[0];
        assert_eq!(rec.ledger_seq, 2);
        assert_eq!(rec.envelope.hash(), tx_hash);
        assert_eq!(hit.cursor, None);
        let miss = Horizon::find_transaction(&h, stellar_crypto::Hash256::ZERO, None, 64).unwrap();
        assert!(miss.records.is_empty());
        assert_eq!(miss.cursor, None);
        assert_eq!(
            Horizon::find_transaction_exhaustive(&h, stellar_crypto::Hash256::ZERO),
            None
        );

        // Scan continuation: limit 1 per call walks the archive one
        // ledger at a time until the hash turns up.
        let step = Horizon::find_transaction(&h, tx_hash, None, 1).unwrap();
        assert!(step.records.len() == 1 || step.cursor.is_some());
        assert_eq!(
            Horizon::find_transaction_exhaustive(&h, tx_hash)
                .unwrap()
                .ledger_seq,
            2
        );

        // The archived ledger's transactions page out too.
        let txs = Horizon::transactions_in_ledger(&h, 2, None, 10).unwrap();
        assert_eq!(txs.records.len(), 1);
        assert_eq!(txs.records[0].hash(), tx_hash);
        // A ledger this node has never closed is NotFound now.
        assert_eq!(
            Horizon::transactions_in_ledger(&h, 99, None, 10),
            Err(HorizonError::NotFound)
        );
    }

    #[test]
    fn find_transaction_attaches_the_lifecycle_timeline() {
        // Same consensus-free close as above; the herder records the
        // close-milestone spans (externalize → apply → archive → flush →
        // horizon-visible) for every applied transaction, and horizon
        // surfaces them on the archive hit.
        let mut h = herder();
        let env = stellar_ledger::tx::TransactionEnvelope::sign(
            Transaction {
                source: acct(1),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(0),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&keys(1)],
        );
        let tx_hash = env.hash();
        let set = stellar_ledger::txset::TransactionSet::assemble(h.header.hash(), vec![env], 100);
        h.learn_tx_set(set.clone());
        let value = stellar_herder::StellarValue::new(set.hash(), 100);
        assert!(h.apply_externalized(2, &value));

        let rec = Horizon::find_transaction_exhaustive(&h, tx_hash).unwrap();
        let timeline = rec.timeline.expect("applied tx must carry a timeline");
        let tags: Vec<&str> = timeline.iter().map(|s| s.phase.tag()).collect();
        assert_eq!(
            tags,
            [
                "externalized",
                "applied",
                "archived",
                "flushed",
                "horizon_visible"
            ],
            "close milestones in pipeline order"
        );
        assert!(timeline.iter().all(|s| s.trace == tx_hash.prefix_u64()));

        // The standalone endpoint pages the same spans.
        let first = Horizon::transaction_timeline(&h, tx_hash, None, 2).unwrap();
        assert_eq!(first.records.len(), 2);
        assert_eq!(first.cursor, Some(2));
        let rest = Horizon::transaction_timeline(&h, tx_hash, first.cursor, 8).unwrap();
        assert_eq!(rest.records.len(), 3);
        assert_eq!(rest.cursor, None);
        let stitched: Vec<SpanEvent> = first.records.into_iter().chain(rest.records).collect();
        assert_eq!(stitched, timeline);

        // Sampled-out tracing: no timeline, unchanged archive answer.
        let mut h2 = herder();
        h2.telemetry.spans.configure(0, 64);
        let env2 = Horizon::transactions_in_ledger(&h, 2, None, 1)
            .unwrap()
            .records[0]
            .clone();
        let set2 =
            stellar_ledger::txset::TransactionSet::assemble(h2.header.hash(), vec![env2], 100);
        h2.learn_tx_set(set2.clone());
        assert!(h2.apply_externalized(2, &stellar_herder::StellarValue::new(set2.hash(), 100)));
        let rec2 = Horizon::find_transaction_exhaustive(&h2, tx_hash).unwrap();
        assert_eq!(rec2.ledger_seq, 2);
        assert!(rec2.timeline.is_none(), "sampled out ⇒ no timeline");
        let empty = Horizon::transaction_timeline(&h2, tx_hash, None, 8).unwrap();
        assert!(empty.records.is_empty() && empty.cursor.is_none());
    }

    fn payment_env(from: u64, to: u64, seq: u64, amount: i64) -> TransactionEnvelope {
        TransactionEnvelope::sign(
            Transaction {
                source: acct(from),
                seq_num: seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(to),
                        asset: Asset::Native,
                        amount,
                    },
                }],
            },
            &[&keys(from)],
        )
    }

    #[test]
    fn paging_edge_cases_are_safe() {
        let h = herder();
        let usd = Asset::issued(acct(2), "USD");
        // A zero limit can never make progress: reject it up front
        // rather than hand back a cursor that loops forever.
        assert_eq!(
            Horizon::order_book(&h, &usd, &Asset::Native, None, 0),
            Err(HorizonError::Malformed {
                reason: "limit must be positive"
            })
        );
        // A cursor at or past the end is an empty terminal page — no
        // panic, no wraparound.
        let past = Horizon::order_book(&h, &usd, &Asset::Native, Some(999), 10).unwrap();
        assert!(past.records.is_empty() && past.cursor.is_none());
        let huge = Horizon::order_book(&h, &usd, &Asset::Native, Some(u64::MAX), 10).unwrap();
        assert!(huge.records.is_empty() && huge.cursor.is_none());
        assert_eq!(
            Horizon::transaction_timeline(&h, stellar_crypto::Hash256::ZERO, None, 0),
            Err(HorizonError::Malformed {
                reason: "limit must be positive"
            })
        );
    }

    #[test]
    fn pipeline_wires_the_three_layers_together() {
        let mut h = herder();
        let mut p = HorizonPipeline::attach(
            &mut h,
            crate::admission::AdmissionConfig {
                max_pending: 2,
                retry_after_ms: 321,
                ..Default::default()
            },
        );
        let sub = p.hub.subscribe(crate::stream::Topic::Account(acct(1)));

        // Admitted submissions flow through to the queue.
        let env = payment_env(1, 0, 1, 5);
        p.submit(&mut h, env.clone(), 0).unwrap();
        p.submit(&mut h, payment_env(0, 1, 1, 7), 0).unwrap();
        assert_eq!(h.queue.len(), 2);
        // The global pending limit sheds the third before any queue work.
        assert_eq!(
            p.submit(&mut h, payment_env(2, 0, 1, 1), 0),
            Err(HorizonError::RateLimited {
                retry_after_ms: 321
            })
        );

        // A close flows through the feed into indexer and hub.
        let set = stellar_ledger::txset::TransactionSet::assemble(h.header.hash(), vec![env], 100);
        h.learn_tx_set(set.clone());
        assert!(h.apply_externalized(2, &stellar_herder::StellarValue::new(set.hash(), 100)));
        p.on_close(&mut h);
        assert_eq!(p.indexer.ingested_seq(), 2);
        assert_eq!(
            p.indexer
                .account_history(acct(1), None, 10)
                .unwrap()
                .records
                .len(),
            1
        );
        assert!(!p.hub.poll(sub, None, 10).unwrap().records.is_empty());

        // The merged registry sees all three layers.
        let reg = p.registry();
        assert_eq!(reg.counter("ingest.ledgers"), 1);
        assert_eq!(reg.counter("admission.shed_global"), 1);
        assert!(reg.counter("stream.events") > 0);
    }

    #[test]
    fn queue_full_backpressure_maps_to_rate_limited() {
        let mut h = herder();
        let mut p = HorizonPipeline::attach(
            &mut h,
            crate::admission::AdmissionConfig {
                queue_capacity: 1,
                ..Default::default()
            },
        );
        assert_eq!(h.queue.capacity(), Some(1));
        p.submit(&mut h, payment_env(1, 0, 1, 5), 0).unwrap();
        // Admission passes (max_pending is high) but the bounded queue
        // itself refuses: last-resort backpressure, typed for clients.
        assert_eq!(
            p.submit(&mut h, payment_env(0, 1, 1, 7), 0),
            Err(HorizonError::RateLimited {
                retry_after_ms: QUEUE_FULL_RETRY_MS
            })
        );
    }
}

//! The bridge server: payment notifications (§5.4).
//!
//! "A bridge server facilitates integration of Stellar with existing
//! systems, e.g., posting notifications of all payments received by a
//! specific account." This implementation is a Horizon API client: it
//! pages each closed ledger's transactions through
//! [`Horizon::transactions_in_ledger`], picks out successful payments
//! (and path payments) to watched accounts, and queues structured
//! notifications — the same cursor-paged surface external integrators
//! consume.

use crate::api::Horizon;
use std::collections::BTreeSet;
use stellar_herder::Herder;
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::AccountId;
use stellar_ledger::tx::{Memo, Operation};

/// One "you got paid" event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaymentNotification {
    /// Ledger the payment was confirmed in.
    pub ledger_seq: u64,
    /// The paying account (operation source).
    pub from: AccountId,
    /// The watched receiving account.
    pub to: AccountId,
    /// Asset delivered.
    pub asset: Asset,
    /// Amount delivered.
    pub amount: i64,
    /// The transaction memo (deposit routing, invoices…).
    pub memo: Memo,
}

/// Watches accounts and drains notifications per ledger.
#[derive(Debug, Default)]
pub struct BridgeServer {
    watched: BTreeSet<AccountId>,
    /// Last ledger scanned.
    cursor: u64,
    pending: Vec<PaymentNotification>,
}

impl BridgeServer {
    /// A bridge with no watched accounts, starting at genesis.
    pub fn new() -> BridgeServer {
        BridgeServer {
            watched: BTreeSet::new(),
            cursor: 1,
            pending: Vec::new(),
        }
    }

    /// Watches an account for incoming payments.
    pub fn watch(&mut self, account: AccountId) {
        self.watched.insert(account);
    }

    /// Scans any newly closed ledgers and returns fresh notifications.
    ///
    /// Note: the scan reports payment *operations* in confirmed
    /// transactions; a production bridge additionally filters by operation
    /// result, which this reproduction approximates by skipping sets whose
    /// transactions could not have applied (sequence mismatch is already
    /// impossible post-close).
    pub fn poll(&mut self, herder: &Herder) -> Vec<PaymentNotification> {
        let head = herder.header.ledger_seq;
        while self.cursor < head {
            self.cursor += 1;
            // Page through the Horizon API rather than reaching into the
            // archive: the bridge consumes the same surface external
            // clients get.
            let mut txs = Vec::new();
            let mut cursor = None;
            loop {
                let Ok(page) = Horizon::transactions_in_ledger(herder, self.cursor, cursor, 64)
                else {
                    break;
                };
                txs.extend(page.records);
                match page.cursor {
                    Some(c) => cursor = Some(c),
                    None => break,
                }
            }
            for env in &txs {
                for so in &env.tx.operations {
                    let source = so.source.unwrap_or(env.tx.source);
                    match &so.op {
                        Operation::Payment {
                            destination,
                            asset,
                            amount,
                        } if self.watched.contains(destination) => {
                            self.pending.push(PaymentNotification {
                                ledger_seq: self.cursor,
                                from: source,
                                to: *destination,
                                asset: asset.clone(),
                                amount: *amount,
                                memo: env.tx.memo.clone(),
                            });
                        }
                        Operation::PathPayment {
                            destination,
                            dest_asset,
                            dest_amount,
                            ..
                        } if self.watched.contains(destination) => {
                            self.pending.push(PaymentNotification {
                                ledger_seq: self.cursor,
                                from: source,
                                to: *destination,
                                asset: dest_asset.clone(),
                                amount: *dest_amount,
                                memo: env.tx.memo.clone(),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stellar_crypto::sign::KeyPair;
    use stellar_ledger::amount::{xlm, BASE_FEE};
    use stellar_ledger::entry::AccountEntry;
    use stellar_ledger::store::LedgerStore;
    use stellar_ledger::tx::{SourcedOperation, Transaction, TransactionEnvelope};
    use stellar_ledger::txset::TransactionSet;
    use stellar_scp::NodeId;

    fn keys(n: u64) -> KeyPair {
        KeyPair::from_seed(900 + n)
    }

    fn acct(n: u64) -> AccountId {
        AccountId(keys(n).public())
    }

    fn close_payment(h: &mut Herder, from: u64, to: u64, seq: u64, amount: i64, memo: Memo) {
        let env = TransactionEnvelope::sign(
            Transaction {
                source: acct(from),
                seq_num: seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(to),
                        asset: Asset::Native,
                        amount,
                    },
                }],
            },
            &[&keys(from)],
        );
        let set = TransactionSet::assemble(h.header.hash(), vec![env], 100);
        h.learn_tx_set(set.clone());
        let v = stellar_herder::StellarValue::new(set.hash(), h.header.close_time + 5);
        assert!(h.apply_externalized(h.current_slot(), &v));
    }

    #[test]
    fn notifications_for_watched_accounts_only() {
        let mut store = LedgerStore::new();
        for i in 0..3 {
            store.put_account(AccountEntry::new(acct(i), xlm(100)));
        }
        let mut h = Herder::new(NodeId(0), store, BTreeMap::new());
        let mut bridge = BridgeServer::new();
        bridge.watch(acct(1));

        close_payment(&mut h, 0, 1, 1, 500, Memo::Text("invoice 7".into()));
        close_payment(&mut h, 0, 2, 2, 300, Memo::None); // unwatched

        let notes = bridge.poll(&h);
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].to, acct(1));
        assert_eq!(notes[0].amount, 500);
        assert_eq!(notes[0].memo, Memo::Text("invoice 7".into()));
        // Polling again yields nothing new.
        assert!(bridge.poll(&h).is_empty());
        // A later payment shows up on the next poll.
        close_payment(&mut h, 2, 1, 1, 40, Memo::Id(9));
        let notes = bridge.poll(&h);
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].amount, 40);
        assert_eq!(notes[0].ledger_seq, h.header.ledger_seq);
    }
}

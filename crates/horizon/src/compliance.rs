//! The compliance server (§5.4): sanctioned-party screening hooks.
//!
//! "A compliance server provides hooks for financial institutions to
//! exchange and approve of sender and beneficiary information on payments,
//! for compliance with sanctions lists." The protocol here is the
//! pre-submission handshake: the sending institution shares sender info,
//! the receiving institution screens both parties and answers
//! allow/deny/pending, and only an allowed payment proceeds to submission.

use std::collections::{BTreeMap, BTreeSet};
use stellar_ledger::entry::AccountId;

/// KYC information exchanged about a party.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartyInfo {
    /// Legal name.
    pub name: String,
    /// Country code.
    pub country: String,
    /// On-ledger account.
    pub account: AccountId,
}

/// Screening outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComplianceDecision {
    /// The payment may proceed.
    Allowed,
    /// The payment must not proceed (sanctions hit).
    Denied,
    /// Manual review required; retry later.
    Pending,
}

/// A receiving institution's compliance endpoint.
#[derive(Debug, Default)]
pub struct ComplianceServer {
    /// Sanctioned legal names (uppercased).
    sanctioned_names: BTreeSet<String>,
    /// Embargoed country codes.
    embargoed_countries: BTreeSet<String>,
    /// Accounts flagged for manual review.
    review_queue: BTreeSet<AccountId>,
    /// Audit log of decisions: (sender name, decision).
    pub audit_log: Vec<(String, ComplianceDecision)>,
    /// Per-account info records shared by counterparties.
    received_info: BTreeMap<AccountId, PartyInfo>,
}

impl ComplianceServer {
    /// A permissive server with empty lists.
    pub fn new() -> ComplianceServer {
        ComplianceServer::default()
    }

    /// Adds a name to the sanctions list.
    pub fn sanction_name(&mut self, name: &str) {
        self.sanctioned_names.insert(name.to_uppercase());
    }

    /// Embargoes a country code.
    pub fn embargo_country(&mut self, code: &str) {
        self.embargoed_countries.insert(code.to_uppercase());
    }

    /// Flags an account for manual review.
    pub fn flag_for_review(&mut self, account: AccountId) {
        self.review_queue.insert(account);
    }

    /// Clears a manual-review flag (review completed).
    pub fn clear_review(&mut self, account: AccountId) {
        self.review_queue.remove(&account);
    }

    /// The §5.4 handshake: the sending institution shares sender and
    /// beneficiary info; the receiver screens and decides.
    pub fn screen(&mut self, sender: &PartyInfo, beneficiary: &PartyInfo) -> ComplianceDecision {
        self.received_info.insert(sender.account, sender.clone());
        let decision = if self.sanctioned_names.contains(&sender.name.to_uppercase())
            || self
                .sanctioned_names
                .contains(&beneficiary.name.to_uppercase())
            || self
                .embargoed_countries
                .contains(&sender.country.to_uppercase())
            || self
                .embargoed_countries
                .contains(&beneficiary.country.to_uppercase())
        {
            ComplianceDecision::Denied
        } else if self.review_queue.contains(&sender.account)
            || self.review_queue.contains(&beneficiary.account)
        {
            ComplianceDecision::Pending
        } else {
            ComplianceDecision::Allowed
        };
        self.audit_log.push((sender.name.clone(), decision));
        decision
    }

    /// Info previously shared about an account (regulator queries).
    pub fn info_for(&self, account: AccountId) -> Option<&PartyInfo> {
        self.received_info.get(&account)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::PublicKey;

    fn party(name: &str, country: &str, n: u64) -> PartyInfo {
        PartyInfo {
            name: name.into(),
            country: country.into(),
            account: AccountId(PublicKey(n)),
        }
    }

    #[test]
    fn clean_parties_allowed() {
        let mut c = ComplianceServer::new();
        let d = c.screen(&party("Alice Doe", "US", 1), &party("Benito R", "MX", 2));
        assert_eq!(d, ComplianceDecision::Allowed);
        assert_eq!(c.audit_log.len(), 1);
    }

    #[test]
    fn sanctioned_name_denied_case_insensitive() {
        let mut c = ComplianceServer::new();
        c.sanction_name("Evil Corp");
        assert_eq!(
            c.screen(&party("evil corp", "US", 1), &party("B", "MX", 2)),
            ComplianceDecision::Denied
        );
        assert_eq!(
            c.screen(&party("A", "US", 1), &party("EVIL CORP", "MX", 2)),
            ComplianceDecision::Denied
        );
    }

    #[test]
    fn embargoed_country_denied() {
        let mut c = ComplianceServer::new();
        c.embargo_country("ZZ");
        assert_eq!(
            c.screen(&party("A", "zz", 1), &party("B", "MX", 2)),
            ComplianceDecision::Denied
        );
    }

    #[test]
    fn review_flag_pends_then_clears() {
        let mut c = ComplianceServer::new();
        let a = AccountId(PublicKey(1));
        c.flag_for_review(a);
        assert_eq!(
            c.screen(&party("A", "US", 1), &party("B", "MX", 2)),
            ComplianceDecision::Pending
        );
        c.clear_review(a);
        assert_eq!(
            c.screen(&party("A", "US", 1), &party("B", "MX", 2)),
            ComplianceDecision::Allowed
        );
    }

    #[test]
    fn shared_info_retained_for_audits() {
        let mut c = ComplianceServer::new();
        let sender = party("Alice", "US", 1);
        c.screen(&sender, &party("B", "MX", 2));
        assert_eq!(c.info_for(sender.account), Some(&sender));
        assert_eq!(c.info_for(AccountId(PublicKey(99))), None);
    }
}

//! The federation server (§5.4): human-readable account names.
//!
//! "A federation server implements a human-readable naming system for
//! accounts." Stellar federation addresses look like `alice*example.org`;
//! a domain's federation server resolves the local part to an account id
//! and, optionally, a required memo (exchanges route deposits to one
//! pooled account distinguished by memo).

use std::collections::BTreeMap;
use stellar_ledger::entry::AccountId;
use stellar_ledger::tx::Memo;

/// A resolved federation record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FederationRecord {
    /// The on-ledger account.
    pub account: AccountId,
    /// Memo the sender must attach (pooled-account routing), if any.
    pub required_memo: Option<Memo>,
}

/// One domain's name registry.
#[derive(Debug)]
pub struct FederationServer {
    domain: String,
    records: BTreeMap<String, FederationRecord>,
}

impl FederationServer {
    /// A federation server for `domain`.
    pub fn new(domain: &str) -> FederationServer {
        FederationServer {
            domain: domain.to_lowercase(),
            records: BTreeMap::new(),
        }
    }

    /// The served domain.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Registers (or replaces) `name*domain` → account.
    pub fn register(&mut self, name: &str, account: AccountId, required_memo: Option<Memo>) {
        self.records.insert(
            name.to_lowercase(),
            FederationRecord {
                account,
                required_memo,
            },
        );
    }

    /// Resolves a full federation address (`name*domain`).
    ///
    /// Returns `None` for malformed addresses, foreign domains, or
    /// unknown names.
    pub fn resolve(&self, address: &str) -> Option<&FederationRecord> {
        let (name, domain) = address.split_once('*')?;
        if domain.to_lowercase() != self.domain || name.is_empty() {
            return None;
        }
        self.records.get(&name.to_lowercase())
    }

    /// Reverse lookup: the address for an account, if registered.
    pub fn reverse(&self, account: AccountId) -> Option<String> {
        self.records
            .iter()
            .find(|(_, r)| r.account == account)
            .map(|(name, _)| format!("{name}*{}", self.domain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::PublicKey;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    #[test]
    fn resolves_registered_names() {
        let mut f = FederationServer::new("Example.Org");
        f.register("Alice", acct(1), None);
        let r = f.resolve("alice*example.org").unwrap();
        assert_eq!(r.account, acct(1));
        assert_eq!(r.required_memo, None);
        // Case-insensitive on both halves.
        assert!(f.resolve("ALICE*EXAMPLE.ORG").is_some());
    }

    #[test]
    fn pooled_account_requires_memo() {
        let mut f = FederationServer::new("exchange.com");
        f.register("deposits", acct(7), Some(Memo::Id(424242)));
        let r = f.resolve("deposits*exchange.com").unwrap();
        assert_eq!(r.required_memo, Some(Memo::Id(424242)));
    }

    #[test]
    fn rejects_foreign_and_malformed_addresses() {
        let mut f = FederationServer::new("example.org");
        f.register("alice", acct(1), None);
        assert!(f.resolve("alice*other.org").is_none());
        assert!(f.resolve("alice").is_none());
        assert!(f.resolve("*example.org").is_none());
        assert!(f.resolve("bob*example.org").is_none());
    }

    #[test]
    fn reverse_lookup() {
        let mut f = FederationServer::new("example.org");
        f.register("alice", acct(1), None);
        assert_eq!(f.reverse(acct(1)), Some("alice*example.org".into()));
        assert_eq!(f.reverse(acct(2)), None);
    }

    #[test]
    fn reregistration_replaces() {
        let mut f = FederationServer::new("example.org");
        f.register("alice", acct(1), None);
        f.register("alice", acct(2), None);
        assert_eq!(f.resolve("alice*example.org").unwrap().account, acct(2));
    }
}

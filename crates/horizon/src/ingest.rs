//! The ingestion indexer: materialized history, trades, and effects.
//!
//! Production horizon does not answer queries by scanning stellar-core's
//! state — an ingestion pipeline consumes each closed ledger once and
//! materializes indexed tables, so a query is an index walk no matter
//! how large the ledger grows. This module is that pipeline for the
//! reproduction: at every close the herder's [`CloseEvent`] feed
//! (transaction set, per-tx results, and the `LedgerDelta` change feed)
//! is folded into per-account history, per-pair trades, and per-account
//! effects.
//!
//! Everything here is **off-consensus**: the indexer consumes closes
//! after they are final and never feeds anything back, so running it —
//! or crashing it — cannot change externalized headers or bucket hashes
//! (CI's twin-run gate asserts byte-identity with the indexer on/off).
//!
//! Recovery: the feed is bounded; if the consumer falls behind, history
//! for the gap is re-derived from the archive (transaction sets are
//! archived), while change-feed enrichments (outcomes, effects, offer
//! transitions) for the gap are counted as lost. A restarted indexer
//! likewise backfills history from the archive via
//! [`Indexer::backfill_history`].

use crate::api::{HorizonError, Page};
use std::collections::{BTreeMap, BTreeSet};
use stellar_buckets::HistoryArchive;
use stellar_crypto::Hash256;
use stellar_herder::{CloseEvent, Herder};
use stellar_ledger::amount::Price;
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::{AccountId, LedgerEntry, LedgerKey, OfferEntry};
use stellar_ledger::tx::{Operation, TransactionEnvelope, TxResult};
use stellar_telemetry::Registry;

/// Close events the herder buffers for the indexer before the oldest is
/// dropped (a dropped event becomes an archive-backfilled gap).
pub const INGEST_FEED_CAP: usize = 1024;

/// The apply outcome of one transaction, when the live change feed
/// carried it. Archive backfill cannot recover it: archived sets only
/// prove a transaction was applied (fee charged, sequence consumed),
/// not whether its operations succeeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxOutcome {
    /// All operations applied.
    pub success: bool,
    /// Fee actually charged (stroops).
    pub fee_charged: i64,
}

/// One per-account history row: an appearance of the account in a
/// confirmed transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryRow {
    /// Ledger the transaction was confirmed in.
    pub ledger_seq: u64,
    /// Consensus close time of that ledger.
    pub close_time: u64,
    /// Index of the transaction within the applied set.
    pub tx_index: u32,
    /// The transaction's content hash.
    pub tx_hash: Hash256,
    /// The transaction's source account.
    pub source: AccountId,
    /// Apply outcome; `None` for archive-backfilled rows.
    pub outcome: Option<TxOutcome>,
}

/// A balance-affecting side effect of one ledger close.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect {
    /// The account came into existence with this starting balance.
    AccountCreated {
        /// Initial XLM balance (stroops).
        balance: i64,
    },
    /// The account was merged away.
    AccountRemoved,
    /// Balance in `asset` increased by `amount`.
    Credited {
        /// The credited asset.
        asset: Asset,
        /// The increase (positive).
        amount: i64,
    },
    /// Balance in `asset` decreased by `amount` (payments, fees, fills).
    Debited {
        /// The debited asset.
        asset: Asset,
        /// The decrease (positive).
        amount: i64,
    },
}

/// One effect row in the per-account effects index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EffectRow {
    /// Ledger the effect happened in.
    pub ledger_seq: u64,
    /// The affected account.
    pub account: AccountId,
    /// What happened.
    pub effect: Effect,
}

/// One trade: a resting offer (partially) consumed by the matching
/// engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TradeRow {
    /// Ledger the fill happened in.
    pub ledger_seq: u64,
    /// The resting offer that was hit.
    pub offer_id: u64,
    /// Owner of the resting offer (the maker).
    pub seller: AccountId,
    /// Asset the maker sold.
    pub selling: Asset,
    /// Asset the maker received.
    pub buying: Asset,
    /// Amount of `selling` filled.
    pub amount: i64,
    /// The resting offer's price.
    pub price: Price,
}

/// Accounts a transaction touches — the key set the per-account history
/// index files the transaction under: the transaction source, every
/// operation source, and every operation counterparty. Sorted, deduped.
pub fn participants(env: &TransactionEnvelope) -> Vec<AccountId> {
    let mut out = vec![env.tx.source];
    for so in &env.tx.operations {
        if let Some(s) = so.source {
            out.push(s);
        }
        match &so.op {
            Operation::CreateAccount { destination, .. }
            | Operation::AccountMerge { destination }
            | Operation::Payment { destination, .. }
            | Operation::PathPayment { destination, .. } => out.push(*destination),
            Operation::AllowTrust { trustor, .. } => out.push(*trustor),
            Operation::SetOptions { .. }
            | Operation::ManageOffer { .. }
            | Operation::ManageData { .. }
            | Operation::ChangeTrust { .. }
            | Operation::BumpSequence { .. } => {}
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Clones only the requested window out of an index — the whole point
/// of materialized tables is that a page never touches the rest.
fn page_of<T: Clone>(rows: &[T], cursor: Option<u64>, limit: usize) -> Page<T> {
    let total = rows.len();
    let skip = usize::try_from(cursor.unwrap_or(0))
        .unwrap_or(usize::MAX)
        .min(total);
    let records: Vec<T> = rows[skip..(skip + limit).min(total)].to_vec();
    let consumed = skip + records.len();
    Page {
        records,
        cursor: (limit > 0 && consumed < total).then_some(consumed as u64),
        limit,
    }
}

/// The ingestion indexer over one validator's close-event feed.
pub struct Indexer {
    /// Last ledger folded into the tables.
    ingested_seq: u64,
    /// Where this indexer attached; effects/outcomes/trades are only
    /// complete from here on (earlier ledgers can be history-backfilled
    /// from the archive, without change-feed enrichments).
    attached_seq: u64,
    /// Per-account confirmed-transaction history, append-ordered.
    history: BTreeMap<AccountId, Vec<HistoryRow>>,
    /// Per-account balance effects, append-ordered.
    effects: BTreeMap<AccountId, Vec<EffectRow>>,
    /// Per-pair trades, append-ordered.
    trades: BTreeMap<(Asset, Asset), Vec<TradeRow>>,
    /// Tracked balances: `(account, asset)` → balance, `Asset::Native`
    /// for XLM. Deltas against this table become effect rows.
    balances: BTreeMap<(AccountId, Asset), i64>,
    /// Resting offers as of the last ingested ledger — offer-transition
    /// detection (fills vs cancels) diffs against this.
    offers: BTreeMap<u64, OfferEntry>,
    /// `ingest.*` counters and the ingestion-lag gauge.
    pub registry: Registry,
}

impl Indexer {
    /// Attaches an indexer to a validator: turns on the herder's
    /// close-event feed and seeds the balance/offer tables with one
    /// state scan (the only full scan the indexer ever does).
    pub fn attach(herder: &mut Herder) -> Indexer {
        herder.enable_ingest(INGEST_FEED_CAP);
        let head = herder.header.ledger_seq;
        let mut ix = Indexer {
            ingested_seq: head,
            attached_seq: head,
            history: BTreeMap::new(),
            effects: BTreeMap::new(),
            trades: BTreeMap::new(),
            balances: BTreeMap::new(),
            offers: BTreeMap::new(),
            registry: Registry::new(),
        };
        for entry in herder.store.all_entries() {
            match entry {
                LedgerEntry::Account(a) => {
                    ix.balances.insert((a.id, Asset::Native), a.balance);
                }
                LedgerEntry::TrustLine(t) => {
                    ix.balances.insert((t.account, t.asset.clone()), t.balance);
                }
                LedgerEntry::Offer(o) => {
                    ix.offers.insert(o.id, o);
                }
                LedgerEntry::Data(_) => {}
            }
        }
        ix.registry.set_gauge("ingest.lag", 0);
        ix.registry.set_gauge("ingest.seq", head as i64);
        ix
    }

    /// Last ledger materialized into the tables.
    pub fn ingested_seq(&self) -> u64 {
        self.ingested_seq
    }

    /// Ledgers the tables lag behind the given chain head.
    pub fn lag(&self, head_seq: u64) -> u64 {
        head_seq.saturating_sub(self.ingested_seq)
    }

    /// Drains and materializes everything the validator closed since the
    /// last call, then refreshes the lag gauge.
    pub fn ingest(&mut self, herder: &mut Herder) {
        let events = herder.take_close_events();
        for ev in &events {
            self.apply_close(ev, &herder.archive);
        }
        self.note_head(herder.header.ledger_seq);
    }

    /// Updates the ingestion-lag gauge against the current chain head.
    pub fn note_head(&mut self, head_seq: u64) {
        self.registry
            .set_gauge("ingest.lag", self.lag(head_seq) as i64);
        self.registry
            .set_gauge("ingest.seq", self.ingested_seq as i64);
    }

    /// Folds one close event into the tables. Replayed events (at or
    /// below the ingested sequence — e.g. a recovering herder re-emitting
    /// archived closes) are skipped idempotently; a gap (feed overflow)
    /// is history-backfilled from the archive first.
    pub fn apply_close(&mut self, ev: &CloseEvent, archive: &HistoryArchive) {
        if ev.ledger_seq <= self.ingested_seq {
            self.registry.inc("ingest.replay_skipped");
            return;
        }
        while self.ingested_seq + 1 < ev.ledger_seq {
            let seq = self.ingested_seq + 1;
            match (archive.tx_set(seq), archive.header(seq)) {
                (Some(set), Some(hdr)) => {
                    let txs = set.txs.clone();
                    self.index_history(seq, hdr.close_time, &txs, None);
                    self.registry.inc("ingest.gap_backfilled");
                }
                _ => self.registry.inc("ingest.gap_lost"),
            }
            self.ingested_seq = seq;
        }
        // Trades diff offers against pre-close state, so they run before
        // the change pass updates the tracked tables.
        self.index_trades(ev);
        self.index_changes(ev);
        self.index_history(ev.ledger_seq, ev.close_time, &ev.txs, Some(&ev.results));
        self.ingested_seq = ev.ledger_seq;
        self.registry.inc("ingest.ledgers");
        self.registry.add("ingest.txs", ev.txs.len() as u64);
        self.registry.add("ingest.changes", ev.changes.len() as u64);
    }

    /// Rebuilds per-account history for every archived ledger this
    /// indexer has not ingested live — the restart / mid-stream-attach
    /// path. Backfilled rows carry no outcome (archives prove a
    /// transaction applied, not how), and no effects or trades (those
    /// need the live change feed).
    pub fn backfill_history(&mut self, archive: &HistoryArchive) {
        let Some(latest) = archive.latest_seq() else {
            return;
        };
        for seq in 2..=latest.min(self.attached_seq) {
            if let (Some(set), Some(hdr)) = (archive.tx_set(seq), archive.header(seq)) {
                let txs = set.txs.clone();
                self.index_history(seq, hdr.close_time, &txs, None);
                self.registry.inc("ingest.backfilled");
            }
        }
    }

    fn index_history(
        &mut self,
        ledger_seq: u64,
        close_time: u64,
        txs: &[TransactionEnvelope],
        results: Option<&[TxResult]>,
    ) {
        for (i, env) in txs.iter().enumerate() {
            let outcome = results.and_then(|rs| rs.get(i)).map(|r| match r {
                TxResult::Success { fee_charged } => TxOutcome {
                    success: true,
                    fee_charged: *fee_charged,
                },
                TxResult::Failed { fee_charged, .. } => TxOutcome {
                    success: false,
                    fee_charged: *fee_charged,
                },
                TxResult::Invalid(_) => TxOutcome {
                    success: false,
                    fee_charged: 0,
                },
            });
            let row = HistoryRow {
                ledger_seq,
                close_time,
                tx_index: i as u32,
                tx_hash: env.hash(),
                source: env.tx.source,
                outcome,
            };
            for account in participants(env) {
                self.history.entry(account).or_default().push(row.clone());
                self.registry.inc("ingest.history_rows");
            }
        }
    }

    fn index_changes(&mut self, ev: &CloseEvent) {
        let seq = ev.ledger_seq;
        for (key, entry) in &ev.changes {
            match (key, entry) {
                (LedgerKey::Account(id), Some(LedgerEntry::Account(a))) => {
                    match self.balances.insert((*id, Asset::Native), a.balance) {
                        None => self.push_effect(
                            seq,
                            *id,
                            Effect::AccountCreated { balance: a.balance },
                        ),
                        Some(old) if a.balance > old => self.push_effect(
                            seq,
                            *id,
                            Effect::Credited {
                                asset: Asset::Native,
                                amount: a.balance - old,
                            },
                        ),
                        Some(old) if a.balance < old => self.push_effect(
                            seq,
                            *id,
                            Effect::Debited {
                                asset: Asset::Native,
                                amount: old - a.balance,
                            },
                        ),
                        Some(_) => {} // seq bump / options change only
                    }
                }
                (LedgerKey::Account(id), None) => {
                    self.balances.remove(&(*id, Asset::Native));
                    self.push_effect(seq, *id, Effect::AccountRemoved);
                }
                (LedgerKey::TrustLine(id, asset), Some(LedgerEntry::TrustLine(t))) => {
                    let old = self
                        .balances
                        .insert((*id, asset.clone()), t.balance)
                        .unwrap_or(0);
                    if t.balance > old {
                        self.push_effect(
                            seq,
                            *id,
                            Effect::Credited {
                                asset: asset.clone(),
                                amount: t.balance - old,
                            },
                        );
                    } else if t.balance < old {
                        self.push_effect(
                            seq,
                            *id,
                            Effect::Debited {
                                asset: asset.clone(),
                                amount: old - t.balance,
                            },
                        );
                    }
                }
                (LedgerKey::TrustLine(id, asset), None) => {
                    if let Some(old) = self.balances.remove(&(*id, asset.clone())) {
                        if old > 0 {
                            self.push_effect(
                                seq,
                                *id,
                                Effect::Debited {
                                    asset: asset.clone(),
                                    amount: old,
                                },
                            );
                        }
                    }
                }
                // Offer transitions feed the trades pass; data entries
                // are not indexed.
                _ => {}
            }
        }
    }

    /// Derives trades from offer transitions in the change feed. An
    /// amount decrease on a resting offer is a partial fill; a deletion
    /// is a full fill — unless a `ManageOffer` op in this ledger's set
    /// explicitly targeted that offer id, in which case the change is a
    /// maker update/cancel, not a fill. (Same-ledger cross-then-update
    /// sequences collapse into one transition; production horizon reads
    /// exact fills from operation meta, which this feed does not carry.)
    fn index_trades(&mut self, ev: &CloseEvent) {
        let mut managed: BTreeSet<u64> = BTreeSet::new();
        for env in &ev.txs {
            for so in &env.tx.operations {
                if let Operation::ManageOffer { offer_id, .. } = &so.op {
                    if *offer_id != 0 {
                        managed.insert(*offer_id);
                    }
                }
            }
        }
        for (key, entry) in &ev.changes {
            let LedgerKey::Offer(id) = key else { continue };
            match entry {
                Some(LedgerEntry::Offer(new)) => {
                    if let Some(old) = self.offers.get(id) {
                        if new.amount < old.amount && !managed.contains(id) {
                            let fill = old.amount - new.amount;
                            let old = old.clone();
                            self.push_trade(ev.ledger_seq, &old, fill);
                        }
                    }
                    self.offers.insert(*id, new.clone());
                }
                Some(_) => {}
                None => {
                    if let Some(old) = self.offers.remove(id) {
                        if !managed.contains(id) && old.amount > 0 {
                            self.push_trade(ev.ledger_seq, &old, old.amount);
                        }
                    }
                }
            }
        }
    }

    fn push_effect(&mut self, ledger_seq: u64, account: AccountId, effect: Effect) {
        self.registry.inc("ingest.effects");
        self.effects.entry(account).or_default().push(EffectRow {
            ledger_seq,
            account,
            effect,
        });
    }

    fn push_trade(&mut self, ledger_seq: u64, offer: &OfferEntry, amount: i64) {
        self.registry.inc("ingest.trades");
        self.trades
            .entry((offer.selling.clone(), offer.buying.clone()))
            .or_default()
            .push(TradeRow {
                ledger_seq,
                offer_id: offer.id,
                seller: offer.account,
                selling: offer.selling.clone(),
                buying: offer.buying.clone(),
                amount,
                price: offer.price,
            });
    }

    // ---- indexed queries: pure index walks, no state scans ----

    /// The account's confirmed-transaction history, oldest first.
    pub fn account_history(
        &self,
        id: AccountId,
        cursor: Option<u64>,
        limit: usize,
    ) -> Result<Page<HistoryRow>, HorizonError> {
        crate::api::check_limit(limit)?;
        let rows = self.history.get(&id).map(Vec::as_slice).unwrap_or(&[]);
        Ok(page_of(rows, cursor, limit))
    }

    /// The account's balance effects, oldest first.
    pub fn account_effects(
        &self,
        id: AccountId,
        cursor: Option<u64>,
        limit: usize,
    ) -> Result<Page<EffectRow>, HorizonError> {
        crate::api::check_limit(limit)?;
        let rows = self.effects.get(&id).map(Vec::as_slice).unwrap_or(&[]);
        Ok(page_of(rows, cursor, limit))
    }

    /// Trades on a pair (maker sold `selling` for `buying`), oldest
    /// first.
    pub fn trades(
        &self,
        selling: &Asset,
        buying: &Asset,
        cursor: Option<u64>,
        limit: usize,
    ) -> Result<Page<TradeRow>, HorizonError> {
        crate::api::check_limit(limit)?;
        let rows = self
            .trades
            .get(&(selling.clone(), buying.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        Ok(page_of(rows, cursor, limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::KeyPair;
    use stellar_herder::StellarValue;
    use stellar_ledger::amount::{xlm, BASE_FEE};
    use stellar_ledger::entry::AccountEntry;
    use stellar_ledger::store::LedgerStore;
    use stellar_ledger::tx::{Memo, SourcedOperation, Transaction};
    use stellar_ledger::txset::TransactionSet;
    use stellar_scp::NodeId;

    fn keys(n: u64) -> KeyPair {
        KeyPair::from_seed(500 + n)
    }

    fn acct(n: u64) -> AccountId {
        AccountId(keys(n).public())
    }

    fn herder() -> Herder {
        let mut store = LedgerStore::new();
        for i in 0..3 {
            store.put_account(AccountEntry::new(acct(i), xlm(100)));
        }
        Herder::new(NodeId(0), store, BTreeMap::new())
    }

    fn close_payment(h: &mut Herder, from: u64, to: u64, seq: u64, amount: i64) {
        let env = TransactionEnvelope::sign(
            Transaction {
                source: acct(from),
                seq_num: seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(to),
                        asset: Asset::Native,
                        amount,
                    },
                }],
            },
            &[&keys(from)],
        );
        let set = TransactionSet::assemble(h.header.hash(), vec![env], 100);
        h.learn_tx_set(set.clone());
        let v = StellarValue::new(set.hash(), h.header.close_time + 5);
        assert!(h.apply_externalized(h.current_slot(), &v));
    }

    fn ev(seq: u64, changes: Vec<(LedgerKey, Option<LedgerEntry>)>) -> CloseEvent {
        CloseEvent {
            ledger_seq: seq,
            close_time: seq * 5,
            txs: Vec::new(),
            results: Vec::new(),
            changes,
        }
    }

    fn offer(id: u64, amount: i64) -> OfferEntry {
        OfferEntry {
            id,
            account: acct(0),
            selling: Asset::issued(acct(2), "USD"),
            buying: Asset::Native,
            amount,
            price: stellar_ledger::amount::Price::new(2, 1),
            passive: false,
        }
    }

    #[test]
    fn live_close_materializes_history_and_effects() {
        let mut h = herder();
        let mut ix = Indexer::attach(&mut h);
        close_payment(&mut h, 0, 1, 1, 500);
        ix.ingest(&mut h);
        assert_eq!(ix.ingested_seq(), h.header.ledger_seq);
        assert_eq!(ix.lag(h.header.ledger_seq), 0);

        // Both participants carry the same history row, with the live
        // outcome attached.
        let h0 = ix.account_history(acct(0), None, 10).unwrap();
        let h1 = ix.account_history(acct(1), None, 10).unwrap();
        assert_eq!(h0.records, h1.records);
        assert_eq!(h0.records.len(), 1);
        let row = &h0.records[0];
        assert_eq!(row.ledger_seq, 2);
        assert_eq!(row.source, acct(0));
        let outcome = row.outcome.expect("live rows carry outcomes");
        assert!(outcome.success);
        // A bystander indexes nothing.
        assert!(ix
            .account_history(acct(2), None, 10)
            .unwrap()
            .records
            .is_empty());

        // Effects: sender debited amount + fee, receiver credited amount.
        let e0 = ix.account_effects(acct(0), None, 10).unwrap();
        assert_eq!(
            e0.records,
            vec![EffectRow {
                ledger_seq: 2,
                account: acct(0),
                effect: Effect::Debited {
                    asset: Asset::Native,
                    amount: 500 + outcome.fee_charged,
                },
            }]
        );
        let e1 = ix.account_effects(acct(1), None, 10).unwrap();
        assert_eq!(
            e1.records,
            vec![EffectRow {
                ledger_seq: 2,
                account: acct(1),
                effect: Effect::Credited {
                    asset: Asset::Native,
                    amount: 500,
                },
            }]
        );

        // Paging edge cases are inherited: zero limit is malformed, a
        // past-end cursor is an empty terminal page.
        assert_eq!(
            ix.account_history(acct(0), None, 0),
            Err(HorizonError::Malformed {
                reason: "limit must be positive"
            })
        );
        let past = ix.account_history(acct(0), Some(99), 10).unwrap();
        assert!(past.records.is_empty() && past.cursor.is_none());
    }

    #[test]
    fn replayed_events_are_skipped_idempotently() {
        let mut h = herder();
        let mut ix = Indexer::attach(&mut h);
        close_payment(&mut h, 0, 1, 1, 500);
        ix.ingest(&mut h);
        let before = ix.account_history(acct(0), None, 10).unwrap();
        // A recovering herder may re-emit archived closes.
        ix.apply_close(&ev(2, Vec::new()), &h.archive);
        assert_eq!(ix.registry.counter("ingest.replay_skipped"), 1);
        assert_eq!(ix.account_history(acct(0), None, 10).unwrap(), before);
        assert_eq!(ix.ingested_seq(), 2);
    }

    #[test]
    fn feed_overflow_gap_is_backfilled_from_archive() {
        let mut h = herder();
        let mut ix = Indexer::attach(&mut h);
        // Shrink the feed to one event: two of the three closes drop.
        h.enable_ingest(1);
        close_payment(&mut h, 0, 1, 1, 10);
        close_payment(&mut h, 0, 1, 2, 20);
        close_payment(&mut h, 0, 1, 3, 30);
        assert_eq!(h.ingest_dropped, 2);
        ix.ingest(&mut h);
        assert_eq!(ix.ingested_seq(), h.header.ledger_seq);
        assert_eq!(ix.registry.counter("ingest.gap_backfilled"), 2);
        // History is complete — the gap came back from the archive,
        // without outcomes (archives prove application, not results).
        let rows = ix.account_history(acct(1), None, 10).unwrap().records;
        assert_eq!(
            rows.iter().map(|r| r.ledger_seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(rows[0].outcome.is_none() && rows[1].outcome.is_none());
        assert!(rows[2].outcome.is_some());
    }

    #[test]
    fn restarted_indexer_backfills_history() {
        let mut h = herder();
        // Two ledgers close before any indexer exists.
        close_payment(&mut h, 0, 1, 1, 10);
        close_payment(&mut h, 1, 2, 1, 20);
        // Attach mid-stream (models a horizon restart) and backfill.
        let mut ix = Indexer::attach(&mut h);
        ix.backfill_history(&h.archive);
        let rows = ix.account_history(acct(1), None, 10).unwrap().records;
        assert_eq!(
            rows.iter().map(|r| r.ledger_seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(rows.iter().all(|r| r.outcome.is_none()));
        // Live ingestion continues seamlessly after the backfill.
        close_payment(&mut h, 0, 1, 2, 30);
        ix.ingest(&mut h);
        let rows = ix.account_history(acct(1), None, 10).unwrap().records;
        assert_eq!(rows.len(), 3);
        assert!(rows[2].outcome.is_some());
    }

    #[test]
    fn trades_derive_from_offer_transitions() {
        let mut h = herder();
        let mut ix = Indexer::attach(&mut h);
        let usd = Asset::issued(acct(2), "USD");
        // Ledger 2: an offer appears — not a trade.
        ix.apply_close(
            &ev(
                2,
                vec![(LedgerKey::Offer(7), Some(LedgerEntry::Offer(offer(7, 100))))],
            ),
            &h.archive,
        );
        // Ledger 3: its amount drops with no ManageOffer targeting it —
        // a partial fill of 60.
        ix.apply_close(
            &ev(
                3,
                vec![(LedgerKey::Offer(7), Some(LedgerEntry::Offer(offer(7, 40))))],
            ),
            &h.archive,
        );
        // Ledger 4: it disappears — the remaining 40 filled.
        ix.apply_close(&ev(4, vec![(LedgerKey::Offer(7), None)]), &h.archive);
        let trades = ix.trades(&usd, &Asset::Native, None, 10).unwrap().records;
        assert_eq!(
            trades
                .iter()
                .map(|t| (t.ledger_seq, t.amount))
                .collect::<Vec<_>>(),
            vec![(3, 60), (4, 40)]
        );
        assert!(trades
            .iter()
            .all(|t| t.offer_id == 7 && t.seller == acct(0)));

        // A deletion explicitly targeted by a ManageOffer op is a maker
        // cancel, not a fill.
        ix.apply_close(
            &ev(
                5,
                vec![(LedgerKey::Offer(8), Some(LedgerEntry::Offer(offer(8, 50))))],
            ),
            &h.archive,
        );
        let cancel = TransactionEnvelope::sign(
            Transaction {
                source: acct(0),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::ManageOffer {
                        offer_id: 8,
                        selling: usd.clone(),
                        buying: Asset::Native,
                        amount: 0,
                        price: stellar_ledger::amount::Price::new(2, 1),
                        passive: false,
                    },
                }],
            },
            &[&keys(0)],
        );
        let mut cancel_ev = ev(6, vec![(LedgerKey::Offer(8), None)]);
        cancel_ev.txs = vec![cancel];
        cancel_ev.results = vec![TxResult::Success {
            fee_charged: BASE_FEE,
        }];
        ix.apply_close(&cancel_ev, &h.archive);
        let trades = ix.trades(&usd, &Asset::Native, None, 10).unwrap().records;
        assert_eq!(trades.len(), 2, "a cancel is not a fill");
    }

    #[test]
    fn participants_cover_sources_and_counterparties() {
        let env = TransactionEnvelope::sign(
            Transaction {
                source: acct(0),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![
                    SourcedOperation {
                        source: Some(acct(1)),
                        op: Operation::Payment {
                            destination: acct(2),
                            asset: Asset::Native,
                            amount: 1,
                        },
                    },
                    SourcedOperation {
                        source: None,
                        op: Operation::BumpSequence { bump_to: 5 },
                    },
                ],
            },
            &[&keys(0), &keys(1)],
        );
        let mut want = vec![acct(0), acct(1), acct(2)];
        want.sort_unstable();
        assert_eq!(participants(&env), want);
    }
}

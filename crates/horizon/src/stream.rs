//! Streaming subscriptions: per-ledger deltas to cursor-anchored
//! subscribers.
//!
//! Production horizon serves `.../stream` endpoints via server-sent
//! events; this reproduction models the same contract in-process. A
//! subscriber registers a [`Topic`] (an account's balances, one order
//! book's deltas, or transaction statuses) and polls with the standard
//! [`Page`] cursor. Events are buffered per subscriber with a hard
//! bound; a consumer that falls behind is **evicted** — its next poll
//! gets [`HorizonError::Staleness`] with the cursor to resume from, and
//! it re-reads what it missed from the indexer's materialized tables.
//! That keeps one slow client from holding memory hostage (the same
//! congestion-collapse defense as admission control, applied to reads).

use crate::api::{HorizonError, Page};
use std::collections::{BTreeMap, VecDeque};
use stellar_crypto::Hash256;
use stellar_herder::CloseEvent;
use stellar_ledger::amount::Price;
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::{AccountId, LedgerEntry, LedgerKey};
use stellar_ledger::tx::TxResult;
use stellar_telemetry::Registry;

/// Default per-subscriber buffer bound (events).
pub const DEFAULT_BUFFER: usize = 256;

/// What a subscriber wants to hear about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topic {
    /// Balance changes (native + trustlines) of one account.
    Account(AccountId),
    /// Resting-offer deltas on one order-book side.
    OrderBook {
        /// Asset the makers sell.
        selling: Asset,
        /// Asset the makers buy.
        buying: Asset,
    },
    /// Status of every transaction applied, per ledger.
    TxStatus,
}

/// One streamed delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// An account's balance in `asset` changed (or appeared).
    Balance {
        /// Ledger the change landed in.
        ledger_seq: u64,
        /// The account.
        account: AccountId,
        /// The asset (`Asset::Native` for XLM).
        asset: Asset,
        /// The post-close balance.
        balance: i64,
    },
    /// The account was merged away.
    AccountRemoved {
        /// Ledger of the merge.
        ledger_seq: u64,
        /// The removed account.
        account: AccountId,
    },
    /// A resting offer was created or updated on the subscribed book.
    OfferPut {
        /// Ledger of the change.
        ledger_seq: u64,
        /// The offer id.
        offer_id: u64,
        /// The maker.
        seller: AccountId,
        /// Price of the resting offer.
        price: Price,
        /// Remaining amount of the selling asset.
        amount: i64,
    },
    /// A resting offer left the subscribed book (filled or canceled).
    OfferRemoved {
        /// Ledger of the change.
        ledger_seq: u64,
        /// The offer id.
        offer_id: u64,
    },
    /// One applied transaction's status.
    TxStatus {
        /// Ledger the transaction was applied in.
        ledger_seq: u64,
        /// The transaction's content hash.
        tx_hash: Hash256,
        /// Whether all its operations succeeded.
        success: bool,
        /// Fee charged (stroops).
        fee_charged: i64,
    },
}

struct Subscriber {
    topic: Topic,
    /// Undelivered events, tagged with this subscription's own strictly
    /// increasing cursor.
    buf: VecDeque<(u64, StreamEvent)>,
    /// Cursor the next published event will get.
    next_cursor: u64,
    /// Set when the subscriber was evicted for falling behind: the
    /// cursor to resume from, surfaced once as `Staleness`.
    evicted_resume: Option<u64>,
}

/// The fan-out hub: subscriptions, bounded buffers, eviction.
pub struct SubscriptionHub {
    subs: BTreeMap<u64, Subscriber>,
    next_id: u64,
    buffer: usize,
    /// Offer id → book side, learned from puts — deletions carry only
    /// the id, so routing them to the right book needs this map. Offers
    /// resting before the hub attached are unknown and their removal is
    /// counted, not routed.
    offer_books: BTreeMap<u64, (Asset, Asset)>,
    /// `stream.*` counters.
    pub registry: Registry,
}

impl SubscriptionHub {
    /// A hub bounding each subscriber at `buffer` pending events.
    pub fn new(buffer: usize) -> SubscriptionHub {
        SubscriptionHub {
            subs: BTreeMap::new(),
            next_id: 1,
            buffer: buffer.max(1),
            offer_books: BTreeMap::new(),
            registry: Registry::new(),
        }
    }

    /// Registers a subscription; the returned id is the poll handle.
    pub fn subscribe(&mut self, topic: Topic) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.subs.insert(
            id,
            Subscriber {
                topic,
                buf: VecDeque::new(),
                next_cursor: 0,
                evicted_resume: None,
            },
        );
        self.registry.inc("stream.subscribed");
        self.registry
            .set_gauge("stream.subscribers", self.subs.len() as i64);
        id
    }

    /// Drops a subscription. Returns whether it existed.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        let existed = self.subs.remove(&id).is_some();
        self.registry
            .set_gauge("stream.subscribers", self.subs.len() as i64);
        existed
    }

    /// Live subscription count.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Fans one close event out to every matching subscriber. A
    /// subscriber whose buffer would overflow is evicted instead of
    /// growing without bound.
    pub fn publish(&mut self, ev: &CloseEvent) {
        let seq = ev.ledger_seq;
        // Derive the per-topic event streams once, then route.
        let mut account_events: Vec<(AccountId, StreamEvent)> = Vec::new();
        let mut book_events: Vec<((Asset, Asset), StreamEvent)> = Vec::new();
        for (key, entry) in &ev.changes {
            match (key, entry) {
                (LedgerKey::Account(id), Some(LedgerEntry::Account(a))) => {
                    account_events.push((
                        *id,
                        StreamEvent::Balance {
                            ledger_seq: seq,
                            account: *id,
                            asset: Asset::Native,
                            balance: a.balance,
                        },
                    ));
                }
                (LedgerKey::Account(id), None) => {
                    account_events.push((
                        *id,
                        StreamEvent::AccountRemoved {
                            ledger_seq: seq,
                            account: *id,
                        },
                    ));
                }
                (LedgerKey::TrustLine(id, asset), Some(LedgerEntry::TrustLine(t))) => {
                    account_events.push((
                        *id,
                        StreamEvent::Balance {
                            ledger_seq: seq,
                            account: *id,
                            asset: asset.clone(),
                            balance: t.balance,
                        },
                    ));
                }
                (LedgerKey::Offer(id), Some(LedgerEntry::Offer(o))) => {
                    let book = (o.selling.clone(), o.buying.clone());
                    self.offer_books.insert(*id, book.clone());
                    book_events.push((
                        book,
                        StreamEvent::OfferPut {
                            ledger_seq: seq,
                            offer_id: *id,
                            seller: o.account,
                            price: o.price,
                            amount: o.amount,
                        },
                    ));
                }
                (LedgerKey::Offer(id), None) => match self.offer_books.remove(id) {
                    Some(book) => book_events.push((
                        book,
                        StreamEvent::OfferRemoved {
                            ledger_seq: seq,
                            offer_id: *id,
                        },
                    )),
                    None => self.registry.inc("stream.unknown_offer_removal"),
                },
                _ => {}
            }
        }
        let tx_events: Vec<StreamEvent> = ev
            .txs
            .iter()
            .zip(&ev.results)
            .map(|(env, r)| {
                let (success, fee_charged) = match r {
                    TxResult::Success { fee_charged } => (true, *fee_charged),
                    TxResult::Failed { fee_charged, .. } => (false, *fee_charged),
                    TxResult::Invalid(_) => (false, 0),
                };
                StreamEvent::TxStatus {
                    ledger_seq: seq,
                    tx_hash: env.hash(),
                    success,
                    fee_charged,
                }
            })
            .collect();

        let buffer = self.buffer;
        let mut published = 0u64;
        let mut evictions = 0u64;
        for sub in self.subs.values_mut() {
            if sub.evicted_resume.is_some() {
                continue; // already evicted; waiting for the client to re-anchor
            }
            let events: Vec<&StreamEvent> = match &sub.topic {
                Topic::Account(id) => account_events
                    .iter()
                    .filter(|(a, _)| a == id)
                    .map(|(_, e)| e)
                    .collect(),
                Topic::OrderBook { selling, buying } => book_events
                    .iter()
                    .filter(|((s, b), _)| s == selling && b == buying)
                    .map(|(_, e)| e)
                    .collect(),
                Topic::TxStatus => tx_events.iter().collect(),
            };
            for e in events {
                if sub.buf.len() >= buffer {
                    // Slow consumer: evict rather than buffer without
                    // bound. The resume cursor is where its window ends.
                    sub.evicted_resume = Some(sub.next_cursor);
                    sub.buf.clear();
                    evictions += 1;
                    break;
                }
                sub.buf.push_back((sub.next_cursor, e.clone()));
                sub.next_cursor += 1;
                published += 1;
            }
        }
        self.registry.add("stream.events", published);
        self.registry.add("stream.evictions", evictions);
        self.registry.inc("stream.ledgers");
    }

    /// Polls a subscription. `cursor = None` reads from the oldest
    /// buffered event; otherwise events before `cursor` are acknowledged
    /// and dropped. The returned page's cursor is always `Some` (streams
    /// never terminate): an empty page returns the caller's own anchor,
    /// stable across repeated polls until new events arrive.
    ///
    /// Errors: an unknown id is `NotFound`; an evicted subscriber (or a
    /// cursor pointing before the buffered window) gets `Staleness` with
    /// the resume cursor — re-poll from there after catching up via the
    /// indexer.
    pub fn poll(
        &mut self,
        id: u64,
        cursor: Option<u64>,
        limit: usize,
    ) -> Result<Page<StreamEvent>, HorizonError> {
        crate::api::check_limit(limit)?;
        let sub = self.subs.get_mut(&id).ok_or(HorizonError::NotFound)?;
        if let Some(resume) = sub.evicted_resume.take() {
            self.registry.inc("stream.stale_polls");
            return Err(HorizonError::Staleness { resume });
        }
        let oldest = sub.buf.front().map(|(c, _)| *c).unwrap_or(sub.next_cursor);
        let anchor = cursor.unwrap_or(oldest).min(sub.next_cursor);
        if anchor < oldest {
            self.registry.inc("stream.stale_polls");
            return Err(HorizonError::Staleness { resume: oldest });
        }
        // Acknowledge everything before the anchor.
        while sub.buf.front().is_some_and(|(c, _)| *c < anchor) {
            sub.buf.pop_front();
        }
        let records: Vec<StreamEvent> =
            sub.buf.iter().take(limit).map(|(_, e)| e.clone()).collect();
        let next = anchor + records.len() as u64;
        self.registry.add("stream.delivered", records.len() as u64);
        Ok(Page {
            records,
            cursor: Some(next),
            limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::KeyPair;
    use stellar_ledger::entry::{AccountEntry, OfferEntry};

    fn acct(n: u64) -> AccountId {
        AccountId(KeyPair::from_seed(600 + n).public())
    }

    fn ev(seq: u64, changes: Vec<(LedgerKey, Option<LedgerEntry>)>) -> CloseEvent {
        CloseEvent {
            ledger_seq: seq,
            close_time: seq * 5,
            txs: Vec::new(),
            results: Vec::new(),
            changes,
        }
    }

    fn balance_change(n: u64, balance: i64) -> (LedgerKey, Option<LedgerEntry>) {
        (
            LedgerKey::Account(acct(n)),
            Some(LedgerEntry::Account(AccountEntry::new(acct(n), balance))),
        )
    }

    fn offer(id: u64, amount: i64) -> OfferEntry {
        OfferEntry {
            id,
            account: acct(0),
            selling: Asset::issued(acct(9), "USD"),
            buying: Asset::Native,
            amount,
            price: Price::new(2, 1),
            passive: false,
        }
    }

    #[test]
    fn account_topic_delivers_only_matching_balances() {
        let mut hub = SubscriptionHub::new(DEFAULT_BUFFER);
        let sub = hub.subscribe(Topic::Account(acct(1)));
        hub.publish(&ev(2, vec![balance_change(1, 500), balance_change(2, 900)]));
        let page = hub.poll(sub, None, 10).unwrap();
        assert_eq!(
            page.records,
            vec![StreamEvent::Balance {
                ledger_seq: 2,
                account: acct(1),
                asset: Asset::Native,
                balance: 500,
            }]
        );
        // Streams never terminate: the cursor is the stable next anchor.
        assert_eq!(page.cursor, Some(1));
        // An empty poll repeats the same anchor until new events arrive.
        let empty = hub.poll(sub, page.cursor, 10).unwrap();
        assert!(empty.records.is_empty());
        assert_eq!(empty.cursor, Some(1));
        hub.publish(&ev(3, vec![(LedgerKey::Account(acct(1)), None)]));
        let next = hub.poll(sub, empty.cursor, 10).unwrap();
        assert_eq!(
            next.records,
            vec![StreamEvent::AccountRemoved {
                ledger_seq: 3,
                account: acct(1),
            }]
        );
        assert_eq!(next.cursor, Some(2));
    }

    #[test]
    fn order_book_topic_routes_puts_and_deletions() {
        let mut hub = SubscriptionHub::new(DEFAULT_BUFFER);
        let usd = Asset::issued(acct(9), "USD");
        let sub = hub.subscribe(Topic::OrderBook {
            selling: usd.clone(),
            buying: Asset::Native,
        });
        hub.publish(&ev(
            2,
            vec![(LedgerKey::Offer(7), Some(LedgerEntry::Offer(offer(7, 100))))],
        ));
        // The deletion carries only the id; the hub routes it from the
        // book learned at put time.
        hub.publish(&ev(3, vec![(LedgerKey::Offer(7), None)]));
        // Deleting an offer the hub never saw is counted, not routed.
        hub.publish(&ev(4, vec![(LedgerKey::Offer(8), None)]));
        let page = hub.poll(sub, None, 10).unwrap();
        assert_eq!(page.records.len(), 2);
        assert!(matches!(
            page.records[0],
            StreamEvent::OfferPut {
                offer_id: 7,
                amount: 100,
                ..
            }
        ));
        assert_eq!(
            page.records[1],
            StreamEvent::OfferRemoved {
                ledger_seq: 3,
                offer_id: 7,
            }
        );
        assert_eq!(hub.registry.counter("stream.unknown_offer_removal"), 1);
    }

    #[test]
    fn slow_consumer_is_evicted_and_told_where_to_resume() {
        let mut hub = SubscriptionHub::new(2);
        let sub = hub.subscribe(Topic::Account(acct(1)));
        hub.publish(&ev(2, vec![balance_change(1, 10)]));
        hub.publish(&ev(3, vec![balance_change(1, 20)]));
        // Third undrained event overflows the bound: evict.
        hub.publish(&ev(4, vec![balance_change(1, 30)]));
        let err = hub.poll(sub, None, 10).unwrap_err();
        assert_eq!(err, HorizonError::Staleness { resume: 2 });
        // Staleness is surfaced once; after re-anchoring, the stream is
        // live again from the resume cursor.
        let page = hub.poll(sub, Some(2), 10).unwrap();
        assert!(page.records.is_empty());
        assert_eq!(page.cursor, Some(2));
        hub.publish(&ev(5, vec![balance_change(1, 40)]));
        let page = hub.poll(sub, Some(2), 10).unwrap();
        assert_eq!(page.records.len(), 1);
        assert_eq!(hub.registry.counter("stream.evictions"), 1);
    }

    #[test]
    fn cursor_before_the_window_is_stale() {
        let mut hub = SubscriptionHub::new(DEFAULT_BUFFER);
        let sub = hub.subscribe(Topic::Account(acct(1)));
        hub.publish(&ev(2, vec![balance_change(1, 10)]));
        hub.publish(&ev(3, vec![balance_change(1, 20)]));
        // Acknowledge the first event...
        let page = hub.poll(sub, Some(1), 10).unwrap();
        assert_eq!(page.records.len(), 1);
        // ...then ask for it again: the window has moved on.
        assert_eq!(
            hub.poll(sub, Some(0), 10),
            Err(HorizonError::Staleness { resume: 1 })
        );
    }

    #[test]
    fn poll_rejects_bad_requests() {
        let mut hub = SubscriptionHub::new(DEFAULT_BUFFER);
        assert_eq!(hub.poll(99, None, 10), Err(HorizonError::NotFound));
        let sub = hub.subscribe(Topic::TxStatus);
        assert_eq!(
            hub.poll(sub, None, 0),
            Err(HorizonError::Malformed {
                reason: "limit must be positive"
            })
        );
        assert!(hub.unsubscribe(sub));
        assert!(!hub.unsubscribe(sub));
        assert!(hub.is_empty());
    }
}

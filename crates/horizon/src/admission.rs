//! Admission control: the submit front door.
//!
//! "Is Stellar As Secure As You Think?" documents congestion collapse
//! when submission load reaches consensus unchecked. This module sheds
//! load *before* it costs anything real: a token bucket per source
//! account (burst-tolerant fairness), a global pending-transaction
//! limit (backpressure from the herder's bounded queue), and typed
//! [`HorizonError::RateLimited`] errors carrying a concrete
//! `retry_after_ms`, so well-behaved clients back off instead of
//! hammering. All arithmetic is integer and driven by the caller's
//! clock — deterministic under the simulator.

use crate::api::HorizonError;
use std::collections::BTreeMap;
use stellar_ledger::entry::AccountId;
use stellar_telemetry::Registry;

/// Tuning for [`AdmissionControl`].
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Token-bucket burst size per source account (transactions).
    pub bucket_capacity: u32,
    /// Steady-state refill per source (transactions per second).
    pub refill_per_sec: u32,
    /// Hard bound installed on the herder's tx queue (its
    /// [`QueueFull`](stellar_herder::queue::QueueError::QueueFull)
    /// refusal is the last-resort backpressure).
    pub queue_capacity: usize,
    /// Global admission limit: shed when the queue holds this many
    /// pending transactions (set below `queue_capacity` so shedding
    /// normally happens here, cheaply, before signature checks).
    pub max_pending: usize,
    /// Backoff suggested when the global limit sheds.
    pub retry_after_ms: u64,
    /// Bound on the per-source bucket table (millions of clients must
    /// not grow memory without bound; idle full buckets are recycled).
    pub max_sources: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            bucket_capacity: 8,
            refill_per_sec: 2,
            queue_capacity: 10_000,
            max_pending: 8_000,
            retry_after_ms: 1_000,
            max_sources: 1 << 16,
        }
    }
}

/// Milli-token bucket: refill math stays exact in integers
/// (`refill_per_sec` tokens/s ≡ `refill_per_sec` milli-tokens/ms).
#[derive(Clone, Copy, Debug)]
struct Bucket {
    milli_tokens: u64,
    last_ms: u64,
}

/// Per-source token buckets + global pending limit.
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    buckets: BTreeMap<AccountId, Bucket>,
    /// `admission.*` counters.
    pub registry: Registry,
}

impl AdmissionControl {
    /// A controller with the given tuning.
    pub fn new(cfg: AdmissionConfig) -> AdmissionControl {
        AdmissionControl {
            cfg,
            buckets: BTreeMap::new(),
            registry: Registry::new(),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Decides one submission. `queue_len` is the validator's current
    /// pending-queue depth (the global congestion signal); `now_ms`
    /// drives bucket refill. `Ok(())` means the transaction may proceed
    /// to signature checks and the queue.
    pub fn admit(
        &mut self,
        source: AccountId,
        now_ms: u64,
        queue_len: usize,
    ) -> Result<(), HorizonError> {
        // Global limiter first: under collapse-grade load, shed without
        // touching per-source state at all.
        if queue_len >= self.cfg.max_pending {
            self.registry.inc("admission.shed_global");
            return Err(HorizonError::RateLimited {
                retry_after_ms: self.cfg.retry_after_ms,
            });
        }
        let full = u64::from(self.cfg.bucket_capacity) * 1000;
        let refill = u64::from(self.cfg.refill_per_sec.max(1));
        if self.buckets.len() >= self.cfg.max_sources && !self.buckets.contains_key(&source) {
            // Recycle buckets that have refilled to full — they carry no
            // information a fresh bucket wouldn't. Deterministic: depends
            // only on bucket state and the caller's clock.
            self.buckets
                .retain(|_, b| b.milli_tokens + now_ms.saturating_sub(b.last_ms) * refill < full);
            self.registry.inc("admission.table_recycles");
            if self.buckets.len() >= self.cfg.max_sources {
                self.registry.inc("admission.shed_table_full");
                return Err(HorizonError::RateLimited {
                    retry_after_ms: self.cfg.retry_after_ms,
                });
            }
        }
        let b = self.buckets.entry(source).or_insert(Bucket {
            milli_tokens: full,
            last_ms: now_ms,
        });
        let elapsed = now_ms.saturating_sub(b.last_ms);
        b.milli_tokens = (b.milli_tokens + elapsed * refill).min(full);
        b.last_ms = now_ms;
        if b.milli_tokens >= 1000 {
            b.milli_tokens -= 1000;
            self.registry.inc("admission.admitted");
            Ok(())
        } else {
            // Exactly when the next whole token accrues.
            let retry_after_ms = (1000 - b.milli_tokens).div_ceil(refill).max(1);
            self.registry.inc("admission.shed_source");
            Err(HorizonError::RateLimited { retry_after_ms })
        }
    }

    /// Sources currently holding a bucket.
    pub fn tracked_sources(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::KeyPair;

    fn acct(n: u64) -> AccountId {
        AccountId(KeyPair::from_seed(700 + n).public())
    }

    #[test]
    fn bucket_allows_burst_then_refills() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            bucket_capacity: 2,
            refill_per_sec: 1,
            ..AdmissionConfig::default()
        });
        assert!(ac.admit(acct(0), 0, 0).is_ok());
        assert!(ac.admit(acct(0), 0, 0).is_ok());
        let HorizonError::RateLimited { retry_after_ms } = ac.admit(acct(0), 0, 0).unwrap_err()
        else {
            panic!("expected RateLimited");
        };
        // Empty bucket at 1 token/s: exactly one second to the next token.
        assert_eq!(retry_after_ms, 1000);
        // Following the suggested backoff precisely is enough.
        assert!(ac.admit(acct(0), retry_after_ms, 0).is_ok());
        assert!(ac.admit(acct(0), retry_after_ms, 0).is_err());
        // An unrelated source is unaffected.
        assert!(ac.admit(acct(1), 0, 0).is_ok());
    }

    #[test]
    fn retry_after_is_exact_for_sub_second_refills() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            bucket_capacity: 1,
            refill_per_sec: 4, // 250ms per token
            ..AdmissionConfig::default()
        });
        assert!(ac.admit(acct(0), 0, 0).is_ok());
        let HorizonError::RateLimited { retry_after_ms } = ac.admit(acct(0), 0, 0).unwrap_err()
        else {
            panic!("expected RateLimited");
        };
        assert_eq!(retry_after_ms, 250);
        assert!(ac.admit(acct(0), 249, 0).is_err());
        assert!(ac.admit(acct(0), 250, 0).is_ok());
    }

    #[test]
    fn global_limit_sheds_before_touching_buckets() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            max_pending: 10,
            retry_after_ms: 77,
            ..AdmissionConfig::default()
        });
        assert_eq!(
            ac.admit(acct(1), 0, 10),
            Err(HorizonError::RateLimited { retry_after_ms: 77 })
        );
        // Global shedding allocates no per-source state at all.
        assert_eq!(ac.tracked_sources(), 0);
        assert!(ac.admit(acct(1), 0, 9).is_ok());
        assert_eq!(ac.tracked_sources(), 1);
    }

    #[test]
    fn full_table_recycles_refilled_buckets() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            bucket_capacity: 1,
            refill_per_sec: 1,
            max_sources: 2,
            ..AdmissionConfig::default()
        });
        assert!(ac.admit(acct(0), 0, 0).is_ok());
        assert!(ac.admit(acct(1), 0, 0).is_ok());
        assert_eq!(ac.tracked_sources(), 2);
        // Table full, existing buckets still draining: newcomer is shed.
        assert!(ac.admit(acct(2), 500, 0).is_err());
        // Once the old buckets have refilled to full they carry no
        // information a fresh bucket wouldn't, so they are recycled.
        assert!(ac.admit(acct(2), 1000, 0).is_ok());
        assert_eq!(ac.tracked_sources(), 1);
    }
}

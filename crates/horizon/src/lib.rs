//! The client-facing layer around `stellar-core` (paper §5.4, Fig. 5).
//!
//! "To keep stellar-core simple, it is not intended to be used directly by
//! applications … most validators run a daemon called horizon that
//! provides an HTTP interface for submitting and learning of
//! transactions." Production horizon is ~18k lines of Go speaking HTTP;
//! this reproduction provides the same *capabilities* as an in-process
//! API (the transport is out of scope — documented in `DESIGN.md`):
//!
//! * [`api`] — horizon proper: account/trustline queries, order-book
//!   views, payment-path finding ("features such as payment path finding
//!   are implemented entirely in horizon"), transaction submission and
//!   history lookup — all read-only against the herder's state, never
//!   destabilizing the core.
//! * [`ingest`] — the ingestion indexer: materializes per-account
//!   history, trades, and effects at every ledger close, so queries are
//!   index walks instead of state scans.
//! * [`stream`] — cursor-anchored streaming subscriptions (account
//!   balances, order-book deltas, transaction status per ledger) with
//!   bounded buffers and slow-consumer eviction.
//! * [`admission`] — the submit front door: per-source token buckets, a
//!   global pending limit, and typed retry-after load shedding.
//! * [`bridge`] — the bridge server: "posting notifications of all
//!   payments received by a specific account."
//! * [`compliance`] — the compliance server: "hooks for financial
//!   institutions to exchange and approve of sender and beneficiary
//!   information on payments, for compliance with sanctions lists."
//! * [`federation`] — the federation server: "a human-readable naming
//!   system for accounts" (`alice*example.org` → account id).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod bridge;
pub mod compliance;
pub mod federation;
pub mod ingest;
pub mod stream;

pub use admission::{AdmissionConfig, AdmissionControl};
pub use api::{
    AccountInfo, FeeStats, Horizon, HorizonError, HorizonPipeline, Page, SubmitResult, TxRecord,
};
pub use bridge::{BridgeServer, PaymentNotification};
pub use compliance::{ComplianceDecision, ComplianceServer};
pub use federation::FederationServer;
pub use ingest::{EffectRow, HistoryRow, Indexer, TradeRow};
pub use stream::{StreamEvent, SubscriptionHub, Topic};

//! A deterministic simulated durable store.
//!
//! stellar-core persists its latest SCP messages and ledger state to disk
//! *before* emitting them, so that a rebooted validator cannot forget votes
//! it already cast and equivocate (paper §3, §5.4). This crate models the
//! node-local disk that discipline writes to: a key→record map with explicit
//! `write`/`sync` semantics and injectable crash faults.
//!
//! The fault model mirrors what real disks do to naive code:
//!
//! * **Lost unsynced writes** — `write` only stages a record; a `crash`
//!   before `sync` drops everything staged. Only synced records survive.
//! * **Failed fsyncs** — `fail_next_fsyncs(n)` makes the next `n` calls to
//!   `sync` return `false` while leaving the staged records pending, like
//!   an EIO from fsync. Callers must not act (emit messages) on state they
//!   could not make durable.
//! * **Torn records** — `tear_next_crash()` makes the next `crash` commit a
//!   strict prefix of the oldest staged record in place of the key's old
//!   value, modelling a crash mid-overwrite. Torn records never
//!   deserialize: every record is framed with a length prefix and a
//!   trailing SHA-256, so `read` reports them as absent.
//!
//! Everything is in-memory and deterministic — no real I/O — so simulation
//! runs stay byte-for-byte reproducible.

use std::collections::BTreeMap;
use stellar_crypto::sha256::sha256;

/// Bytes of framing overhead added to each record: an 8-byte big-endian
/// payload length plus a 32-byte SHA-256 of the payload.
pub const FRAME_OVERHEAD: usize = 8 + 32;

/// Frames a payload for durable storage: `len(u64 BE) ‖ payload ‖ sha256(payload)`.
///
/// The trailing hash means a record is only readable if the *entire* frame
/// made it to disk: any strict prefix either truncates the payload (length
/// mismatch) or truncates/corrupts the hash.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(sha256(payload).as_bytes());
    out
}

/// Recovers the payload from a framed record, or `None` if the record is
/// torn, truncated, or corrupt. No strict prefix of a valid frame unframes
/// successfully (the embedded length pins the exact frame size).
pub fn unframe(record: &[u8]) -> Option<Vec<u8>> {
    if record.len() < FRAME_OVERHEAD {
        return None;
    }
    let len = u64::from_be_bytes(record[..8].try_into().ok()?) as usize;
    if record.len() != FRAME_OVERHEAD + len {
        return None;
    }
    let payload = &record[8..8 + len];
    let digest = &record[8 + len..];
    if sha256(payload).as_bytes() != digest {
        return None;
    }
    Some(payload.to_vec())
}

/// Counters describing a store's lifetime I/O, for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Framed bytes accepted by `write` (whether or not later synced).
    pub bytes_written: u64,
    /// Framed bytes made durable by successful `sync` calls.
    pub bytes_synced: u64,
    /// Successful `sync` calls.
    pub syncs: u64,
    /// `sync` calls failed by fault injection.
    pub failed_syncs: u64,
    /// `crash` calls observed.
    pub crashes: u64,
    /// Staged records dropped by crashes (lost unsynced writes).
    pub lost_writes: u64,
    /// Records committed torn (as an unreadable prefix) by crashes.
    pub torn_writes: u64,
}

/// The simulated durable store: a key→framed-record map plus a staging
/// area of unsynced writes.
///
/// A disabled store (persistence off) accepts and immediately discards all
/// writes — the configuration the amnesia chaos scenarios run under.
#[derive(Clone, Debug)]
pub struct DurableStore {
    enabled: bool,
    durable: BTreeMap<String, Vec<u8>>,
    /// Unsynced writes in write order. A later write to the same key
    /// shadows the earlier one at sync time (last write wins). `None`
    /// stages a deletion (file unlink), applied at the same sync.
    pending: Vec<(String, Option<Vec<u8>>)>,
    fail_next_fsyncs: u32,
    tear_next_crash: bool,
    stats: PersistStats,
}

impl Default for DurableStore {
    fn default() -> Self {
        DurableStore::new()
    }
}

impl DurableStore {
    /// A fresh, enabled store.
    pub fn new() -> DurableStore {
        DurableStore {
            enabled: true,
            durable: BTreeMap::new(),
            pending: Vec::new(),
            fail_next_fsyncs: 0,
            tear_next_crash: false,
            stats: PersistStats::default(),
        }
    }

    /// A store with persistence disabled: writes vanish, reads find nothing.
    pub fn disabled() -> DurableStore {
        let mut s = DurableStore::new();
        s.enabled = false;
        s
    }

    /// Whether persistence is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns persistence on or off. Turning it off drops staged writes.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.pending.clear();
        }
    }

    /// Stages a record for `key`. Nothing is durable until `sync` succeeds.
    pub fn write(&mut self, key: &str, payload: &[u8]) {
        if !self.enabled {
            return;
        }
        let rec = frame(payload);
        self.stats.bytes_written += rec.len() as u64;
        self.pending.push((key.to_string(), Some(rec)));
    }

    /// Stages a deletion of `key` (segment reclamation after compaction).
    /// Like `write`, nothing happens until `sync` succeeds.
    pub fn remove(&mut self, key: &str) {
        if !self.enabled {
            return;
        }
        self.pending.push((key.to_string(), None));
    }

    /// Flushes staged writes to durable storage. Returns `false` (leaving
    /// the writes staged) while fsync-failure faults are armed; callers
    /// must treat `false` as "this state is NOT on disk yet".
    pub fn sync(&mut self) -> bool {
        if !self.enabled {
            return true;
        }
        if self.fail_next_fsyncs > 0 {
            self.fail_next_fsyncs -= 1;
            self.stats.failed_syncs += 1;
            return false;
        }
        for (key, slot) in self.pending.drain(..) {
            match slot {
                Some(rec) => {
                    self.stats.bytes_synced += rec.len() as u64;
                    self.durable.insert(key, rec);
                }
                None => {
                    self.durable.remove(&key);
                }
            }
        }
        self.stats.syncs += 1;
        true
    }

    /// Simulates a process crash: staged (unsynced) writes are lost. If a
    /// torn-write fault is armed, the oldest staged record is instead
    /// committed as a strict prefix — overwriting the key's previous value
    /// with garbage, as a crash mid-overwrite would.
    pub fn crash(&mut self) {
        self.stats.crashes += 1;
        if self.tear_next_crash {
            self.tear_next_crash = false;
            // The oldest staged *write* tears; staged deletions have no
            // bytes to half-apply.
            let oldest = self
                .pending
                .iter()
                .find_map(|(key, slot)| slot.as_ref().map(|rec| (key.clone(), rec.clone())));
            if let Some((key, rec)) = oldest {
                let cut = (rec.len() / 2).max(1).min(rec.len() - 1);
                self.durable.insert(key, rec[..cut].to_vec());
                self.stats.torn_writes += 1;
            }
        }
        self.stats.lost_writes += self.pending.len() as u64;
        self.pending.clear();
    }

    /// Reads the durable record for `key`, verifying its frame. Torn or
    /// corrupt records read as absent — recovery code falls back to the
    /// history archive, it never trusts a half-written snapshot.
    pub fn read(&self, key: &str) -> Option<Vec<u8>> {
        unframe(self.durable.get(key)?)
    }

    /// The raw framed record for `key`, including torn ones (for tests).
    pub fn raw(&self, key: &str) -> Option<&[u8]> {
        self.durable.get(key).map(Vec::as_slice)
    }

    /// Arms the next `n` calls to `sync` to fail.
    pub fn fail_next_fsyncs(&mut self, n: u32) {
        self.fail_next_fsyncs = n;
    }

    /// Arms the next `crash` to tear the oldest staged record.
    pub fn tear_next_crash(&mut self) {
        self.tear_next_crash = true;
    }

    /// Lifetime I/O counters.
    pub fn stats(&self) -> PersistStats {
        self.stats
    }

    /// Number of durable records (readable or torn).
    pub fn durable_len(&self) -> usize {
        self.durable.len()
    }

    /// Total bytes occupying durable storage (framed records).
    pub fn durable_bytes(&self) -> u64 {
        self.durable.values().map(|rec| rec.len() as u64).sum()
    }

    /// Number of staged, not-yet-synced writes.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_writes_survive_crash() {
        let mut s = DurableStore::new();
        s.write("lcl", b"header-1");
        assert!(s.sync());
        s.crash();
        assert_eq!(s.read("lcl").unwrap(), b"header-1");
    }

    #[test]
    fn unsynced_writes_are_lost_on_crash() {
        let mut s = DurableStore::new();
        s.write("lcl", b"header-1");
        assert!(s.sync());
        s.write("lcl", b"header-2");
        s.crash();
        assert_eq!(s.read("lcl").unwrap(), b"header-1");
        assert_eq!(s.stats().lost_writes, 1);
    }

    #[test]
    fn failed_fsync_keeps_writes_pending() {
        let mut s = DurableStore::new();
        s.fail_next_fsyncs(1);
        s.write("scp", b"snapshot");
        assert!(!s.sync());
        assert_eq!(s.read("scp"), None);
        assert_eq!(s.pending_len(), 1);
        assert!(s.sync(), "fault is consumed");
        assert_eq!(s.read("scp").unwrap(), b"snapshot");
    }

    #[test]
    fn torn_crash_commits_unreadable_prefix() {
        let mut s = DurableStore::new();
        s.write("scp", b"good snapshot");
        assert!(s.sync());
        s.write("scp", b"newer snapshot, much longer than the old one");
        s.tear_next_crash();
        s.crash();
        // The torn overwrite destroyed the old record and the new one
        // never fully landed: the key reads as absent.
        assert_eq!(s.read("scp"), None);
        assert!(s.raw("scp").is_some(), "garbage is on disk");
        assert_eq!(s.stats().torn_writes, 1);
    }

    #[test]
    fn last_write_wins_within_one_sync() {
        let mut s = DurableStore::new();
        s.write("k", b"a");
        s.write("k", b"b");
        assert!(s.sync());
        assert_eq!(s.read("k").unwrap(), b"b");
    }

    #[test]
    fn disabled_store_drops_everything() {
        let mut s = DurableStore::disabled();
        s.write("lcl", b"header");
        assert!(s.sync());
        assert_eq!(s.read("lcl"), None);
        assert_eq!(s.durable_len(), 0);
    }

    #[test]
    fn no_strict_prefix_of_a_frame_unframes() {
        let rec = frame(b"some payload bytes");
        assert_eq!(unframe(&rec).unwrap(), b"some payload bytes");
        for cut in 0..rec.len() {
            assert_eq!(unframe(&rec[..cut]), None, "prefix of len {cut}");
        }
    }

    #[test]
    fn staged_removal_applies_at_sync() {
        let mut s = DurableStore::new();
        s.write("seg/1", b"old segment");
        assert!(s.sync());
        s.remove("seg/1");
        s.write("seg/2", b"compacted segment");
        assert!(s.sync());
        assert_eq!(s.read("seg/1"), None);
        assert_eq!(s.durable_len(), 1);
        assert_eq!(s.read("seg/2").unwrap(), b"compacted segment");
    }

    #[test]
    fn unsynced_removal_is_lost_on_crash() {
        let mut s = DurableStore::new();
        s.write("seg/1", b"old segment");
        assert!(s.sync());
        s.remove("seg/1");
        s.crash();
        assert_eq!(s.read("seg/1").unwrap(), b"old segment");
    }

    #[test]
    fn durable_bytes_tracks_live_records() {
        let mut s = DurableStore::new();
        s.write("a", b"12345");
        assert!(s.sync());
        assert_eq!(s.durable_bytes(), 5 + FRAME_OVERHEAD as u64);
        s.remove("a");
        assert!(s.sync());
        assert_eq!(s.durable_bytes(), 0);
    }

    #[test]
    fn empty_payload_round_trips() {
        let rec = frame(b"");
        assert_eq!(unframe(&rec).unwrap(), Vec::<u8>::new());
    }
}

//! Link-latency models.
//!
//! One-way delays are sampled per message from a uniform band
//! `[base, base + jitter]`, seeded so runs are reproducible. Presets match
//! the environments the paper measures: same-region EC2 (§7.3, sub-ms
//! RTTs at 10 Gbps) and the public internet topology of §7.2 (tens of ms
//! between data centers).

use rand::Rng;

/// A one-way link-delay distribution.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Minimum one-way delay (ms).
    pub base_ms: u64,
    /// Additional uniform jitter (ms).
    pub jitter_ms: u64,
}

impl LatencyModel {
    /// Same-region EC2 (the §7.3 controlled experiments). Raw RTTs are
    /// sub-millisecond at 10 Gbps, but the effective per-message delay the
    /// paper measures includes container scheduling and processing; a
    /// 5–20 ms one-way band reproduces their latency scale.
    pub fn lan() -> LatencyModel {
        LatencyModel {
            base_ms: 5,
            jitter_ms: 15,
        }
    }

    /// Public-internet WAN (the §7.2 production network): ~30–110 ms.
    pub fn wan() -> LatencyModel {
        LatencyModel {
            base_ms: 30,
            jitter_ms: 80,
        }
    }

    /// Zero-delay (pure protocol-logic tests).
    pub fn instant() -> LatencyModel {
        LatencyModel {
            base_ms: 0,
            jitter_ms: 0,
        }
    }

    /// Samples a one-way delay in ms.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.jitter_ms == 0 {
            self.base_ms
        } else {
            self.base_ms + rng.gen_range(0..=self.jitter_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel {
            base_ms: 10,
            jitter_ms: 5,
        };
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!((10..=15).contains(&s));
        }
    }

    #[test]
    fn instant_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(LatencyModel::instant().sample(&mut rng), 0);
    }

    #[test]
    fn seeded_sequences_reproduce() {
        let m = LatencyModel::wan();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

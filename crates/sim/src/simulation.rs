//! The simulation engine: validators + overlay + virtual clock.
//!
//! Every simulated validator is a real [`Validator`] (SCP + herder +
//! ledger + buckets); the engine owns the event queue, the peer graph,
//! per-node flood state, and traffic counters, and routes everything
//! deterministically from a single seed. Ledger pacing follows production:
//! a node triggers consensus on the next ledger once it has closed the
//! previous one *and* the 5-second ledger interval has elapsed since the
//! last trigger (§7: "the system runs SCP at 5-second intervals").

use crate::events::{Event, EventQueue, Flooded};
use crate::latency::LatencyModel;
use crate::loadgen::{genesis_store, LoadGen};
use crate::metrics::{build_ledger_metrics, SimReport};
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use stellar_crypto::sign::KeyPair;
use stellar_herder::validator::{Outputs, Validator};
use stellar_overlay::{FloodMessage, FloodState, PeerGraph, TrafficStats};
use stellar_scp::NodeId;

/// Parameters of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Network shape.
    pub scenario: Scenario,
    /// Synthetic accounts in the genesis ledger.
    pub n_accounts: u64,
    /// Payment load (transactions per second); 0 disables.
    pub tx_rate: f64,
    /// Stop after the observer closes this many ledgers.
    pub target_ledgers: u64,
    /// Ledger trigger interval (production: 5000 ms).
    pub ledger_interval_ms: u64,
    /// Master seed (latency, load, topology).
    pub seed: u64,
    /// Per-ledger operation budget.
    pub max_tx_set_ops: u32,
    /// Hard cap on simulated time, as a safety net (ms).
    pub max_sim_time_ms: u64,
    /// Modeled per-message processing cost at each node, in microseconds
    /// (signature checks, statement processing). Deliveries queue behind a
    /// busy node, so message volume translates into latency — the effect
    /// behind Fig. 11's balloting growth.
    pub proc_cost_us_per_msg: u64,
}

/// Optional custom genesis state for scenario-driven examples/tests.
#[derive(Default)]
pub struct SimSetup {
    /// Replaces the synthetic-account genesis store when set.
    pub genesis: Option<stellar_ledger::store::LedgerStore>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 1000,
            tx_rate: 0.0,
            target_ledgers: 10,
            ledger_interval_ms: 5000,
            seed: 42,
            max_tx_set_ops: 1000,
            max_sim_time_ms: 3_600_000,
            proc_cost_us_per_msg: 200,
        }
    }
}

/// Deterministic seed for a validator's signing identity.
pub fn validator_keys(id: NodeId) -> KeyPair {
    KeyPair::from_seed(0x7A11DA70u64 ^ u64::from(id.0))
}

/// The engine.
pub struct Simulation {
    cfg: SimConfig,
    now: u64,
    queue: EventQueue,
    validators: BTreeMap<NodeId, Validator>,
    graph: PeerGraph,
    flood: BTreeMap<NodeId, FloodState>,
    traffic: BTreeMap<NodeId, TrafficStats>,
    latency: LatencyModel,
    rng: StdRng,
    loadgen: Option<LoadGen>,
    observer: NodeId,
    scp_originated: u64,
    /// Per node: the last slot we called `trigger_next_ledger` for.
    last_triggered_slot: BTreeMap<NodeId, u64>,
    /// Per node: when the last trigger happened.
    last_trigger_time: BTreeMap<NodeId, u64>,
    /// Per node: the last ledger seq we observed closed.
    last_closed: BTreeMap<NodeId, u64>,
    /// Per node: modeled CPU busy-until, microseconds of simulated time.
    busy_until_us: BTreeMap<NodeId, u64>,
    /// Crashed nodes: no receive, no send, no timers.
    crashed: std::collections::BTreeSet<NodeId>,
}

impl Simulation {
    /// Builds the network described by `cfg`.
    pub fn new(cfg: SimConfig) -> Simulation {
        Simulation::with_setup(cfg, SimSetup::default())
    }

    /// Builds the network with a custom genesis ledger.
    pub fn with_setup(cfg: SimConfig, setup: SimSetup) -> Simulation {
        let built = cfg.scenario.build(cfg.seed);
        let store = setup
            .genesis
            .unwrap_or_else(|| genesis_store(cfg.n_accounts, 1000));
        let registry: BTreeMap<NodeId, stellar_crypto::sign::PublicKey> = built
            .validators
            .iter()
            .map(|id| (*id, validator_keys(*id).public()))
            .collect();
        let mut validators = BTreeMap::new();
        for (id, qset) in &built.qsets {
            let mut v = Validator::new(
                *id,
                validator_keys(*id),
                qset.clone(),
                store.clone(),
                registry.clone(),
            );
            v.herder.header.params.max_tx_set_ops = cfg.max_tx_set_ops;
            validators.insert(*id, v);
        }
        let flood = built
            .graph
            .nodes()
            .map(|n| (n, FloodState::new(200_000)))
            .collect();
        let traffic = built
            .graph
            .nodes()
            .map(|n| (n, TrafficStats::default()))
            .collect();
        let observer = built.validators[0];
        let loadgen = if cfg.tx_rate > 0.0 {
            Some(LoadGen::new(cfg.n_accounts, cfg.tx_rate, cfg.seed))
        } else {
            None
        };
        let mut sim = Simulation {
            now: 0,
            queue: EventQueue::new(),
            validators,
            graph: built.graph,
            flood,
            traffic,
            latency: built.latency,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x51),
            loadgen,
            observer,
            scp_originated: 0,
            last_triggered_slot: BTreeMap::new(),
            last_trigger_time: BTreeMap::new(),
            last_closed: BTreeMap::new(),
            busy_until_us: BTreeMap::new(),
            crashed: std::collections::BTreeSet::new(),
            cfg,
        };
        // Initial ledger triggers, slightly staggered like real restarts.
        let ids: Vec<NodeId> = sim.validators.keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            sim.last_closed.insert(*id, 1);
            sim.queue
                .push(1000 + (i as u64 % 50), Event::TriggerLedger { node: *id });
        }
        // First load arrival.
        if sim.loadgen.is_some() {
            let dt = sim.loadgen.as_mut().unwrap().next_arrival_ms();
            sim.schedule_load(1000 + dt);
        }
        sim
    }

    fn schedule_load(&mut self, at: u64) {
        let Some(lg) = self.loadgen.as_mut() else {
            return;
        };
        let tx = lg.make_payment();
        // Submit to a pseudo-random validator (client choice).
        let ids: Vec<NodeId> = self.validators.keys().copied().collect();
        let to = ids[(tx.hash().prefix_u64() % ids.len() as u64) as usize];
        self.queue.push(
            at,
            Event::SubmitTx {
                to,
                tx: Box::new(tx),
            },
        );
    }

    /// Schedules a client transaction submission at `at_ms` (routed to a
    /// deterministic validator, then flooded).
    pub fn submit_transaction_at(
        &mut self,
        at_ms: u64,
        tx: stellar_ledger::tx::TransactionEnvelope,
    ) {
        let ids: Vec<NodeId> = self.validators.keys().copied().collect();
        let to = ids[(tx.hash().prefix_u64() % ids.len() as u64) as usize];
        self.queue.push(
            at_ms,
            Event::SubmitTx {
                to,
                tx: Box::new(tx),
            },
        );
    }

    /// A validator, for post-run inspection.
    pub fn validator(&self, id: NodeId) -> &Validator {
        &self.validators[&id]
    }

    /// All validator ids.
    pub fn validator_ids(&self) -> Vec<NodeId> {
        self.validators.keys().copied().collect()
    }

    /// The observer node (metrics source).
    pub fn observer_id(&self) -> NodeId {
        self.observer
    }

    /// Crashes a node at the current point in the run: it stops sending,
    /// receiving, and firing timers (fail-stop, §6-style outage drills).
    pub fn crash(&mut self, id: NodeId) {
        self.crashed.insert(id);
    }

    /// Revives a crashed node (it rejoins with its pre-crash state and
    /// catches up from peers' traffic).
    pub fn revive(&mut self, id: NodeId) {
        self.crashed.remove(&id);
    }

    /// Marks validators as governing with a desired upgrade set (§5.3).
    pub fn configure_governance(
        &mut self,
        ids: &[NodeId],
        desired: std::collections::BTreeSet<stellar_herder::Upgrade>,
    ) {
        for id in ids {
            if let Some(v) = self.validators.get_mut(id) {
                v.herder.upgrade_policy = stellar_herder::UpgradePolicy {
                    governing: true,
                    desired: desired.clone(),
                };
            }
        }
    }

    /// Consuming convenience wrapper around [`Simulation::run`].
    pub fn run_to_completion(mut self) -> SimReport {
        self.run()
    }

    /// Runs to completion and produces the report.
    pub fn run(&mut self) -> SimReport {
        let target_seq = 1 + self.cfg.target_ledgers;
        while let Some((time, event)) = self.queue.pop() {
            self.now = self.now.max(time);
            if self.now > self.cfg.max_sim_time_ms {
                break;
            }
            self.dispatch(event);
            let observer_done = self.validators[&self.observer].ledger_seq() >= target_seq;
            let all_done = observer_done
                && self
                    .validators
                    .values()
                    .all(|v| self.crashed.contains(&v.id()) || v.ledger_seq() >= target_seq);
            if all_done {
                break;
            }
        }
        self.report()
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Deliver { to, from, msg } => {
                if self.crashed.contains(&to) {
                    return;
                }
                self.handle_deliver(to, from, msg)
            }
            Event::Timer {
                node,
                slot,
                kind,
                version,
            } => {
                if self.crashed.contains(&node) {
                    return;
                }
                if !self.queue.timer_current(node, slot, kind, version) {
                    return;
                }
                let out = {
                    let v = self.validators.get_mut(&node).expect("known node");
                    v.set_time_ms(self.now);
                    v.on_timer(slot, kind)
                };
                self.handle_outputs(node, out);
            }
            Event::TriggerLedger { node } => self.handle_trigger(node),
            Event::SubmitTx { to, tx } => {
                {
                    let v = self.validators.get_mut(&to).expect("known node");
                    v.set_time_ms(self.now);
                    let _ = v.submit_transaction((*tx).clone());
                }
                // The receiving node floods the transaction onward.
                self.broadcast_from(to, Flooded::new(FloodMessage::Tx(*tx)));
                let dt = self
                    .loadgen
                    .as_mut()
                    .map(LoadGen::next_arrival_ms)
                    .unwrap_or(u64::MAX / 4);
                let horizon = (1 + self.cfg.target_ledgers + 4) * self.cfg.ledger_interval_ms;
                if self.now + dt < horizon {
                    self.schedule_load(self.now + dt);
                }
            }
        }
    }

    fn handle_trigger(&mut self, node: NodeId) {
        if self.crashed.contains(&node) {
            // Re-check after an interval; the node may be revived.
            self.queue.push(
                self.now + self.cfg.ledger_interval_ms,
                Event::TriggerLedger { node },
            );
            return;
        }
        let slot = self.validators[&node].herder.current_slot();
        let last = self.last_triggered_slot.get(&node).copied().unwrap_or(0);
        if slot <= last {
            return; // still working on the slot we already triggered
        }
        self.last_triggered_slot.insert(node, slot);
        self.last_trigger_time.insert(node, self.now);
        let out = {
            let v = self.validators.get_mut(&node).expect("known node");
            v.set_time_ms(self.now);
            v.trigger_next_ledger()
        };
        self.handle_outputs(node, out);
    }

    fn handle_deliver(&mut self, to: NodeId, from: NodeId, msg: Flooded) {
        // Duplicate deliveries cost only a cache lookup; account traffic
        // and drop them before the processing-capacity model.
        let fresh = self
            .flood
            .get(&to)
            .map(|f| !f.contains(msg.id))
            .unwrap_or(false);
        if !fresh {
            if let Some(t) = self.traffic.get_mut(&to) {
                t.recv(msg.size);
            }
            return;
        }
        // Processing-capacity model: a busy node queues fresh deliveries
        // (re-checked for freshness when they finally run).
        let now_us = self.now * 1000;
        let busy = self.busy_until_us.get(&to).copied().unwrap_or(0);
        if busy > now_us + 999 {
            self.queue
                .push(busy.div_ceil(1000), Event::Deliver { to, from, msg });
            return;
        }
        self.busy_until_us
            .insert(to, busy.max(now_us) + self.cfg.proc_cost_us_per_msg);
        if let Some(t) = self.traffic.get_mut(&to) {
            t.recv(msg.size);
        }
        let fresh = self
            .flood
            .get_mut(&to)
            .map(|f| f.record_id(msg.id))
            .unwrap_or(false);
        if !fresh {
            return;
        }
        // Watchers (non-validators) only relay.
        if self.validators.contains_key(&to) {
            let out = {
                let v = self.validators.get_mut(&to).expect("validator");
                v.set_time_ms(self.now);
                match &*msg.msg {
                    FloodMessage::Scp(env) => v.receive_envelope(env),
                    FloodMessage::TxSet(set) => v.receive_tx_set(set.clone()),
                    FloodMessage::Tx(tx) => {
                        let _ = v.submit_transaction(tx.clone());
                        Outputs::default()
                    }
                }
            };
            self.handle_outputs(to, out);
        }
        // Relay to all peers except the sender.
        self.relay(to, Some(from), msg);
    }

    fn relay(&mut self, node: NodeId, from: Option<NodeId>, msg: Flooded) {
        let peers: Vec<NodeId> = self
            .graph
            .peers(node)
            .filter(|p| Some(*p) != from)
            .collect();
        for p in peers {
            let delay = self.latency.sample(&mut self.rng);
            if let Some(t) = self.traffic.get_mut(&node) {
                t.send(msg.size);
            }
            self.queue.push(
                self.now + delay.max(1),
                Event::Deliver {
                    to: p,
                    from: node,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Floods a message originated by `node`.
    fn broadcast_from(&mut self, node: NodeId, msg: Flooded) {
        if let Some(f) = self.flood.get_mut(&node) {
            f.record_id(msg.id); // don't reprocess our own message
        }
        self.relay(node, None, msg);
    }

    fn handle_outputs(&mut self, node: NodeId, out: Outputs) {
        self.queue.apply_outputs_timers(self.now, node, &out);
        for env in out.envelopes {
            self.scp_originated += 1;
            if let Some(t) = self.traffic.get_mut(&node) {
                t.scp_originated += 1;
            }
            self.broadcast_from(node, Flooded::new(FloodMessage::Scp(env)));
        }
        for set in out.tx_sets {
            self.broadcast_from(node, Flooded::new(FloodMessage::TxSet(set)));
        }
        self.check_closed(node);
    }

    /// Detects a freshly closed ledger and schedules the next trigger at
    /// `last_trigger + interval` (the 5-second pacing).
    fn check_closed(&mut self, node: NodeId) {
        let seq = self.validators[&node].ledger_seq();
        let last = self.last_closed.get(&node).copied().unwrap_or(1);
        if seq > last {
            self.last_closed.insert(node, seq);
            let base = self
                .last_trigger_time
                .get(&node)
                .copied()
                .unwrap_or(self.now);
            let at = (base + self.cfg.ledger_interval_ms).max(self.now + 1);
            self.queue.push(at, Event::TriggerLedger { node });
        }
    }

    fn report(&self) -> SimReport {
        let observer = self.validators.get(&self.observer).expect("observer");
        let mut ledgers =
            build_ledger_metrics(&observer.herder.events, &observer.herder.close_stats);
        // Drop ledgers beyond the target (stragglers of shutdown).
        ledgers.retain(|l| l.slot <= 1 + self.cfg.target_ledgers);
        SimReport {
            ledgers,
            scp_msgs_originated: self.scp_originated,
            traffic: self.traffic.clone(),
            sim_duration_ms: self.now,
            txs_generated: self.loadgen.as_ref().map_or(0, |l| l.generated),
            n_validators: self.validators.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_validators_close_empty_ledgers() {
        let report = Simulation::new(SimConfig {
            target_ledgers: 5,
            n_accounts: 10,
            ..SimConfig::default()
        })
        .run_to_completion();
        assert!(
            report.ledgers.len() >= 5,
            "got {} ledgers",
            report.ledgers.len()
        );
        // ~5s pacing.
        let interval = report.mean_close_interval_s();
        assert!((4.0..7.0).contains(&interval), "interval {interval}");
    }

    #[test]
    fn load_flows_through_consensus() {
        let report = Simulation::new(SimConfig {
            target_ledgers: 6,
            n_accounts: 500,
            tx_rate: 20.0,
            ..SimConfig::default()
        })
        .run_to_completion();
        let total_tx: usize = report.ledgers.iter().map(|l| l.tx_count).sum();
        assert!(total_tx > 0, "some transactions must be confirmed");
        // Rough throughput sanity: ~20 tps × 5 s ≈ 100 per ledger.
        assert!(
            report.mean_tx_per_ledger() > 30.0,
            "{}",
            report.mean_tx_per_ledger()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig {
            target_ledgers: 4,
            n_accounts: 100,
            tx_rate: 5.0,
            ..SimConfig::default()
        };
        let a = Simulation::new(cfg.clone()).run_to_completion();
        let b = Simulation::new(cfg).run_to_completion();
        assert_eq!(a.scp_msgs_originated, b.scp_msgs_originated);
        assert_eq!(a.ledgers.len(), b.ledgers.len());
        for (x, y) in a.ledgers.iter().zip(&b.ledgers) {
            assert_eq!(x.externalized_at_ms, y.externalized_at_ms);
            assert_eq!(x.tx_count, y.tx_count);
        }
    }

    #[test]
    fn public_network_scenario_runs() {
        let report = Simulation::new(SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: 4,
                validators_per_org: 3,
                n_watchers: 6,
            },
            target_ledgers: 3,
            n_accounts: 50,
            tx_rate: 2.0,
            ..SimConfig::default()
        })
        .run_to_completion();
        assert!(report.ledgers.len() >= 3);
        assert_eq!(report.n_validators, 12);
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn network_survives_minority_org_crash() {
        // 5 orgs × 3 validators at 67%: one whole org failing leaves a
        // 4-of-5 quorum — ledgers keep closing (§6's design goal).
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: 5,
                validators_per_org: 3,
                n_watchers: 0,
            },
            n_accounts: 20,
            tx_rate: 1.0,
            target_ledgers: 4,
            seed: 61,
            max_sim_time_ms: 120_000,
            ..SimConfig::default()
        });
        // Crash the last org (keep the observer, node 0, alive).
        for id in [NodeId(12), NodeId(13), NodeId(14)] {
            sim.crash(id);
        }
        let report = sim.run();
        assert!(
            report.ledgers.len() >= 4,
            "4 healthy orgs must keep closing: {}",
            report.ledgers.len()
        );
    }

    #[test]
    fn network_halts_when_two_orgs_crash_but_stays_safe() {
        // Losing 2 of 5 orgs breaks the 4-of-5 threshold: liveness (not
        // safety) is lost, exactly the §3.1.1 trade-off.
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: 5,
                validators_per_org: 3,
                n_watchers: 0,
            },
            n_accounts: 20,
            tx_rate: 0.0,
            target_ledgers: 3,
            seed: 62,
            max_sim_time_ms: 60_000,
            ..SimConfig::default()
        });
        // Crash orgs 3 and 4 (nodes 9..15), keeping the observer alive.
        for id in 9..15u32 {
            sim.crash(NodeId(id));
        }
        let report = sim.run();
        assert!(report.ledgers.is_empty(), "no quorum: no ledgers may close");
        // Safety: live validators never externalized anything divergent.
        let ids = sim.validator_ids();
        let seqs: std::collections::BTreeSet<u64> = ids
            .iter()
            .filter(|id| id.0 < 9)
            .map(|id| sim.validator(*id).ledger_seq())
            .collect();
        assert_eq!(seqs, [1u64].into(), "everyone still at genesis");
    }

    #[test]
    fn crashed_then_revived_node_catches_up() {
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 20,
            tx_rate: 2.0,
            target_ledgers: 6,
            seed: 63,
            max_sim_time_ms: 120_000,
            ..SimConfig::default()
        });
        sim.crash(NodeId(3));
        let report = sim.run();
        assert!(report.ledgers.len() >= 6, "3-of-4 majority keeps going");
        assert_eq!(
            sim.validator(NodeId(3)).ledger_seq(),
            1,
            "crashed node is stuck at genesis"
        );
        // Note: full catch-up uses the history archive (tests/catchup.rs);
        // here we only assert fail-stop does not hurt the rest.
    }
}

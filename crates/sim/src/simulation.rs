//! The simulation engine: validators + overlay + virtual clock.
//!
//! Every simulated validator is a real [`Validator`] (SCP + herder +
//! ledger + buckets); the engine owns the event queue, the peer graph,
//! per-node flood state, and traffic counters, and routes everything
//! deterministically from a single seed. Ledger pacing follows production:
//! a node triggers consensus on the next ledger once it has closed the
//! previous one *and* the 5-second ledger interval has elapsed since the
//! last trigger (§7: "the system runs SCP at 5-second intervals").

use crate::events::{Event, EventQueue, Flooded};
use crate::latency::LatencyModel;
use crate::loadgen::{genesis_store, LoadGen};
use crate::metrics::{build_ledger_metrics, SimReport};
use crate::scenario::Scenario;
use crate::tracing::{build_tx_traces, render_causal_trace, trace_summary_json};
use crate::watchdog::{HealthWatchdog, WatchdogConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use stellar_crypto::codec::Decode;
use stellar_crypto::sign::KeyPair;
use stellar_crypto::Hash256;
use stellar_herder::validator::{Outputs, Validator};
use stellar_horizon::{AdmissionConfig, Horizon, HorizonError, HorizonPipeline};
use stellar_overlay::{
    DemandScheduler, FloodMessage, FloodMode, FloodState, LinkFaultTable, MsgKind, PayloadCache,
    PeerGraph, TrafficStats, MAX_DEMAND_ATTEMPTS,
};
use stellar_scp::driver::ScpEvent;
use stellar_scp::{NodeId, QuorumSet, SlotIndex, Value};
use stellar_telemetry::{Json, NodeTelemetry, Registry, SpanEvent, SpanPhase, TraceStore};

/// Parameters of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Network shape.
    pub scenario: Scenario,
    /// Synthetic accounts in the genesis ledger.
    pub n_accounts: u64,
    /// Payment load (transactions per second); 0 disables.
    pub tx_rate: f64,
    /// Stop after the observer closes this many ledgers.
    pub target_ledgers: u64,
    /// Ledger trigger interval (production: 5000 ms).
    pub ledger_interval_ms: u64,
    /// Master seed (latency, load, topology).
    pub seed: u64,
    /// Per-ledger operation budget.
    pub max_tx_set_ops: u32,
    /// Worker threads for ledger apply on every validator (≤ 1 =
    /// sequential). A node-local performance knob: it never enters the
    /// header codec or hash, so mixed-thread-count networks stay in
    /// consensus.
    pub apply_threads: u32,
    /// Hard cap on simulated time, as a safety net (ms).
    pub max_sim_time_ms: u64,
    /// Modeled per-message processing cost at each node, in microseconds
    /// (signature checks, statement processing). Deliveries queue behind a
    /// busy node, so message volume translates into latency — the effect
    /// behind Fig. 11's balloting growth.
    pub proc_cost_us_per_msg: u64,
    /// How `Tx`/`TxSet` payloads cross the overlay: naïve push flooding
    /// (the §7.5 default) or advert/demand pull gossip. SCP envelopes are
    /// pushed either way.
    pub flood_mode: FloodMode,
    /// Whether nodes persist SCP state and the latest closed ledger to a
    /// (simulated) durable store before emitting votes (§3, §5.4). On by
    /// default, as in production stellar-core; turning it off makes a
    /// crash-restarted node amnesiac — the configuration the chaos layer
    /// uses to demonstrate restart equivocation.
    pub persistence: bool,
    /// Which ledger storage backend every validator runs on: the
    /// original in-RAM maps or the log-structured disk store. Defaults
    /// from `STELLAR_STORE_BACKEND` so an entire test run can be flipped
    /// onto the disk backend without touching code.
    pub store_backend: stellar_store::BackendKind,
    /// Transaction-lifecycle tracing sampling knob: `0` disables span
    /// collection, `1` traces every transaction, `n` keeps traces whose
    /// content-derived id satisfies `id % n == 0`. The rule is shared by
    /// every node, so a sampled trace is causally complete network-wide.
    pub trace_sample_every: u64,
    /// Attach the full horizon pipeline (ingestion indexer, subscription
    /// hub, admission control) to the observer node with this tuning.
    /// `None` (the default) runs no pipeline — the pipeline is
    /// off-consensus, so externalized headers are identical either way.
    pub horizon: Option<AdmissionConfig>,
    /// Horizon query load against the observer's pipeline, in queries
    /// per second; `0` disables. Query batches are timed in wall-clock
    /// nanoseconds (`horizon.query_ns`), the E20 latency measurement.
    pub horizon_query_rate: f64,
    /// Ingestion cadence: `0` drains the close-event feed at every close
    /// (no lag); otherwise the indexer only drains every this-many
    /// simulated milliseconds, so the `ingest.lag` gauge and the E20
    /// latency-vs-lag curve have something to show.
    pub horizon_ingest_interval_ms: u64,
}

/// Pull-mode flood tick cadence: adverts batch for up to this long, and
/// demand timeouts are checked at this granularity (production
/// stellar-core floods adverts every 100 ms).
pub const ADVERT_INTERVAL_MS: u64 = 100;

/// How long a demand waits before the scheduler retries the next
/// advertiser. Covers one round trip on the WAN latency model with slack.
pub const DEMAND_TIMEOUT_MS: u64 = 400;

/// Per-node bound on payloads kept for answering demands.
const PAYLOAD_CACHE_CAPACITY: usize = 4096;

/// Health-watchdog observation cadence (simulated ms). One round per
/// simulated second keeps detection latency far under the stuck-slot
/// bound at negligible cost.
const WATCHDOG_INTERVAL_MS: u64 = 1000;

/// Optional custom genesis state for scenario-driven examples/tests.
#[derive(Default)]
pub struct SimSetup {
    /// Replaces the synthetic-account genesis store when set.
    pub genesis: Option<stellar_ledger::store::LedgerStore>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 1000,
            tx_rate: 0.0,
            target_ledgers: 10,
            ledger_interval_ms: 5000,
            seed: 42,
            max_tx_set_ops: 1000,
            apply_threads: 1,
            max_sim_time_ms: 3_600_000,
            proc_cost_us_per_msg: 200,
            flood_mode: FloodMode::Push,
            persistence: true,
            store_backend: stellar_store::BackendKind::from_env(),
            trace_sample_every: 1,
            horizon: None,
            horizon_query_rate: 0.0,
            horizon_ingest_interval_ms: 0,
        }
    }
}

/// Deterministic seed for a validator's signing identity.
pub fn validator_keys(id: NodeId) -> KeyPair {
    KeyPair::from_seed(0x7A11DA70u64 ^ u64::from(id.0))
}

/// Traffic-accounting tag of a flooded payload.
fn msg_kind(msg: &FloodMessage) -> MsgKind {
    match msg {
        FloodMessage::Scp(_) => MsgKind::Scp,
        FloodMessage::TxSet(_) => MsgKind::TxSet,
        FloodMessage::Tx(_) => MsgKind::Tx,
        FloodMessage::Advert(_) => MsgKind::Advert,
        FloodMessage::Demand(_) => MsgKind::Demand,
    }
}

/// An active network partition: nodes can only exchange messages within
/// their own group. Nodes not listed in any group form one implicit extra
/// group of their own.
#[derive(Clone, Debug)]
struct Partition {
    group_of: BTreeMap<NodeId, usize>,
    heal_at_ms: Option<u64>,
}

/// One entry of the deterministic event trace (see
/// [`Simulation::enable_trace`]). Two runs from the same seed and fault
/// schedule produce identical traces, which is what makes chaos findings
/// replayable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEntry {
    /// A flooded message arrived at a node.
    Deliver {
        /// Simulated time (ms).
        time: u64,
        /// Sending peer.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Content id of the message.
        msg_id: Hash256,
    },
    /// An SCP timer fired.
    Timer {
        /// Simulated time (ms).
        time: u64,
        /// The node whose timer fired.
        node: NodeId,
        /// Slot the timer belonged to.
        slot: SlotIndex,
    },
    /// A node started consensus on its next ledger.
    Trigger {
        /// Simulated time (ms).
        time: u64,
        /// The triggered node.
        node: NodeId,
    },
    /// A client transaction was submitted.
    Submit {
        /// Simulated time (ms).
        time: u64,
        /// Receiving node.
        to: NodeId,
        /// Transaction hash.
        tx_hash: Hash256,
    },
    /// A node closed a ledger.
    Close {
        /// Simulated time (ms).
        time: u64,
        /// The closing node.
        node: NodeId,
        /// Sequence of the closed ledger.
        seq: u64,
        /// Resulting header hash.
        header_hash: Hash256,
    },
}

/// The engine.
pub struct Simulation {
    cfg: SimConfig,
    now: u64,
    queue: EventQueue,
    validators: BTreeMap<NodeId, Validator>,
    graph: PeerGraph,
    flood: BTreeMap<NodeId, FloodState>,
    /// Pull mode: per-node advert batching and demand retry state.
    pull: BTreeMap<NodeId, DemandScheduler>,
    /// Pull mode: per-node payloads available for answering demands.
    payloads: BTreeMap<NodeId, PayloadCache<Flooded>>,
    /// Pull mode: nodes with a `PullTick` currently scheduled.
    tick_armed: BTreeSet<NodeId>,
    traffic: BTreeMap<NodeId, TrafficStats>,
    latency: LatencyModel,
    rng: StdRng,
    loadgen: Option<LoadGen>,
    observer: NodeId,
    scp_originated: u64,
    /// Per node: the last slot we called `trigger_next_ledger` for.
    last_triggered_slot: BTreeMap<NodeId, u64>,
    /// Per node: when the last trigger happened.
    last_trigger_time: BTreeMap<NodeId, u64>,
    /// Per node: the last ledger seq we observed closed.
    last_closed: BTreeMap<NodeId, u64>,
    /// Per node: modeled CPU busy-until, microseconds of simulated time.
    busy_until_us: BTreeMap<NodeId, u64>,
    /// Crashed nodes: no receive, no send, no timers.
    crashed: BTreeSet<NodeId>,
    /// Dedicated RNG stream for fault decisions, so configuring faults on
    /// some links never perturbs the base latency/load streams.
    fault_rng: StdRng,
    /// Per-link fault models (chaos testing).
    link_faults: LinkFaultTable,
    /// Active network partition, if any.
    partition: Option<Partition>,
    /// Puppet nodes: they hold real keys and appear in quorum sets, but
    /// run no validator logic — an external driver (a chaos adversary)
    /// drains their inbox and injects envelopes by hand.
    puppets: BTreeSet<NodeId>,
    puppet_inbox: BTreeMap<NodeId, Vec<(NodeId, Flooded)>>,
    /// Event trace, recorded when enabled (see [`Simulation::enable_trace`]).
    trace: Option<Vec<TraceEntry>>,
    /// The genesis ledger store, retained so a crash-restart can rebuild
    /// a validator from scratch (disk + archives only, no magic RAM).
    genesis: stellar_ledger::store::LedgerStore,
    /// The shared signing-key registry, retained for restart rebuilds.
    registry: BTreeMap<NodeId, stellar_crypto::sign::PublicKey>,
    /// Recovery bookkeeping: restarts performed this run.
    restarts: u64,
    /// Ledgers replayed from history archives during recoveries.
    recovery_replayed: u64,
    /// Wall-clock time spent rebuilding restarted nodes (µs).
    recovery_us: u64,
    /// Liveness health monitor (stuck slots, slow closes, ledger lag).
    watchdog: HealthWatchdog,
    /// Next simulated time the watchdog takes an observation round.
    watchdog_next_ms: u64,
    /// The observer's horizon pipeline, when enabled.
    horizon: Option<HorizonPipeline>,
    /// Sim-side horizon load accounting (`horizon.*`: submissions
    /// admitted/shed, query latency histogram, lag at query time).
    horizon_metrics: Registry,
}

impl Simulation {
    /// Builds the network described by `cfg`.
    pub fn new(cfg: SimConfig) -> Simulation {
        Simulation::with_setup(cfg, SimSetup::default())
    }

    /// Builds the network with a custom genesis ledger.
    pub fn with_setup(cfg: SimConfig, setup: SimSetup) -> Simulation {
        let built = cfg.scenario.build(cfg.seed);
        let store = setup
            .genesis
            .unwrap_or_else(|| genesis_store(cfg.n_accounts, 1000));
        let registry: BTreeMap<NodeId, stellar_crypto::sign::PublicKey> = built
            .validators
            .iter()
            .map(|id| (*id, validator_keys(*id).public()))
            .collect();
        let mut validators = BTreeMap::new();
        for (id, qset) in &built.qsets {
            // Each validator gets its own store on the configured
            // backend: `Mem` clones the genesis template, `Disk` streams
            // it onto a fresh simulated data disk.
            let node_store = stellar_store::open(
                &store,
                cfg.store_backend,
                &stellar_store::DiskConfig::default(),
            );
            let mut v = Validator::new(
                *id,
                validator_keys(*id),
                qset.clone(),
                node_store,
                registry.clone(),
            );
            v.herder.header.params.max_tx_set_ops = cfg.max_tx_set_ops;
            v.herder.set_apply_threads(cfg.apply_threads);
            v.herder
                .telemetry
                .spans
                .configure(cfg.trace_sample_every, TraceStore::DEFAULT_CAP);
            if !cfg.persistence {
                v.herder.persist = stellar_persist::DurableStore::disabled();
            }
            validators.insert(*id, v);
        }
        let flood = built
            .graph
            .nodes()
            .map(|n| (n, FloodState::with_min_residency(200_000, 30_000)))
            .collect();
        // Pull-mode state exists for every graph node (watchers relay
        // payloads in pull mode by re-advertising them).
        let pull = built
            .graph
            .nodes()
            .map(|n| (n, DemandScheduler::new(DEMAND_TIMEOUT_MS)))
            .collect();
        let payloads = built
            .graph
            .nodes()
            .map(|n| (n, PayloadCache::new(PAYLOAD_CACHE_CAPACITY)))
            .collect();
        let traffic = built
            .graph
            .nodes()
            .map(|n| (n, TrafficStats::default()))
            .collect();
        let observer = built.validators[0];
        let loadgen = if cfg.tx_rate > 0.0 {
            Some(LoadGen::new(cfg.n_accounts, cfg.tx_rate, cfg.seed))
        } else {
            None
        };
        let mut sim = Simulation {
            now: 0,
            queue: EventQueue::new(),
            validators,
            graph: built.graph,
            flood,
            pull,
            payloads,
            tick_armed: BTreeSet::new(),
            traffic,
            latency: built.latency,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x51),
            loadgen,
            observer,
            scp_originated: 0,
            last_triggered_slot: BTreeMap::new(),
            last_trigger_time: BTreeMap::new(),
            last_closed: BTreeMap::new(),
            busy_until_us: BTreeMap::new(),
            crashed: BTreeSet::new(),
            fault_rng: StdRng::seed_from_u64(cfg.seed ^ 0xFA17),
            link_faults: LinkFaultTable::new(),
            partition: None,
            puppets: BTreeSet::new(),
            puppet_inbox: BTreeMap::new(),
            trace: None,
            genesis: store,
            registry,
            restarts: 0,
            recovery_replayed: 0,
            recovery_us: 0,
            watchdog: HealthWatchdog::new(WatchdogConfig::default()),
            watchdog_next_ms: 0,
            horizon: None,
            horizon_metrics: Registry::new(),
            cfg,
        };
        if let Some(hcfg) = sim.cfg.horizon {
            let v = sim.validators.get_mut(&sim.observer).expect("observer");
            sim.horizon = Some(HorizonPipeline::attach(&mut v.herder, hcfg));
            if sim.cfg.horizon_ingest_interval_ms > 0 {
                sim.queue.push(
                    1000 + sim.cfg.horizon_ingest_interval_ms,
                    Event::HorizonIngest,
                );
            }
            if sim.cfg.horizon_query_rate > 0.0 {
                sim.queue.push(1000, Event::HorizonQuery);
            }
        }
        // Initial ledger triggers, slightly staggered like real restarts.
        let ids: Vec<NodeId> = sim.validators.keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            sim.last_closed.insert(*id, 1);
            sim.queue
                .push(1000 + (i as u64 % 50), Event::TriggerLedger { node: *id });
        }
        // First load arrival.
        if sim.loadgen.is_some() {
            let dt = sim.loadgen.as_mut().unwrap().next_arrival_ms();
            sim.schedule_load(1000 + dt);
        }
        sim
    }

    fn schedule_load(&mut self, at: u64) {
        let Some(lg) = self.loadgen.as_mut() else {
            return;
        };
        let tx = lg.make_payment();
        // Submit to a pseudo-random validator (client choice).
        let ids: Vec<NodeId> = self.validators.keys().copied().collect();
        let to = ids[(tx.hash().prefix_u64() % ids.len() as u64) as usize];
        self.queue.push(
            at,
            Event::SubmitTx {
                to,
                tx: Box::new(tx),
            },
        );
    }

    /// Schedules a client transaction submission at `at_ms` (routed to a
    /// deterministic validator, then flooded).
    pub fn submit_transaction_at(
        &mut self,
        at_ms: u64,
        tx: stellar_ledger::tx::TransactionEnvelope,
    ) {
        let ids: Vec<NodeId> = self.validators.keys().copied().collect();
        let to = ids[(tx.hash().prefix_u64() % ids.len() as u64) as usize];
        self.queue.push(
            at_ms,
            Event::SubmitTx {
                to,
                tx: Box::new(tx),
            },
        );
    }

    /// A validator, for post-run inspection.
    pub fn validator(&self, id: NodeId) -> &Validator {
        &self.validators[&id]
    }

    /// A node's telemetry (metrics registry + flight recorder).
    pub fn telemetry(&self, id: NodeId) -> &NodeTelemetry {
        &self.validators[&id].herder.telemetry
    }

    /// All validator ids.
    pub fn validator_ids(&self) -> Vec<NodeId> {
        self.validators.keys().copied().collect()
    }

    /// The observer node (metrics source).
    pub fn observer_id(&self) -> NodeId {
        self.observer
    }

    /// Crashes a node at the current point in the run: it stops sending,
    /// receiving, and firing timers (fail-stop, §6-style outage drills).
    /// Pending deliveries to it are purged, and new ones are dropped at
    /// enqueue time, so a long run never bloats the heap with traffic for
    /// a dead node.
    pub fn crash(&mut self, id: NodeId) {
        self.crashed.insert(id);
        self.queue.purge_deliveries_to(id);
    }

    /// Revives a crashed node. The node does **not** keep its pre-crash
    /// RAM: revival is a full crash-restart ([`Simulation::restart`]) that
    /// rebuilds the validator from its durable store and history archive
    /// alone, exactly what a rebooted stellar-core does (§3, §5.4).
    pub fn revive(&mut self, id: NodeId) {
        if self.crashed.contains(&id) {
            self.restart(id);
        }
    }

    /// Crash-restarts a node in place: every byte of in-memory state is
    /// discarded and the validator is rebuilt solely from what survived
    /// the reboot —
    ///
    /// 1. its durable store takes the crash (unsynced writes are lost, a
    ///    pending record may be torn);
    /// 2. a fresh validator replays its own history archive from genesis
    ///    and cross-checks the tip against the durable LCL record;
    /// 3. SCP voting state is restored from the durable snapshot, so the
    ///    node re-arms timers and can never contradict a vote it already
    ///    published (with persistence off it forgets those votes — the
    ///    amnesia-equivocation hazard the chaos layer demonstrates);
    /// 4. the remaining ledger gap is closed from a reachable live peer's
    ///    archive and the reconnect state exchange runs.
    ///
    /// Works on live nodes too (an atomic reboot) and clears the crashed
    /// flag for nodes that were down.
    pub fn restart(&mut self, id: NodeId) {
        if self.puppets.contains(&id) || !self.validators.contains_key(&id) {
            return;
        }
        let started = std::time::Instant::now();
        self.crashed.remove(&id);
        let old = self.validators.remove(&id).expect("known node");
        let qset = old.scp.quorum_set().clone();
        let herder = old.herder;
        let own_archive = herder.archive;
        let mut disk = herder.persist;
        let data_disk = herder.store.disk();
        // Power loss: whatever was written but not fsynced is gone, and
        // an injected torn-write fault may corrupt a pending record.
        // Both devices take the crash — the write-ahead log and (on the
        // disk backend) the ledger data disk.
        disk.crash();
        if let Some(dd) = &data_disk {
            dd.borrow_mut().crash();
        }
        // Fast recovery path (disk backend only): rebuild the ledger
        // store and bucket list straight off the durable data disk,
        // cross-checked against the write-ahead LCL record. Any
        // discrepancy — torn manifest, sequence split across the two
        // disks, wrong snapshot hash — falls back to genesis replay.
        let lcl = disk
            .read(stellar_herder::herder::LCL_KEY)
            .and_then(|b| stellar_herder::herder::LclRecord::from_bytes(&b).ok());
        let recovered = match (&data_disk, &lcl) {
            (Some(dd), Some(lcl)) => stellar_store::recover_node(
                dd.clone(),
                &lcl.header,
                &lcl.bucket_hashes,
                &stellar_store::DiskConfig::default(),
            )
            .map(|(store, buckets)| (store, buckets, lcl.header.clone())),
            _ => None,
        };
        let durable_recovery = recovered.is_some();
        let mut v = match recovered {
            Some((store, buckets, header)) => Validator::from_recovered(
                id,
                validator_keys(id),
                qset,
                store,
                buckets,
                header,
                self.registry.clone(),
            ),
            None => Validator::new(
                id,
                validator_keys(id),
                qset,
                // The data disk was unusable (or the node runs in RAM):
                // re-image it and replay from genesis.
                stellar_store::open(
                    &self.genesis,
                    self.cfg.store_backend,
                    &stellar_store::DiskConfig::default(),
                ),
                self.registry.clone(),
            ),
        };
        v.herder.header.params.max_tx_set_ops = self.cfg.max_tx_set_ops;
        v.herder.set_apply_threads(self.cfg.apply_threads);
        // A rebooted process keeps tracing at the configured sampling
        // rate; its pre-crash span buffer is RAM and thus lost.
        v.herder
            .telemetry
            .spans
            .configure(self.cfg.trace_sample_every, TraceStore::DEFAULT_CAP);
        v.herder.persist = disk;
        if durable_recovery {
            v.herder.telemetry.registry.inc("recovery.durable_store");
        }
        v.set_time_ms(self.now);
        // Replay our own archive (archives model external durable
        // storage — they survive the reboot in both persistence modes).
        let mut replayed = v.herder.catch_up_from(&own_archive);
        // The durable LCL record is the node-local integrity anchor: if
        // it is intact and covers the replayed tip, the hashes must line
        // up — a mismatch means local corruption, which we surface as a
        // counter rather than trusting either side blindly.
        if let Some(lcl) = v.herder.recover_lcl() {
            if lcl.header.ledger_seq == v.ledger_seq()
                && lcl.header.hash() != v.herder.header.hash()
            {
                v.herder.telemetry.registry.inc("recovery.lcl_mismatch");
            }
        }
        // Restore durable SCP voting state (may re-fire a decided slot
        // into the close path and re-arm consensus timers).
        let restored = v.recover_scp_state();
        let out = v.drain_outputs();
        v.herder
            .telemetry
            .registry
            .add("recovery.slots_restored", restored as u64);
        self.validators.insert(id, v);
        // A rebooted process has no flood caches, demand state, queued
        // deliveries, or CPU backlog.
        self.flood
            .insert(id, FloodState::with_min_residency(200_000, 30_000));
        self.pull
            .insert(id, DemandScheduler::new(DEMAND_TIMEOUT_MS));
        self.payloads
            .insert(id, PayloadCache::new(PAYLOAD_CACHE_CAPACITY));
        self.tick_armed.remove(&id);
        self.busy_until_us.remove(&id);
        self.queue.purge_deliveries_to(id);
        // A horizon pipeline is RAM: if its host rebooted, re-attach a
        // fresh one and backfill history from the archive (restart-
        // mid-ingestion recovery). Live closes resume from the feed.
        if id == self.observer {
            if let Some(hcfg) = self.cfg.horizon {
                let v = self.validators.get_mut(&id).expect("known node");
                let mut p = HorizonPipeline::attach(&mut v.herder, hcfg);
                p.indexer.backfill_history(&v.herder.archive);
                self.horizon = Some(p);
                self.horizon_metrics.inc("horizon.reattached");
            }
        }
        // The node will re-trigger its current slot, but on the normal
        // 5-second pacing — not the instant the process boots. (The
        // pacing base survives the reboot: production derives it from
        // the recovered last-close time.) Triggering immediately would
        // propose an off-schedule close time and perturb the values the
        // network agrees on.
        self.last_triggered_slot.remove(&id);
        let recovered_seq = self.validators[&id].ledger_seq();
        self.last_closed.insert(id, recovered_seq);
        self.handle_outputs(id, out);
        // Close the remaining gap from the network's archives, then
        // rejoin consensus: re-trigger and exchange SCP state.
        replayed += self.catch_up(id);
        let trigger_at = self
            .last_trigger_time
            .get(&id)
            .map_or(self.now + 1, |base| {
                (base + self.cfg.ledger_interval_ms).max(self.now + 1)
            });
        self.queue
            .push(trigger_at, Event::TriggerLedger { node: id });
        self.resync();
        let dur_us = started.elapsed().as_micros() as u64;
        self.restarts += 1;
        self.recovery_replayed += replayed;
        self.recovery_us += dur_us;
        let reg = &mut self
            .validators
            .get_mut(&id)
            .expect("known node")
            .herder
            .telemetry
            .registry;
        reg.inc("recovery.restarts");
        reg.add("recovery.ledgers_replayed", replayed);
        reg.observe("recovery.duration_us", dur_us);
    }

    /// Replays ledgers the node missed from the most-advanced live
    /// peer's history archive (paper §5.4 — flooding never retransmits,
    /// so closed history must come from the archive). Only peers the
    /// node can actually reach under the active partition are consulted.
    /// Returns the number of ledgers applied; 0 when nobody reachable is
    /// ahead.
    fn catch_up(&mut self, id: NodeId) -> u64 {
        let own_seq = self.ledger_seq_of(id);
        let best = self
            .validators
            .iter()
            .filter(|(peer, _)| {
                **peer != id
                    && !self.crashed.contains(peer)
                    && !self.puppets.contains(peer)
                    && self.link_open(**peer, id)
            })
            .max_by_key(|(_, v)| v.ledger_seq())
            .map(|(peer, v)| (*peer, v.ledger_seq()));
        let Some((peer, peer_seq)) = best else {
            return 0;
        };
        if peer_seq <= own_seq {
            return 0;
        }
        let archive = self.validators[&peer].herder.archive.clone();
        let v = self.validators.get_mut(&id).expect("known node");
        v.set_time_ms(self.now);
        let applied = v.herder.catch_up_from(&archive);
        self.check_closed(id);
        applied
    }

    /// Re-floods every live validator's own latest SCP envelopes — the
    /// peer-(re)connect state exchange. Naïve flooding never retransmits,
    /// so after a partition heals (or a node revives) this is what lets
    /// the two sides learn the votes they missed; nodes that already saw
    /// an envelope drop it in the flood cache.
    fn resync(&mut self) {
        let ids: Vec<NodeId> = self.validators.keys().copied().collect();
        for id in ids {
            if self.crashed.contains(&id) || self.puppets.contains(&id) {
                continue;
            }
            // Tx sets first: a peer that sees a vote before the set it
            // names cannot validate the value for nomination. In pull
            // mode the sets are (re-)advertised rather than re-flooded —
            // peers that already hold them never see the payload again.
            for set in self.validators[&id].scp_state_tx_sets() {
                self.publish_payload(id, Flooded::new(FloodMessage::TxSet(set)));
            }
            for env in self.validators[&id].scp_state_envelopes() {
                self.broadcast_from(id, Flooded::new(FloodMessage::Scp(env)));
            }
        }
    }

    /// Whether `id` is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.crashed.contains(&id)
    }

    /// Arms `n` failing fsyncs on `id`'s durable store (chaos hook). The
    /// write-ahead gate reacts by withholding outbound envelopes until a
    /// later sync succeeds.
    pub fn fail_next_fsyncs(&mut self, id: NodeId, n: u32) {
        if let Some(v) = self.validators.get_mut(&id) {
            v.herder.persist.fail_next_fsyncs(n);
            // On the disk backend the fault hits the data disk too: a
            // failed close flush keeps the delta dirty in the write-back
            // cache and retries at the next close.
            if let Some(dd) = v.herder.store.disk() {
                dd.borrow_mut().fail_next_fsyncs(n);
            }
        }
    }

    /// Arms a torn write on `id`'s durable store: its next crash commits
    /// only a strict prefix of the oldest unsynced record (chaos hook;
    /// recovery must treat the torn record as absent).
    pub fn tear_next_crash(&mut self, id: NodeId) {
        if let Some(v) = self.validators.get_mut(&id) {
            v.herder.persist.tear_next_crash();
            // A torn data-disk record is caught by the segment/manifest
            // checksums; recovery then refuses the fast path.
            if let Some(dd) = v.herder.store.disk() {
                dd.borrow_mut().tear_next_crash();
            }
        }
    }

    /// Imposes a network partition: messages flow only within a group.
    /// Nodes not listed in any group form one implicit group of their
    /// own. `heal_at_ms` removes the partition automatically once
    /// simulated time reaches it.
    pub fn set_partition(&mut self, groups: &[Vec<NodeId>], heal_at_ms: Option<u64>) {
        let mut group_of = BTreeMap::new();
        for (gi, group) in groups.iter().enumerate() {
            for id in group {
                group_of.insert(*id, gi);
            }
        }
        self.partition = Some(Partition {
            group_of,
            heal_at_ms,
        });
    }

    /// Heals any active partition immediately and runs the reconnect
    /// state exchange.
    pub fn clear_partition(&mut self) {
        if self.partition.take().is_some() {
            self.resync();
        }
    }

    /// Whether a partition is currently in force.
    pub fn partition_active(&self) -> bool {
        self.partition.is_some()
    }

    /// Whether the directed link `from -> to` is currently open under the
    /// active partition (probabilistic link faults are not consulted).
    pub fn link_open(&self, from: NodeId, to: NodeId) -> bool {
        match &self.partition {
            None => true,
            Some(p) => {
                let unlisted = usize::MAX;
                let ga = p.group_of.get(&from).copied().unwrap_or(unlisted);
                let gb = p.group_of.get(&to).copied().unwrap_or(unlisted);
                ga == gb
            }
        }
    }

    /// The per-link fault table (drop/duplicate/delay/reorder models).
    pub fn link_faults_mut(&mut self) -> &mut LinkFaultTable {
        &mut self.link_faults
    }

    /// Demotes a validator to a puppet: it keeps its keys and its place
    /// in other nodes' quorum sets, but runs no validator logic. Its
    /// inbound traffic lands in an inbox for an external driver (a
    /// Byzantine adversary) to read, and anything it "says" is injected
    /// via [`Simulation::inject_direct`] / [`Simulation::inject_broadcast`].
    pub fn make_puppet(&mut self, id: NodeId) {
        self.puppets.insert(id);
    }

    /// Whether `id` is a puppet.
    pub fn is_puppet(&self, id: NodeId) -> bool {
        self.puppets.contains(&id)
    }

    /// Takes the messages delivered to puppet `id` since the last drain.
    pub fn drain_puppet_inbox(&mut self, id: NodeId) -> Vec<(NodeId, Flooded)> {
        self.puppet_inbox.remove(&id).unwrap_or_default()
    }

    /// Injects a message from `from` to a single peer `to` (adversary
    /// equivocation path: different payloads to different peers). Honest
    /// receivers process and relay it through their normal paths.
    pub fn inject_direct(&mut self, from: NodeId, to: NodeId, msg: FloodMessage) {
        let flooded = Flooded::new(msg);
        if let Some(f) = self.flood.get_mut(&from) {
            f.record_at(flooded.id, self.now); // don't bounce back
        }
        self.enqueue_delivery(from, to, flooded);
    }

    /// Injects a message flooded by `from` to all its peers.
    pub fn inject_broadcast(&mut self, from: NodeId, msg: FloodMessage) {
        let flooded = Flooded::new(msg);
        if let Some(f) = self.flood.get_mut(&from) {
            f.record_at(flooded.id, self.now);
        }
        self.relay(from, None, flooded);
    }

    /// Starts recording the event trace (see [`TraceEntry`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded event trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    fn record_trace(&mut self, entry: TraceEntry) {
        if let Some(t) = self.trace.as_mut() {
            t.push(entry);
        }
    }

    /// Whether `node` collects lifecycle spans (a validator with tracing
    /// configured on; watchers and puppets carry no telemetry).
    fn spans_enabled(&self, node: NodeId) -> bool {
        self.validators
            .get(&node)
            .is_some_and(|v| v.herder.telemetry.spans.enabled())
    }

    /// Records one lifecycle span on `node` at the current simulated time.
    fn span(&mut self, node: NodeId, trace: u64, phase: SpanPhase) {
        let t = self.now;
        if let Some(v) = self.validators.get_mut(&node) {
            v.herder.telemetry.span(trace, t, phase);
        }
    }

    /// Current simulated time (ms).
    pub fn now_ms(&self) -> u64 {
        self.now
    }

    /// Time of the next scheduled event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.queue.peek_time()
    }

    /// Number of pending delivery events addressed to `id` (regression
    /// hook: must stay 0 for crashed nodes).
    pub fn pending_deliveries_to(&self, id: NodeId) -> usize {
        self.queue.count_deliveries_to(id)
    }

    /// Total pending events in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The overlay peer graph.
    pub fn graph(&self) -> &PeerGraph {
        &self.graph
    }

    /// The run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Every node's quorum set (input to intactness computation).
    pub fn quorum_sets(&self) -> BTreeMap<NodeId, QuorumSet> {
        self.validators
            .iter()
            .map(|(id, v)| (*id, v.scp.quorum_set().clone()))
            .collect()
    }

    /// Everything `id` has externalized so far, as `(slot, value)` pairs.
    pub fn externalizations(&self, id: NodeId) -> Vec<(SlotIndex, Value)> {
        self.validators
            .get(&id)
            .map(|v| {
                v.herder
                    .events
                    .iter()
                    .filter_map(|(_, e)| match e {
                        ScpEvent::Externalized { slot, value } => Some((*slot, value.clone())),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Ledger header hashes `id` has committed, as `(seq, hash)` pairs.
    pub fn header_hashes(&self, id: NodeId) -> Vec<(u64, Hash256)> {
        self.validators
            .get(&id)
            .map(|v| {
                v.herder
                    .close_stats
                    .iter()
                    .map(|cs| (cs.ledger_seq, cs.header_hash))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Current ledger sequence of `id`.
    pub fn ledger_seq_of(&self, id: NodeId) -> u64 {
        self.validators
            .get(&id)
            .map(|v| v.ledger_seq())
            .unwrap_or(0)
    }

    /// Marks validators as governing with a desired upgrade set (§5.3).
    pub fn configure_governance(
        &mut self,
        ids: &[NodeId],
        desired: std::collections::BTreeSet<stellar_herder::Upgrade>,
    ) {
        for id in ids {
            if let Some(v) = self.validators.get_mut(id) {
                v.herder.upgrade_policy = stellar_herder::UpgradePolicy {
                    governing: true,
                    desired: desired.clone(),
                };
            }
        }
    }

    /// Consuming convenience wrapper around [`Simulation::run`].
    pub fn run_to_completion(mut self) -> SimReport {
        self.run()
    }

    /// Runs to completion and produces the report.
    pub fn run(&mut self) -> SimReport {
        let target_seq = 1 + self.cfg.target_ledgers;
        while self.step() {
            let observer_done = self.validators[&self.observer].ledger_seq() >= target_seq;
            let all_done = observer_done
                && self.validators.values().all(|v| {
                    self.crashed.contains(&v.id())
                        || self.puppets.contains(&v.id())
                        || v.ledger_seq() >= target_seq
                });
            if all_done {
                break;
            }
        }
        self.report()
    }

    /// Advances the simulation by exactly one event. Returns `false` when
    /// the queue is exhausted or the simulated-time cap is reached.
    /// External drivers (the chaos runner) interleave fault-schedule
    /// actions, adversary turns, and invariant checks between steps.
    pub fn step(&mut self) -> bool {
        // A due partition heal applies before the next event fires.
        if let Some(p) = &self.partition {
            if let (Some(heal), Some(next)) = (p.heal_at_ms, self.queue.peek_time()) {
                if heal <= next.max(self.now) {
                    self.now = self.now.max(heal);
                    self.partition = None;
                    self.resync();
                }
            }
        }
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(time);
        if self.now > self.cfg.max_sim_time_ms {
            return false;
        }
        self.dispatch(event);
        self.poll_watchdog();
        true
    }

    /// One health-watchdog observation round, throttled to the watchdog
    /// cadence. Crashed nodes stay in the observation set — a crashed
    /// node genuinely is stuck, which is exactly what the stuck-slot
    /// detector should surface during chaos drills.
    fn poll_watchdog(&mut self) {
        if self.now < self.watchdog_next_ms {
            return;
        }
        self.watchdog_next_ms = self.now + WATCHDOG_INTERVAL_MS;
        let seqs: Vec<(NodeId, u64)> = self
            .validators
            .iter()
            .filter(|(id, _)| !self.puppets.contains(id))
            .map(|(id, v)| (*id, v.ledger_seq()))
            .collect();
        self.watchdog.observe(self.now, &seqs);
        for (id, lag) in self.watchdog.ledger_lag() {
            if let Some(v) = self.validators.get_mut(&id) {
                v.herder
                    .telemetry
                    .registry
                    .set_gauge("health.ledger_lag", lag as i64);
            }
        }
    }

    /// The health watchdog (alerts + lag gauges).
    pub fn watchdog(&self) -> &HealthWatchdog {
        &self.watchdog
    }

    /// Registers a scheduled-downtime window with the health watchdog:
    /// stalls of `id` overlapping `[from_ms, until_ms)` are deliberate
    /// fault injection and are annotated as expected in the health report
    /// rather than raised as alerts.
    pub fn expect_downtime(&mut self, id: NodeId, from_ms: u64, until_ms: u64) {
        self.watchdog.expect_downtime(id, from_ms, until_ms);
    }

    /// Replaces `id`'s quorum set at runtime — the halt-and-reconfigure
    /// self-healing action: after a staged org failure, operators
    /// re-synthesize the federation's configuration without the failed
    /// orgs and push it to the surviving validators, restoring a
    /// satisfiable quorum so consensus can resume.
    pub fn reconfigure_quorum(&mut self, id: NodeId, qset: QuorumSet) {
        if self.crashed.contains(&id) || self.puppets.contains(&id) {
            // A crashed node cannot act on new configuration; a puppet
            // never runs consensus. Either way there is nothing to
            // re-evaluate.
            if let Some(v) = self.validators.get_mut(&id) {
                v.scp.set_quorum_set(qset);
            }
            return;
        }
        let out = {
            let Some(v) = self.validators.get_mut(&id) else {
                return;
            };
            v.set_time_ms(self.now);
            // Re-steps the in-flight slot: statements already received
            // may form a quorum under the new slices, and a stalled
            // node would otherwise never look again.
            v.reconfigure_quorum_set(qset)
        };
        self.handle_outputs(id, out);
    }

    /// The observer's horizon pipeline, when one is attached.
    pub fn horizon(&self) -> Option<&HorizonPipeline> {
        self.horizon.as_ref()
    }

    /// The sim-side horizon load metrics (`horizon.*`).
    pub fn horizon_metrics(&self) -> &Registry {
        &self.horizon_metrics
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Deliver { to, from, msg } => {
                if self.crashed.contains(&to) {
                    return;
                }
                self.record_trace(TraceEntry::Deliver {
                    time: self.now,
                    from,
                    to,
                    msg_id: msg.id,
                });
                self.handle_deliver(to, from, msg)
            }
            Event::Timer {
                node,
                slot,
                kind,
                version,
            } => {
                if self.crashed.contains(&node) || self.puppets.contains(&node) {
                    return;
                }
                if !self.queue.timer_current(node, slot, kind, version) {
                    return;
                }
                self.record_trace(TraceEntry::Timer {
                    time: self.now,
                    node,
                    slot,
                });
                let out = {
                    let v = self.validators.get_mut(&node).expect("known node");
                    v.set_time_ms(self.now);
                    v.on_timer(slot, kind)
                };
                self.handle_outputs(node, out);
            }
            Event::TriggerLedger { node } => self.handle_trigger(node),
            Event::SubmitTx { to, tx } => {
                self.record_trace(TraceEntry::Submit {
                    time: self.now,
                    to,
                    tx_hash: tx.hash(),
                });
                // The trace root: the client handed the transaction to
                // this node. (Relayed flood copies re-enter admission on
                // other nodes but are not new submissions.)
                if self.spans_enabled(to) {
                    self.span(to, tx.hash().prefix_u64(), SpanPhase::Submit);
                }
                let shed = {
                    let v = self.validators.get_mut(&to).expect("known node");
                    v.set_time_ms(self.now);
                    // The observer's submissions pass through the horizon
                    // front door: admission control sheds before the
                    // transaction costs signature checks or flooding.
                    let admitted = match (to == self.observer, self.horizon.as_mut()) {
                        (true, Some(p)) => {
                            match p
                                .admission
                                .admit(tx.tx.source, self.now, v.herder.queue.len())
                            {
                                Ok(()) => {
                                    self.horizon_metrics.inc("horizon.submitted");
                                    true
                                }
                                Err(HorizonError::RateLimited { .. }) => {
                                    self.horizon_metrics.inc("horizon.shed");
                                    false
                                }
                                Err(_) => {
                                    self.horizon_metrics.inc("horizon.rejected");
                                    false
                                }
                            }
                        }
                        _ => true,
                    };
                    if admitted {
                        let _ = v.submit_transaction((*tx).clone());
                    }
                    !admitted
                };
                // The receiving node floods the transaction onward (in
                // pull mode: adverts it; peers demand the payload). A
                // shed submission never floods — that is the point.
                if !shed {
                    self.publish_payload(to, Flooded::new(FloodMessage::Tx(*tx)));
                }
                let dt = self
                    .loadgen
                    .as_mut()
                    .map(LoadGen::next_arrival_ms)
                    .unwrap_or(u64::MAX / 4);
                let horizon = (1 + self.cfg.target_ledgers + 4) * self.cfg.ledger_interval_ms;
                if self.now + dt < horizon {
                    self.schedule_load(self.now + dt);
                }
            }
            Event::PullTick { node } => self.handle_pull_tick(node),
            Event::HorizonQuery => self.handle_horizon_query(),
            Event::HorizonIngest => self.handle_horizon_ingest(),
        }
    }

    /// How long load-producing events keep rescheduling themselves: a
    /// few intervals past the target, matching the submit-load horizon.
    fn load_horizon_ms(&self) -> u64 {
        (1 + self.cfg.target_ledgers + 4) * self.cfg.ledger_interval_ms
    }

    /// One horizon client query batch against the observer: an account
    /// summary, an indexed history walk, and fee stats — the three staple
    /// reads — timed together in wall-clock nanoseconds.
    fn handle_horizon_query(&mut self) {
        let Some(p) = self.horizon.as_mut() else {
            return;
        };
        let v = self.validators.get(&self.observer).expect("observer");
        let n = self.cfg.n_accounts.max(1);
        // Deterministic client choice without touching the sim RNG
        // streams: walk the account space with a large odd stride.
        let q = self.horizon_metrics.counter("horizon.queries");
        let id = crate::loadgen::user_account(q.wrapping_mul(2654435761) % n);
        let head = v.herder.header.ledger_seq;
        let started = std::time::Instant::now();
        let _ = Horizon::account(&v.herder, id);
        let _ = p.indexer.account_history(id, None, 32);
        let _ = p.indexer.account_effects(id, None, 32);
        let _ = Horizon::fee_stats(&v.herder);
        let ns = started.elapsed().as_nanos() as u64;
        self.horizon_metrics.observe("horizon.query_ns", ns);
        self.horizon_metrics
            .observe("horizon.lag_at_query", p.indexer.lag(head));
        self.horizon_metrics.inc("horizon.queries");
        let dt = ((1000.0 / self.cfg.horizon_query_rate).max(1.0)) as u64;
        if self.now + dt < self.load_horizon_ms() {
            self.queue.push(self.now + dt, Event::HorizonQuery);
        }
    }

    /// One cadence-driven ingestion drain (only scheduled when
    /// `horizon_ingest_interval_ms > 0`).
    fn handle_horizon_ingest(&mut self) {
        if let Some(p) = self.horizon.as_mut() {
            let v = self.validators.get_mut(&self.observer).expect("observer");
            p.on_close(&mut v.herder);
        }
        let dt = self.cfg.horizon_ingest_interval_ms;
        if dt > 0 && self.now + dt < self.load_horizon_ms() + dt {
            self.queue.push(self.now + dt, Event::HorizonIngest);
        }
    }

    fn handle_trigger(&mut self, node: NodeId) {
        if self.puppets.contains(&node) {
            return; // puppets never run consensus
        }
        if self.crashed.contains(&node) {
            // Re-check after an interval; the node may be revived.
            self.queue.push(
                self.now + self.cfg.ledger_interval_ms,
                Event::TriggerLedger { node },
            );
            return;
        }
        let slot = self.validators[&node].herder.current_slot();
        let last = self.last_triggered_slot.get(&node).copied().unwrap_or(0);
        if slot <= last {
            return; // still working on the slot we already triggered
        }
        self.record_trace(TraceEntry::Trigger {
            time: self.now,
            node,
        });
        self.last_triggered_slot.insert(node, slot);
        self.last_trigger_time.insert(node, self.now);
        let out = {
            let v = self.validators.get_mut(&node).expect("known node");
            v.set_time_ms(self.now);
            v.trigger_next_ledger()
        };
        self.handle_outputs(node, out);
    }

    fn handle_deliver(&mut self, to: NodeId, from: NodeId, msg: Flooded) {
        // Pull-mode control messages are point-to-point: no seen-cache,
        // no relay, and (being tiny) no processing-capacity charge.
        if msg.msg.is_pull_control() {
            if let Some(t) = self.traffic.get_mut(&to) {
                t.recv_kind(msg_kind(&msg.msg), msg.size);
            }
            if self.puppets.contains(&to) {
                self.puppet_inbox.entry(to).or_default().push((from, msg));
                return;
            }
            match &*msg.msg {
                FloodMessage::Advert(ids) => self.handle_advert(to, from, ids.clone()),
                FloodMessage::Demand(ids) => self.handle_demand(to, from, ids.clone()),
                _ => unreachable!("is_pull_control"),
            }
            return;
        }
        // Duplicate deliveries cost only a cache lookup; account traffic
        // and drop them before the processing-capacity model.
        let fresh = self
            .flood
            .get(&to)
            .map(|f| !f.contains(msg.id))
            .unwrap_or(false);
        let kind = msg_kind(&msg.msg);
        if !fresh {
            if let Some(t) = self.traffic.get_mut(&to) {
                t.recv_kind(kind, msg.size);
                t.dup_hit();
            }
            return;
        }
        // Processing-capacity model: a busy node queues fresh deliveries
        // (re-checked for freshness when they finally run).
        let now_us = self.now * 1000;
        let busy = self.busy_until_us.get(&to).copied().unwrap_or(0);
        if busy > now_us + 999 {
            self.queue
                .push(busy.div_ceil(1000), Event::Deliver { to, from, msg });
            return;
        }
        self.busy_until_us
            .insert(to, busy.max(now_us) + self.cfg.proc_cost_us_per_msg);
        if let Some(t) = self.traffic.get_mut(&to) {
            t.recv_kind(kind, msg.size);
        }
        let fresh = self
            .flood
            .get_mut(&to)
            .map(|f| f.record_at(msg.id, self.now))
            .unwrap_or(false);
        if !fresh {
            // A copy processed while this one waited in the busy queue.
            if let Some(t) = self.traffic.get_mut(&to) {
                t.dup_hit();
            }
            return;
        }
        // One hop of payload propagation: the first fresh arrival of a
        // Tx/TxSet stamps a flood-receive span for every transaction the
        // payload carries (trace ids are content-derived — no header).
        if self.spans_enabled(to) {
            for trace in msg.msg.trace_ids() {
                self.span(to, trace, SpanPhase::FloodRecv { from: from.0 });
            }
        }
        if self.puppets.contains(&to) {
            // Puppets receive but run no validator logic; their driver
            // (the chaos adversary) reads the inbox between steps.
            self.puppet_inbox
                .entry(to)
                .or_default()
                .push((from, msg.clone()));
        } else if self.validators.contains_key(&to) {
            // Watchers (non-validators) only relay.
            let out = {
                let v = self.validators.get_mut(&to).expect("validator");
                v.set_time_ms(self.now);
                match &*msg.msg {
                    FloodMessage::Scp(env) => v.receive_envelope(env),
                    FloodMessage::TxSet(set) => v.receive_tx_set(set.clone()),
                    FloodMessage::Tx(tx) => {
                        let _ = v.submit_transaction(tx.clone());
                        Outputs::default()
                    }
                    FloodMessage::Advert(_) | FloodMessage::Demand(_) => {
                        unreachable!("pull control intercepted above")
                    }
                }
            };
            self.handle_outputs(to, out);
            // Out-of-sync recovery: an envelope for a slot ≥ 2 ahead of
            // ours means the network externalized ledgers we missed (lost
            // to drops — naïve flooding never retransmits). Production
            // stellar-core reacts by entering catchup (§6); here we replay
            // straight from the best peer's archive.
            if let FloodMessage::Scp(env) = &*msg.msg {
                let behind = self
                    .validators
                    .get(&to)
                    .is_some_and(|v| env.statement.slot >= v.herder.current_slot() + 2);
                if behind {
                    self.catch_up(to);
                }
            }
        }
        // Onward propagation. Push mode relays the payload to all peers
        // except the sender. Pull mode relays only SCP envelopes that way;
        // a fresh Tx/TxSet payload instead settles any outstanding demand,
        // joins the node's payload cache, and is re-advertised.
        if self.cfg.flood_mode == FloodMode::Pull && !msg.msg.is_scp() {
            let fulfilled = self
                .pull
                .get_mut(&to)
                .is_some_and(|p| p.on_fulfilled(msg.id));
            if fulfilled {
                if let Some(t) = self.traffic.get_mut(&to) {
                    t.record_pull_fulfilled();
                }
            }
            if let Some(cache) = self.payloads.get_mut(&to) {
                cache.insert(msg.id, msg.clone());
            }
            if let Some(p) = self.pull.get_mut(&to) {
                p.queue_advert(msg.id);
            }
            self.arm_pull_tick(to);
        } else {
            self.relay(to, Some(from), msg);
        }
    }

    /// An advert arrived: register the sender for every hash this node
    /// lacks, and demand the newly wanted ones straight back from it.
    fn handle_advert(&mut self, to: NodeId, from: NodeId, ids: Vec<Hash256>) {
        let missing: Vec<Hash256> = match self.flood.get(&to) {
            Some(f) => ids.into_iter().filter(|id| !f.contains(*id)).collect(),
            None => return,
        };
        if missing.is_empty() {
            return;
        }
        if self.spans_enabled(to) {
            for id in &missing {
                self.span(to, id.prefix_u64(), SpanPhase::AdvertSeen { from: from.0 });
            }
        }
        let demand_now = self
            .pull
            .get_mut(&to)
            .map(|p| p.on_advert(from, &missing, self.now))
            .unwrap_or_default();
        if !demand_now.is_empty() {
            // Fresh wants are demanded straight back from the advertiser
            // (always the first attempt; retries go through the tick).
            if self.spans_enabled(to) {
                for id in &demand_now {
                    self.span(
                        to,
                        id.prefix_u64(),
                        SpanPhase::DemandSent {
                            to: from.0,
                            attempt: 1,
                        },
                    );
                }
            }
            self.enqueue_delivery(to, from, Flooded::new(FloodMessage::Demand(demand_now)));
        }
        // Arm the tick so the demand's timeout is checked even if no
        // further traffic arrives.
        self.arm_pull_tick(to);
    }

    /// A demand arrived: answer every hash still in the payload cache.
    /// Evicted (or never-held) hashes go unanswered — the demander's
    /// timeout retries another advertiser.
    fn handle_demand(&mut self, to: NodeId, from: NodeId, ids: Vec<Hash256>) {
        let answers: Vec<Flooded> = match self.payloads.get(&to) {
            Some(cache) => ids
                .iter()
                .filter_map(|id| cache.get(*id).cloned())
                .collect(),
            None => return,
        };
        for payload in answers {
            self.enqueue_delivery(to, from, payload);
        }
    }

    /// Schedules the next pull tick for `node` unless one is pending.
    fn arm_pull_tick(&mut self, node: NodeId) {
        if self.tick_armed.insert(node) {
            self.queue
                .push(self.now + ADVERT_INTERVAL_MS, Event::PullTick { node });
        }
    }

    /// One pull-mode flood tick: broadcast the batched adverts, re-demand
    /// expired wants, and re-arm while the scheduler still has work.
    fn handle_pull_tick(&mut self, node: NodeId) {
        self.tick_armed.remove(&node);
        if self.crashed.contains(&node) {
            return; // rearmed by whatever traffic follows a revival
        }
        let Some(p) = self.pull.get_mut(&node) else {
            return;
        };
        let actions = p.tick(self.now);
        if actions.timeouts > 0 {
            if let Some(t) = self.traffic.get_mut(&node) {
                t.record_pull_timeouts(actions.timeouts);
            }
        }
        if !actions.expired.is_empty() && self.spans_enabled(node) {
            // `attempt_of` reflects the post-retry counter; the timeout
            // belongs to the attempt before it. A want that exhausted its
            // retries was dropped — its final attempt is the one that
            // timed out.
            let sched = self.pull.get(&node).expect("scheduler ticked above");
            let expired: Vec<(u64, u32)> = actions
                .expired
                .iter()
                .map(|id| {
                    let timed_out = sched
                        .attempt_of(*id)
                        .map_or(MAX_DEMAND_ATTEMPTS, |a| a.saturating_sub(1));
                    (id.prefix_u64(), timed_out)
                })
                .collect();
            let retries: Vec<(u64, u32, u32)> = actions
                .demands
                .iter()
                .flat_map(|(peer, ids)| {
                    ids.iter().filter_map(|id| {
                        sched.attempt_of(*id).map(|a| (id.prefix_u64(), peer.0, a))
                    })
                })
                .collect();
            for (trace, attempt) in expired {
                self.span(node, trace, SpanPhase::DemandTimeout { attempt });
            }
            for (trace, to, attempt) in retries {
                self.span(node, trace, SpanPhase::DemandSent { to, attempt });
            }
        }
        if !actions.adverts.is_empty() {
            let advert = Flooded::new(FloodMessage::Advert(actions.adverts));
            let peers: Vec<NodeId> = self.graph.peers(node).collect();
            for peer in peers {
                self.enqueue_delivery(node, peer, advert.clone());
            }
        }
        for (peer, ids) in actions.demands {
            self.enqueue_delivery(node, peer, Flooded::new(FloodMessage::Demand(ids)));
        }
        if self.pull.get(&node).is_some_and(DemandScheduler::has_work) {
            self.arm_pull_tick(node);
        }
    }

    /// Hands a freshly originated `Tx`/`TxSet` payload to the overlay:
    /// push mode floods it to every peer; pull mode caches it and
    /// advertises its hash on the next flood tick.
    fn publish_payload(&mut self, node: NodeId, msg: Flooded) {
        match self.cfg.flood_mode {
            FloodMode::Push => self.broadcast_from(node, msg),
            FloodMode::Pull => {
                if let Some(f) = self.flood.get_mut(&node) {
                    f.record_at(msg.id, self.now);
                }
                let id = msg.id;
                if let Some(cache) = self.payloads.get_mut(&node) {
                    cache.insert(id, msg);
                }
                if let Some(p) = self.pull.get_mut(&node) {
                    p.queue_advert(id);
                }
                self.arm_pull_tick(node);
            }
        }
    }

    /// The delivery chokepoint every sent message funnels through: crashed
    /// targets are dropped here (not at pop time), partitions gate the
    /// link, and per-link fault models decide drop/duplicate/delay fates.
    /// Fault decisions draw from a dedicated RNG stream, so a run with no
    /// faults configured is bit-identical to one without the chaos layer.
    fn enqueue_delivery(&mut self, from: NodeId, to: NodeId, msg: Flooded) {
        if self.crashed.contains(&to) {
            return;
        }
        if !self.link_open(from, to) {
            return;
        }
        if let Some(t) = self.traffic.get_mut(&from) {
            t.send_kind(msg_kind(&msg.msg), msg.size);
        }
        let base_delay = self.latency.sample(&mut self.rng).max(1);
        match self.link_faults.get(from, to).cloned() {
            None => self
                .queue
                .push(self.now + base_delay, Event::Deliver { to, from, msg }),
            Some(fault) => {
                for extra in fault.sample_deliveries(&mut self.fault_rng) {
                    self.queue.push(
                        self.now + base_delay + extra,
                        Event::Deliver {
                            to,
                            from,
                            msg: msg.clone(),
                        },
                    );
                }
            }
        }
    }

    fn relay(&mut self, node: NodeId, from: Option<NodeId>, msg: Flooded) {
        let peers: Vec<NodeId> = self
            .graph
            .peers(node)
            .filter(|p| Some(*p) != from)
            .collect();
        for p in peers {
            self.enqueue_delivery(node, p, msg.clone());
        }
    }

    /// Floods a message originated by `node`.
    fn broadcast_from(&mut self, node: NodeId, msg: Flooded) {
        if let Some(f) = self.flood.get_mut(&node) {
            f.record_at(msg.id, self.now); // don't reprocess our own message
        }
        self.relay(node, None, msg);
    }

    fn handle_outputs(&mut self, node: NodeId, out: Outputs) {
        self.queue.apply_outputs_timers(self.now, node, &out);
        for env in out.envelopes {
            self.scp_originated += 1;
            if let Some(t) = self.traffic.get_mut(&node) {
                t.scp_originated += 1;
            }
            self.broadcast_from(node, Flooded::new(FloodMessage::Scp(env)));
        }
        for set in out.tx_sets {
            self.publish_payload(node, Flooded::new(FloodMessage::TxSet(set)));
        }
        self.check_closed(node);
    }

    /// Detects a freshly closed ledger and schedules the next trigger at
    /// `last_trigger + interval` (the 5-second pacing).
    fn check_closed(&mut self, node: NodeId) {
        let seq = self.validators[&node].ledger_seq();
        let last = self.last_closed.get(&node).copied().unwrap_or(1);
        if seq > last {
            self.last_closed.insert(node, seq);
            if node == self.observer && self.cfg.horizon_ingest_interval_ms == 0 {
                if let Some(p) = self.horizon.as_mut() {
                    let v = self.validators.get_mut(&node).expect("known node");
                    p.on_close(&mut v.herder);
                }
            }
            if self.trace.is_some() {
                let header_hash = self.validators[&node].herder.header.hash();
                self.record_trace(TraceEntry::Close {
                    time: self.now,
                    node,
                    seq,
                    header_hash,
                });
            }
            let base = self
                .last_trigger_time
                .get(&node)
                .copied()
                .unwrap_or(self.now);
            let at = (base + self.cfg.ledger_interval_ms).max(self.now + 1);
            self.queue.push(at, Event::TriggerLedger { node });
        }
    }

    /// Every node's retained lifecycle spans, merged and causally
    /// ordered: `(t_ms, pipeline order, node, trace)`. Timestamps are
    /// simulated ms only, so same-seed runs merge byte-identically.
    pub fn span_events(&self) -> Vec<SpanEvent> {
        let mut all: Vec<SpanEvent> = self
            .validators
            .values()
            .flat_map(|v| v.herder.telemetry.spans.spans().cloned())
            .collect();
        all.sort_by(|a, b| {
            (a.t_ms, a.phase.order(), a.node, a.trace).cmp(&(
                b.t_ms,
                b.phase.order(),
                b.node,
                b.trace,
            ))
        });
        all
    }

    /// Spans evicted from per-node buffers network-wide (trace-coverage
    /// health: non-zero means long runs should raise sampling).
    pub fn spans_dropped(&self) -> u64 {
        self.validators
            .values()
            .map(|v| v.herder.telemetry.spans.dropped())
            .sum()
    }

    /// Renders the complete cross-node causal trace of every sampled
    /// transaction that touched consensus `slot` (nominated into,
    /// externalized by, or applied in it) — the attachment a chaos
    /// violation carries so an invariant break comes with the full
    /// history of the transactions in the affected slot.
    pub fn causal_traces_for_slot(&self, slot: u64) -> String {
        let spans = self.span_events();
        let traces: BTreeSet<u64> = spans
            .iter()
            .filter(|s| s.phase.slot() == Some(slot))
            .map(|s| s.trace)
            .collect();
        let mut out = String::new();
        for t in traces {
            out.push_str(&render_causal_trace(&spans, t));
        }
        out
    }

    /// Renders the causal trace of every sampled transaction still in
    /// flight — submitted but never applied anywhere. During a liveness
    /// stall these are the transactions the stalled slot was supposed to
    /// carry: their last span shows exactly how far the pipeline got
    /// before progress stopped.
    pub fn causal_traces_pending(&self) -> String {
        let spans = self.span_events();
        let applied: BTreeSet<u64> = spans
            .iter()
            .filter(|s| matches!(s.phase, SpanPhase::Applied { .. }))
            .map(|s| s.trace)
            .collect();
        let pending: BTreeSet<u64> = spans
            .iter()
            .map(|s| s.trace)
            .filter(|t| !applied.contains(t))
            .collect();
        let mut out = String::new();
        for t in pending {
            out.push_str(&render_causal_trace(&spans, t));
        }
        out
    }

    fn report(&self) -> SimReport {
        let observer = self.validators.get(&self.observer).expect("observer");
        let mut ledgers =
            build_ledger_metrics(&observer.herder.events, &observer.herder.close_stats);
        // Drop ledgers beyond the target (stragglers of shutdown).
        ledgers.retain(|l| l.slot <= 1 + self.cfg.target_ledgers);
        let tx_traces = build_tx_traces(&self.span_events());
        SimReport {
            telemetry: self.telemetry_snapshot(&ledgers, &tx_traces),
            ledgers,
            scp_msgs_originated: self.scp_originated,
            traffic: self.traffic.clone(),
            sim_duration_ms: self.now,
            txs_generated: self.loadgen.as_ref().map_or(0, |l| l.generated),
            n_validators: self.validators.len(),
            tx_traces,
            health: self.watchdog.alerts().to_vec(),
        }
    }

    /// The observer's registry snapshot, with the per-ledger latency
    /// decomposition folded in as histograms and the typed traffic split
    /// (observer view + network totals) attached.
    fn telemetry_snapshot(
        &self,
        ledgers: &[crate::metrics::LedgerMetrics],
        tx_traces: &[crate::tracing::TxTrace],
    ) -> Json {
        let observer = self.validators.get(&self.observer).expect("observer");
        let mut registry = observer.herder.telemetry.registry.clone();
        for l in ledgers {
            registry.observe("consensus.nomination_ms", l.nomination_ms);
            registry.observe("consensus.balloting_ms", l.balloting_ms);
            registry.observe("consensus.total_ms", l.nomination_ms + l.balloting_ms);
        }
        let mut network = TrafficStats::default();
        for t in self.traffic.values() {
            network.merge(t);
        }
        let observer_traffic = self
            .traffic
            .get(&self.observer)
            .copied()
            .unwrap_or_default();
        Json::obj()
            .set("node", u64::from(self.observer.0))
            .set("registry", registry.snapshot())
            .set(
                "traffic",
                crate::metrics::traffic_to_json(&observer_traffic),
            )
            .set("network_traffic", crate::metrics::traffic_to_json(&network))
            .set(
                "recovery",
                Json::obj()
                    .set("restarts", self.restarts)
                    .set("ledgers_replayed", self.recovery_replayed)
                    .set("recovery_us", self.recovery_us)
                    .set("persistence", self.cfg.persistence),
            )
            .set("store", {
                let stats = observer.herder.store.io_stats();
                Json::obj()
                    .set("backend", observer.herder.store.backend_name())
                    .set(
                        "resident_bytes",
                        observer.herder.store.resident_bytes()
                            + observer.herder.buckets.resident_bytes(),
                    )
                    .set("disk_bytes", stats.disk_bytes)
                    .set("cache_hits", stats.cache_hits)
                    .set("cache_misses", stats.cache_misses)
                    .set("cache_evicts", stats.cache_evicts)
                    .set("bytes_written", stats.bytes_written)
                    .set("fsyncs", stats.fsyncs)
                    .set("segments", stats.segments)
                    .set("compactions", stats.compactions)
            })
            .set("trace", trace_summary_json(tx_traces, self.spans_dropped()))
            .set("health", self.watchdog.to_json())
            .set("horizon", self.horizon_json())
    }

    /// The horizon pipeline section of the report: the merged pipeline
    /// registry (`ingest.*`, `stream.*`, `admission.*`) plus the
    /// sim-side load accounting (`horizon.*`), or `enabled: false`.
    fn horizon_json(&self) -> Json {
        let Some(p) = &self.horizon else {
            return Json::obj().set("enabled", false);
        };
        let head = self.validators[&self.observer].herder.header.ledger_seq;
        let mut reg = p.registry();
        reg.merge(&self.horizon_metrics);
        Json::obj()
            .set("enabled", true)
            .set("ingested_seq", p.indexer.ingested_seq())
            .set("ingest_lag", p.indexer.lag(head))
            .set("subscribers", p.hub.len() as u64)
            .set("tracked_sources", p.admission.tracked_sources() as u64)
            .set("registry", reg.snapshot())
    }

    /// Crash-restarts performed this run (recovery telemetry).
    pub fn restart_count(&self) -> u64 {
        self.restarts
    }

    /// Ledgers replayed from history archives across all recoveries.
    pub fn recovery_ledgers_replayed(&self) -> u64 {
        self.recovery_replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::HealthAlert;

    #[test]
    fn four_validators_close_empty_ledgers() {
        let report = Simulation::new(SimConfig {
            target_ledgers: 5,
            n_accounts: 10,
            ..SimConfig::default()
        })
        .run_to_completion();
        assert!(
            report.ledgers.len() >= 5,
            "got {} ledgers",
            report.ledgers.len()
        );
        // ~5s pacing.
        let interval = report.mean_close_interval_s();
        assert!((4.0..7.0).contains(&interval), "interval {interval}");
    }

    #[test]
    fn load_flows_through_consensus() {
        let report = Simulation::new(SimConfig {
            target_ledgers: 6,
            n_accounts: 500,
            tx_rate: 20.0,
            ..SimConfig::default()
        })
        .run_to_completion();
        let total_tx: usize = report.ledgers.iter().map(|l| l.tx_count).sum();
        assert!(total_tx > 0, "some transactions must be confirmed");
        // Rough throughput sanity: ~20 tps × 5 s ≈ 100 per ledger.
        assert!(
            report.mean_tx_per_ledger() > 30.0,
            "{}",
            report.mean_tx_per_ledger()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig {
            target_ledgers: 4,
            n_accounts: 100,
            tx_rate: 5.0,
            ..SimConfig::default()
        };
        let a = Simulation::new(cfg.clone()).run_to_completion();
        let b = Simulation::new(cfg).run_to_completion();
        assert_eq!(a.scp_msgs_originated, b.scp_msgs_originated);
        assert_eq!(a.ledgers.len(), b.ledgers.len());
        for (x, y) in a.ledgers.iter().zip(&b.ledgers) {
            assert_eq!(x.externalized_at_ms, y.externalized_at_ms);
            assert_eq!(x.tx_count, y.tx_count);
        }
    }

    /// A network whose validators all close with a 4-thread apply pool
    /// externalizes the same ledgers as a sequential network — and the
    /// report's telemetry carries the parallel-apply counters.
    #[test]
    fn parallel_apply_network_matches_sequential_and_reports_stats() {
        let cfg = SimConfig {
            target_ledgers: 4,
            n_accounts: 100,
            tx_rate: 10.0,
            ..SimConfig::default()
        };
        let mut seq_sim = Simulation::new(cfg.clone());
        let seq = seq_sim.run();
        let mut par_sim = Simulation::new(SimConfig {
            apply_threads: 4,
            ..cfg
        });
        let par = par_sim.run();
        assert_eq!(seq.ledgers.len(), par.ledgers.len());
        // Byte-identical externalization: every closed ledger's header
        // hash matches between the two networks.
        let seq_closes = &seq_sim.validator(seq_sim.observer_id()).herder.close_stats;
        let par_closes = &par_sim.validator(par_sim.observer_id()).herder.close_stats;
        assert!(!seq_closes.is_empty());
        assert_eq!(seq_closes.len(), par_closes.len());
        for (a, b) in seq_closes.iter().zip(par_closes.iter()) {
            assert_eq!(
                a.header_hash, b.header_hash,
                "ledger {} diverged",
                a.ledger_seq
            );
        }
        let counters = par
            .telemetry
            .get("registry")
            .and_then(|r| r.get("counters"))
            .expect("counters in snapshot");
        let waves = counters
            .get("apply.waves")
            .and_then(stellar_telemetry::Json::as_f64)
            .unwrap_or(0.0);
        assert!(waves > 0.0, "apply.waves missing: {counters:?}");
        let seq_counters = seq
            .telemetry
            .get("registry")
            .and_then(|r| r.get("counters"))
            .expect("counters in snapshot");
        assert!(
            seq_counters.get("apply.waves").is_none(),
            "sequential close must not report waves"
        );
    }

    #[test]
    fn telemetry_snapshot_and_flight_recorder_populated() {
        let mut sim = Simulation::new(SimConfig {
            target_ledgers: 4,
            n_accounts: 50,
            tx_rate: 5.0,
            ..SimConfig::default()
        });
        let report = sim.run();
        // Registry: hot-path counters from the herder instrumentation.
        let registry = report
            .telemetry
            .get("registry")
            .expect("registry in snapshot");
        let counters = registry.get("counters").expect("counters");
        let externalized = counters
            .get("scp.externalized")
            .and_then(stellar_telemetry::Json::as_f64)
            .unwrap_or(0.0);
        assert!(externalized >= 4.0, "externalized counter: {externalized}");
        let hists = registry.get("histograms").expect("histograms");
        assert!(hists.get("consensus.total_ms").is_some());
        assert!(hists.get("ledger.apply_us").is_some());
        // Traffic: typed split + duplicate suppression (full mesh floods
        // every message along multiple paths, so dups are guaranteed).
        let net = report
            .telemetry
            .get("network_traffic")
            .expect("network_traffic");
        let dup = net
            .get("dup_suppressed")
            .and_then(stellar_telemetry::Json::as_f64)
            .unwrap_or(0.0);
        assert!(dup > 0.0, "flooding must hit the duplicate cache");
        let in_kinds = net.get("in_by_kind").expect("in_by_kind");
        assert!(in_kinds
            .get("scp")
            .and_then(stellar_telemetry::Json::as_f64)
            .is_some_and(|v| v > 0.0));
        // Flight recorder: the observer traced the run's slots.
        let recorder = &sim.telemetry(sim.observer_id()).recorder;
        assert!(!recorder.is_empty(), "flight recorder must have events");
        assert!(recorder.latest_slot() > 0, "recorder saw at least one slot");
        // The latest slot may still be mid-nomination at shutdown; pick
        // one the recorder saw externalize.
        let slot = recorder
            .events()
            .filter(|e| matches!(e.kind, stellar_telemetry::TraceKind::Externalized))
            .last()
            .map(|e| e.slot)
            .expect("an externalized slot within the retention window");
        let timeline = recorder.timeline(slot);
        assert!(
            timeline.contains("EXTERNALIZED"),
            "timeline must show the decision:\n{timeline}"
        );
        assert!(!recorder.dump_jsonl().is_empty());
    }

    #[test]
    fn public_network_scenario_runs() {
        let report = Simulation::new(SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: 4,
                validators_per_org: 3,
                n_watchers: 6,
            },
            target_ledgers: 3,
            n_accounts: 50,
            tx_rate: 2.0,
            ..SimConfig::default()
        })
        .run_to_completion();
        assert!(report.ledgers.len() >= 3);
        assert_eq!(report.n_validators, 12);
    }

    #[test]
    fn lifecycle_spans_cover_the_whole_pipeline() {
        let mut sim = Simulation::new(SimConfig {
            target_ledgers: 5,
            n_accounts: 100,
            tx_rate: 10.0,
            ..SimConfig::default()
        });
        let report = sim.run();
        assert!(!report.tx_traces.is_empty(), "load must produce traces");
        let r = report
            .tx_traces
            .iter()
            .find(|r| r.applied_ms.is_some())
            .expect("an applied transaction");
        // Every phase point present, in pipeline order.
        let admit = r.admit_ms.expect("admitted");
        let nominated = r.nominated_ms.expect("nominated");
        let externalized = r.externalized_ms.expect("externalized");
        let applied = r.applied_ms.expect("applied");
        let visible = r.visible_ms.expect("horizon-visible");
        assert!(r.submit_ms <= admit && admit <= nominated);
        assert!(nominated <= externalized && externalized <= applied);
        assert!(applied <= visible);
        assert!(r.apply_slot.is_some());
        // The flood reached other nodes and was recorded per hop.
        assert!(r.flood_hops >= 1, "full mesh floods the payload");
        assert!(r.nodes_reached >= 2);
        // Aggregated summary lives in the telemetry snapshot.
        let trace = report.telemetry.get("trace").expect("trace section");
        let phases = trace.get("phases").expect("phase decomposition");
        let total = phases.get("submit_to_apply").expect("end-to-end phase");
        assert!(total
            .get("samples")
            .and_then(Json::as_f64)
            .is_some_and(|s| s >= 1.0));
        assert!(report.telemetry.get("health").is_some());
        // The causal render for the apply slot shows the full history.
        let render = sim.causal_traces_for_slot(r.apply_slot.unwrap());
        assert!(render.contains("submit"), "{render}");
        assert!(render.contains("applied"), "{render}");
        // A healthy run raises no alerts and no node lags the tip.
        assert!(report.health.is_empty(), "{:?}", report.health);
        assert_eq!(sim.watchdog().max_ledger_lag(), 0);
    }

    #[test]
    fn trace_output_is_byte_identical_across_twin_runs() {
        let cfg = SimConfig {
            target_ledgers: 4,
            n_accounts: 100,
            tx_rate: 5.0,
            ..SimConfig::default()
        };
        let mut a = Simulation::new(cfg.clone());
        let ra = a.run();
        let mut b = Simulation::new(cfg);
        let rb = b.run();
        assert_eq!(a.span_events(), b.span_events(), "span streams differ");
        assert_eq!(
            crate::tracing::rows_to_json(&ra.tx_traces).render(),
            crate::tracing::rows_to_json(&rb.tx_traces).render(),
            "trace rows must render byte-identically"
        );
    }

    #[test]
    fn sampling_knob_gates_span_collection() {
        let base = SimConfig {
            target_ledgers: 3,
            n_accounts: 100,
            tx_rate: 10.0,
            ..SimConfig::default()
        };
        let off = Simulation::new(SimConfig {
            trace_sample_every: 0,
            ..base.clone()
        })
        .run_to_completion();
        assert!(off.tx_traces.is_empty(), "0 disables tracing");
        let full = Simulation::new(base.clone()).run_to_completion();
        let sampled = Simulation::new(SimConfig {
            trace_sample_every: 4,
            ..base
        })
        .run_to_completion();
        assert!(
            sampled.tx_traces.len() < full.tx_traces.len(),
            "sampling must keep fewer traces ({} vs {})",
            sampled.tx_traces.len(),
            full.tx_traces.len()
        );
        // Kept traces are still causally complete: the same rows appear
        // in the full run with identical phase times.
        for r in &sampled.tx_traces {
            assert_eq!(r.trace % 4, 0, "keep rule is id % n == 0");
            let twin = full
                .tx_traces
                .iter()
                .find(|f| f.trace == r.trace)
                .expect("sampled trace exists in the full run");
            assert_eq!(twin, r, "sampling must not change a kept trace");
        }
    }

    #[test]
    fn pull_mode_traces_record_advert_demand_rounds() {
        let mut sim = Simulation::new(SimConfig {
            target_ledgers: 4,
            n_accounts: 100,
            tx_rate: 10.0,
            flood_mode: FloodMode::Pull,
            ..SimConfig::default()
        });
        let report = sim.run();
        assert!(!report.tx_traces.is_empty());
        let spans = sim.span_events();
        assert!(
            spans
                .iter()
                .any(|s| matches!(s.phase, SpanPhase::AdvertSeen { .. })),
            "pull mode must stamp advert spans"
        );
        assert!(
            spans
                .iter()
                .any(|s| matches!(s.phase, SpanPhase::DemandSent { attempt: 1, .. })),
            "first demands are attempt 1"
        );
        // Transactions still complete the pipeline through pull gossip.
        assert!(report.tx_traces.iter().any(|r| r.applied_ms.is_some()));
    }

    #[test]
    fn watchdog_flags_a_crashed_node_as_stuck_and_lagging() {
        let mut sim = Simulation::new(SimConfig {
            target_ledgers: 7,
            n_accounts: 10,
            ..SimConfig::default()
        });
        let victim = sim.validator_ids()[2];
        // Let the network close a couple of ledgers, then fail-stop one
        // node; the 3/4 majority keeps closing without it.
        while sim.now_ms() < 12_000 && sim.step() {}
        sim.crash(victim);
        let report = sim.run();
        assert!(
            report.health.iter().any(|a| matches!(
                a,
                HealthAlert::StuckSlot { node, .. } if *node == victim
            )),
            "stuck-slot alert for the crashed node: {:?}",
            report.health
        );
        assert!(
            sim.watchdog().ledger_lag()[&victim] > 0,
            "crashed node must lag the tip"
        );
        // The health section carries the alert into the snapshot.
        let health = report.telemetry.get("health").expect("health section");
        let alerts = health.get("alerts").and_then(Json::as_arr).expect("alerts");
        assert!(!alerts.is_empty());
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn network_survives_minority_org_crash() {
        // 5 orgs × 3 validators at 67%: one whole org failing leaves a
        // 4-of-5 quorum — ledgers keep closing (§6's design goal).
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: 5,
                validators_per_org: 3,
                n_watchers: 0,
            },
            n_accounts: 20,
            tx_rate: 1.0,
            target_ledgers: 4,
            seed: 61,
            max_sim_time_ms: 120_000,
            ..SimConfig::default()
        });
        // Crash the last org (keep the observer, node 0, alive).
        for id in [NodeId(12), NodeId(13), NodeId(14)] {
            sim.crash(id);
        }
        let report = sim.run();
        assert!(
            report.ledgers.len() >= 4,
            "4 healthy orgs must keep closing: {}",
            report.ledgers.len()
        );
    }

    #[test]
    fn network_halts_when_two_orgs_crash_but_stays_safe() {
        // Losing 2 of 5 orgs breaks the 4-of-5 threshold: liveness (not
        // safety) is lost, exactly the §3.1.1 trade-off.
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: 5,
                validators_per_org: 3,
                n_watchers: 0,
            },
            n_accounts: 20,
            tx_rate: 0.0,
            target_ledgers: 3,
            seed: 62,
            max_sim_time_ms: 60_000,
            ..SimConfig::default()
        });
        // Crash orgs 3 and 4 (nodes 9..15), keeping the observer alive.
        for id in 9..15u32 {
            sim.crash(NodeId(id));
        }
        let report = sim.run();
        assert!(report.ledgers.is_empty(), "no quorum: no ledgers may close");
        // Safety: live validators never externalized anything divergent.
        let ids = sim.validator_ids();
        let seqs: std::collections::BTreeSet<u64> = ids
            .iter()
            .filter(|id| id.0 < 9)
            .map(|id| sim.validator(*id).ledger_seq())
            .collect();
        assert_eq!(seqs, [1u64].into(), "everyone still at genesis");
    }

    /// Regression: a crashed node's inbound deliveries used to pile up in
    /// the event heap (silently dropped one-by-one at pop). They are now
    /// purged on crash and refused at enqueue, so the heap carries zero
    /// deliveries for a dead node at every point of the run.
    #[test]
    fn crashed_node_accumulates_no_queued_deliveries() {
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 50,
            tx_rate: 10.0,
            target_ledgers: 4,
            seed: 64,
            max_sim_time_ms: 60_000,
            ..SimConfig::default()
        });
        // Let traffic build up, then crash mid-run.
        while sim.now_ms() < 8_000 && sim.step() {}
        sim.crash(NodeId(3));
        assert_eq!(
            sim.pending_deliveries_to(NodeId(3)),
            0,
            "crash must purge queued deliveries"
        );
        let mut max_pending = 0;
        while sim.step() {
            max_pending = max_pending.max(sim.pending_deliveries_to(NodeId(3)));
        }
        assert_eq!(
            max_pending, 0,
            "no deliveries may be enqueued for a crashed node"
        );
        assert!(
            sim.validator(NodeId(0)).ledger_seq() >= 5,
            "the 3-node majority keeps closing"
        );
    }

    #[test]
    fn event_trace_is_reproducible() {
        let cfg = SimConfig {
            target_ledgers: 3,
            n_accounts: 50,
            tx_rate: 5.0,
            seed: 65,
            ..SimConfig::default()
        };
        let run = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            sim.enable_trace();
            sim.run();
            sim.trace().to_vec()
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed must replay the identical event trace");
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 20,
            target_ledgers: 6,
            seed: 66,
            max_sim_time_ms: 300_000,
            ..SimConfig::default()
        });
        // Split 2-2: neither side holds a 3-of-4 quorum, so no ledger can
        // close while the partition is up; after healing at t=60s the
        // network resumes.
        sim.set_partition(
            &[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
            Some(60_000),
        );
        assert!(!sim.link_open(NodeId(0), NodeId(2)));
        assert!(sim.link_open(NodeId(0), NodeId(1)));
        let report = sim.run();
        assert!(!sim.partition_active(), "partition healed by timestamp");
        assert!(
            report.ledgers.len() >= 6,
            "network must resume after heal: {} ledgers",
            report.ledgers.len()
        );
        let first_close = report.ledgers[0].externalized_at_ms;
        assert!(
            first_close >= 60_000,
            "no ledger closes under a quorum-splitting partition ({first_close}ms)"
        );
    }

    #[test]
    fn crashed_then_revived_node_catches_up() {
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 20,
            tx_rate: 2.0,
            target_ledgers: 6,
            seed: 63,
            max_sim_time_ms: 120_000,
            ..SimConfig::default()
        });
        // Let the node do some work first, then fail-stop it mid-run.
        while sim.now_ms() < 8_000 && sim.step() {}
        sim.crash(NodeId(3));
        while sim.now_ms() < 23_000 && sim.step() {}
        let stuck_at = sim.validator(NodeId(3)).ledger_seq();
        let peer_seq = sim.validator(NodeId(0)).ledger_seq();
        assert!(
            peer_seq > stuck_at,
            "majority kept closing while 3 was down"
        );
        // Revival is a full crash-restart: RAM is wiped, recovery runs
        // from the durable store + archive, and the gap comes from a
        // live peer's archive.
        sim.revive(NodeId(3));
        assert!(
            sim.validator(NodeId(3)).ledger_seq() >= peer_seq,
            "revived node replays the missed ledgers from the archive"
        );
        let report = sim.run();
        assert!(report.ledgers.len() >= 6, "3-of-4 majority keeps going");
        assert!(
            sim.validator(NodeId(3)).ledger_seq() >= 7,
            "revived node rejoins consensus and reaches the target: {}",
            sim.validator(NodeId(3)).ledger_seq()
        );
        // Byte-identical history: every sequence both closed hashes equal.
        let h0: BTreeMap<u64, Hash256> = sim.header_hashes(NodeId(0)).into_iter().collect();
        for (seq, hash) in sim.header_hashes(NodeId(3)) {
            if let Some(expected) = h0.get(&seq) {
                assert_eq!(hash, *expected, "header divergence at seq {seq}");
            }
        }
        assert_eq!(sim.restart_count(), 1);
    }

    #[test]
    fn restarted_node_recovers_from_durable_state_alone() {
        // Atomic reboot of a live node: every byte of in-memory state is
        // discarded mid-run; the rebuilt validator has only its durable
        // store and archives, yet rejoins without stalling or diverging.
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 20,
            target_ledgers: 6,
            seed: 67,
            max_sim_time_ms: 120_000,
            ..SimConfig::default()
        });
        while sim.now_ms() < 12_300 && sim.step() {}
        sim.restart(NodeId(2));
        let report = sim.run();
        assert!(report.ledgers.len() >= 6);
        assert!(
            sim.validator(NodeId(2)).ledger_seq() >= 7,
            "restarted node must keep closing ledgers: {}",
            sim.validator(NodeId(2)).ledger_seq()
        );
        let h0: BTreeMap<u64, Hash256> = sim.header_hashes(NodeId(0)).into_iter().collect();
        for (seq, hash) in sim.header_hashes(NodeId(2)) {
            if let Some(expected) = h0.get(&seq) {
                assert_eq!(hash, *expected, "header divergence at seq {seq}");
            }
        }
        // Recovery telemetry lands in the report snapshot.
        let rec = report.telemetry.get("recovery").expect("recovery section");
        assert_eq!(
            rec.get("restarts")
                .and_then(stellar_telemetry::Json::as_f64),
            Some(1.0)
        );
        assert!(rec
            .get("persistence")
            .is_some_and(|j| matches!(j, stellar_telemetry::Json::Bool(true))));
    }

    #[test]
    fn disk_backend_closes_identical_ledgers() {
        // The consensus-critical invariant of the storage subsystem: a
        // network on the disk backend externalizes byte-identical headers
        // to the same network on the RAM backend.
        let cfg = SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 200,
            tx_rate: 10.0,
            target_ledgers: 5,
            seed: 77,
            max_sim_time_ms: 120_000,
            ..SimConfig::default()
        };
        let mem = Simulation::new(SimConfig {
            store_backend: stellar_store::BackendKind::Mem,
            ..cfg.clone()
        });
        let disk = Simulation::new(SimConfig {
            store_backend: stellar_store::BackendKind::Disk,
            ..cfg
        });
        let (mut mem, mut disk) = (mem, disk);
        let mem_report = mem.run();
        let disk_report = disk.run();
        assert_eq!(mem_report.ledgers.len(), disk_report.ledgers.len());
        let mem_hashes: BTreeMap<u64, Hash256> = mem.header_hashes(NodeId(0)).into_iter().collect();
        let disk_hashes: BTreeMap<u64, Hash256> =
            disk.header_hashes(NodeId(0)).into_iter().collect();
        assert_eq!(mem_hashes, disk_hashes, "backends must not diverge");
        // The disk run actually ran on disk and reported its I/O.
        let store = disk_report.telemetry.get("store").expect("store section");
        assert!(store
            .get("backend")
            .is_some_and(|j| matches!(j, stellar_telemetry::Json::Str(s) if s == "disk")));
        assert!(store
            .get("disk_bytes")
            .and_then(stellar_telemetry::Json::as_f64)
            .is_some_and(|b| b > 0.0));
    }

    #[test]
    fn disk_backend_restart_recovers_from_data_disk() {
        // On the disk backend a crash-restart takes the fast path:
        // ledger store + bucket list rebuilt from the durable data disk
        // and cross-checked against the write-ahead LCL record — no
        // genesis replay — then the node rejoins without divergence.
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 50,
            tx_rate: 5.0,
            target_ledgers: 6,
            seed: 91,
            max_sim_time_ms: 120_000,
            store_backend: stellar_store::BackendKind::Disk,
            ..SimConfig::default()
        });
        while sim.now_ms() < 12_300 && sim.step() {}
        sim.restart(NodeId(2));
        assert_eq!(
            sim.validator(NodeId(2))
                .herder
                .telemetry
                .registry
                .counter("recovery.durable_store"),
            1,
            "restart must recover from the durable data disk"
        );
        let report = sim.run();
        assert!(report.ledgers.len() >= 6);
        assert!(
            sim.validator(NodeId(2)).ledger_seq() >= 7,
            "recovered node keeps closing ledgers: {}",
            sim.validator(NodeId(2)).ledger_seq()
        );
        let h0: BTreeMap<u64, Hash256> = sim.header_hashes(NodeId(0)).into_iter().collect();
        for (seq, hash) in sim.header_hashes(NodeId(2)) {
            if let Some(expected) = h0.get(&seq) {
                assert_eq!(hash, *expected, "header divergence at seq {seq}");
            }
        }
    }

    #[test]
    fn disk_backend_restart_with_torn_data_disk_falls_back() {
        // A torn data-disk write is caught by the checksums: the fast
        // path refuses and the node re-images from genesis + archive —
        // slower, but never corrupt, and it still rejoins cleanly.
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 30,
            target_ledgers: 5,
            seed: 92,
            max_sim_time_ms: 120_000,
            store_backend: stellar_store::BackendKind::Disk,
            ..SimConfig::default()
        });
        while sim.now_ms() < 12_300 && sim.step() {}
        // Arm a device fault so unsynced bytes exist, then tear them.
        sim.fail_next_fsyncs(NodeId(1), 1);
        while sim.now_ms() < 17_300 && sim.step() {}
        sim.tear_next_crash(NodeId(1));
        sim.restart(NodeId(1));
        let report = sim.run();
        assert!(report.ledgers.len() >= 5);
        assert!(
            sim.validator(NodeId(1)).ledger_seq() >= 6,
            "fallback recovery still rejoins: {}",
            sim.validator(NodeId(1)).ledger_seq()
        );
        let h0: BTreeMap<u64, Hash256> = sim.header_hashes(NodeId(0)).into_iter().collect();
        for (seq, hash) in sim.header_hashes(NodeId(1)) {
            if let Some(expected) = h0.get(&seq) {
                assert_eq!(hash, *expected, "header divergence at seq {seq}");
            }
        }
    }

    #[test]
    fn restart_without_persistence_forgets_scp_votes() {
        // With persistence disabled the durable store holds nothing: a
        // restarted node comes back with archive state only (closed
        // ledgers survive — archives model external storage) but zero
        // SCP voting state. This is the amnesia configuration whose
        // safety consequences the chaos recovery scenarios demonstrate.
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 20,
            target_ledgers: 4,
            seed: 68,
            persistence: false,
            max_sim_time_ms: 120_000,
            ..SimConfig::default()
        });
        while sim.now_ms() < 12_300 && sim.step() {}
        let seq_before = sim.validator(NodeId(1)).ledger_seq();
        assert!(seq_before > 1, "some ledgers closed before the restart");
        sim.restart(NodeId(1));
        let v = sim.validator(NodeId(1));
        assert_eq!(
            v.scp.live_slots(),
            0,
            "no durable snapshot: all voting state is forgotten"
        );
        assert!(
            v.ledger_seq() >= seq_before,
            "closed ledgers still recover from the (external) archive"
        );
        assert!(!v.herder.persist.is_enabled());
    }
}

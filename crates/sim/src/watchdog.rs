//! Health watchdog: liveness gauges over the running network.
//!
//! The invariant monitor (crates/chaos) proves *safety* after the fact;
//! the watchdog watches *health* while the run is in flight, from the
//! same per-node observations a production operator dashboard would
//! poll: each node's current ledger sequence against the simulated
//! clock. It raises typed [`HealthAlert`]s for
//!
//! * **stuck slots** — a node whose ledger sequence has not advanced
//!   for longer than the bound (crash, partition, or lost liveness);
//! * **slow closes** — a close that took far longer than the 5-second
//!   pacing target (the §7.3 close-rate regression signal);
//!
//! and keeps a **ledger-lag** gauge (how far each node trails the most
//! advanced node). Alerts are deterministic: they depend only on
//! simulated time and observed sequences, so a chaos replay reproduces
//! them byte-for-byte alongside the violations they contextualize.

use std::collections::{BTreeMap, BTreeSet};
use stellar_scp::NodeId;
use stellar_telemetry::Json;

/// Watchdog thresholds.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// A node whose ledger has not advanced for this long is stuck.
    /// Default: three 5-second ledger intervals.
    pub stuck_slot_ms: u64,
    /// A close interval longer than this raises a slow-close alert.
    /// Default: 8000 ms (the 5-second pacing plus generous slack).
    pub slow_close_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stuck_slot_ms: 15_000,
            slow_close_ms: 8_000,
        }
    }
}

/// A health finding, timestamped in simulated time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HealthAlert {
    /// A node's ledger sequence stopped advancing.
    StuckSlot {
        /// The stuck node.
        node: NodeId,
        /// The sequence it is stuck at (next close would be `seq + 1`).
        seq: u64,
        /// How long it had been stuck when detected (ms).
        stuck_for_ms: u64,
        /// Simulated detection time (ms).
        detected_at_ms: u64,
    },
    /// A ledger close took longer than the pacing bound.
    SlowClose {
        /// The slow node.
        node: NodeId,
        /// The sequence that closed slowly.
        seq: u64,
        /// Observed close interval (ms).
        interval_ms: u64,
        /// Simulated detection time (ms).
        detected_at_ms: u64,
    },
}

impl HealthAlert {
    /// The alert as a JSON object (report attachment).
    pub fn to_json(&self) -> Json {
        match self {
            HealthAlert::StuckSlot {
                node,
                seq,
                stuck_for_ms,
                detected_at_ms,
            } => Json::obj()
                .set("kind", "stuck_slot")
                .set("node", u64::from(node.0))
                .set("seq", *seq)
                .set("stuck_for_ms", *stuck_for_ms)
                .set("detected_at_ms", *detected_at_ms),
            HealthAlert::SlowClose {
                node,
                seq,
                interval_ms,
                detected_at_ms,
            } => Json::obj()
                .set("kind", "slow_close")
                .set("node", u64::from(node.0))
                .set("seq", *seq)
                .set("interval_ms", *interval_ms)
                .set("detected_at_ms", *detected_at_ms),
        }
    }
}

/// Per-node progress snapshot the watchdog keeps between observations.
#[derive(Clone, Copy, Debug)]
struct Progress {
    seq: u64,
    since_ms: u64,
}

/// The watchdog. Feed it `(node, ledger_seq)` snapshots at a regular
/// simulated cadence via [`HealthWatchdog::observe`].
#[derive(Clone, Debug, Default)]
pub struct HealthWatchdog {
    cfg: WatchdogConfig,
    progress: BTreeMap<NodeId, Progress>,
    /// Stuck alerts already raised, keyed `(node, seq)` so a node stuck
    /// on one slot alerts once, not once per observation.
    stuck_raised: BTreeSet<(NodeId, u64)>,
    alerts: Vec<HealthAlert>,
    /// Scheduled chaos downtime per node: `(from_ms, until_ms)` windows.
    /// Alerts whose stall interval overlaps a window are deliberate fault
    /// injection, not operator-facing health findings.
    expected_windows: BTreeMap<NodeId, Vec<(u64, u64)>>,
    expected_alerts: Vec<HealthAlert>,
}

impl HealthWatchdog {
    /// A watchdog with the given thresholds.
    pub fn new(cfg: WatchdogConfig) -> HealthWatchdog {
        HealthWatchdog {
            cfg,
            ..HealthWatchdog::default()
        }
    }

    /// Registers a scheduled-downtime window for `node`: deliberate chaos
    /// injection (staged org failure, crash schedule). Stuck-slot and
    /// slow-close alerts whose stall interval overlaps the window are
    /// annotated as *expected* — kept for the report, but excluded from
    /// [`HealthWatchdog::alerts`]. Use `u64::MAX` for an open-ended
    /// window (a crash with no scheduled revival).
    pub fn expect_downtime(&mut self, node: NodeId, from_ms: u64, until_ms: u64) {
        self.expected_windows
            .entry(node)
            .or_default()
            .push((from_ms, until_ms));
    }

    /// Whether a stall of `node` spanning `[from_ms, to_ms]` overlaps a
    /// registered downtime window.
    fn stall_is_expected(&self, node: NodeId, from_ms: u64, to_ms: u64) -> bool {
        self.expected_windows
            .get(&node)
            .is_some_and(|windows| windows.iter().any(|(s, e)| from_ms < *e && to_ms > *s))
    }

    /// One observation round: every node's current ledger sequence at
    /// simulated time `now_ms`. Raises stuck-slot and slow-close alerts
    /// as thresholds are crossed.
    pub fn observe(&mut self, now_ms: u64, seqs: &[(NodeId, u64)]) {
        for (node, seq) in seqs {
            match self.progress.get_mut(node) {
                None => {
                    self.progress.insert(
                        *node,
                        Progress {
                            seq: *seq,
                            since_ms: now_ms,
                        },
                    );
                }
                Some(p) if *seq > p.seq => {
                    let interval = now_ms.saturating_sub(p.since_ms);
                    let since = p.since_ms;
                    // Sequence jumps (catch-up replay) close several
                    // ledgers at once; the interval belongs to the whole
                    // jump and still flags a node that fell behind.
                    p.seq = *seq;
                    p.since_ms = now_ms;
                    if interval > self.cfg.slow_close_ms {
                        let alert = HealthAlert::SlowClose {
                            node: *node,
                            seq: *seq,
                            interval_ms: interval,
                            detected_at_ms: now_ms,
                        };
                        if self.stall_is_expected(*node, since, now_ms) {
                            self.expected_alerts.push(alert);
                        } else {
                            self.alerts.push(alert);
                        }
                    }
                }
                Some(p) => {
                    let stuck_for = now_ms.saturating_sub(p.since_ms);
                    let since = p.since_ms;
                    let seq = p.seq;
                    if stuck_for >= self.cfg.stuck_slot_ms && self.stuck_raised.insert((*node, seq))
                    {
                        let alert = HealthAlert::StuckSlot {
                            node: *node,
                            seq,
                            stuck_for_ms: stuck_for,
                            detected_at_ms: now_ms,
                        };
                        if self.stall_is_expected(*node, since, now_ms) {
                            self.expected_alerts.push(alert);
                        } else {
                            self.alerts.push(alert);
                        }
                    }
                }
            }
        }
    }

    /// Each node's distance behind the most advanced node, from the last
    /// observation (the ledger-lag gauge).
    pub fn ledger_lag(&self) -> BTreeMap<NodeId, u64> {
        let max_seq = self.progress.values().map(|p| p.seq).max().unwrap_or(0);
        self.progress
            .iter()
            .map(|(node, p)| (*node, max_seq - p.seq))
            .collect()
    }

    /// All *unexpected* alerts raised so far, in detection order.
    /// Stalls during scheduled chaos downtime live in
    /// [`HealthWatchdog::expected_alerts`] instead.
    pub fn alerts(&self) -> &[HealthAlert] {
        &self.alerts
    }

    /// Alerts that overlapped a registered downtime window: deliberate
    /// fault injection, annotated for the report rather than surfaced as
    /// health violations.
    pub fn expected_alerts(&self) -> &[HealthAlert] {
        &self.expected_alerts
    }

    /// The health section of a report: alert list plus the lag gauge.
    pub fn to_json(&self) -> Json {
        let lag = self
            .ledger_lag()
            .into_iter()
            .fold(Json::obj(), |j, (node, lag)| {
                j.set(&format!("n{}", node.0), lag)
            });
        Json::obj()
            .set(
                "alerts",
                Json::Arr(self.alerts.iter().map(HealthAlert::to_json).collect()),
            )
            .set(
                "expected_alerts",
                Json::Arr(
                    self.expected_alerts
                        .iter()
                        .map(HealthAlert::to_json)
                        .collect(),
                ),
            )
            .set("ledger_lag", lag)
            .set("max_ledger_lag", self.max_ledger_lag())
    }

    /// The worst current lag (0 when every node is at the tip).
    pub fn max_ledger_lag(&self) -> u64 {
        self.ledger_lag().into_values().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(pairs: &[(u32, u64)]) -> Vec<(NodeId, u64)> {
        pairs.iter().map(|(n, s)| (NodeId(*n), *s)).collect()
    }

    #[test]
    fn healthy_progress_raises_nothing() {
        let mut w = HealthWatchdog::new(WatchdogConfig::default());
        for step in 0..5u64 {
            let now = 1000 + step * 5000;
            w.observe(now, &seqs(&[(0, 2 + step), (1, 2 + step)]));
        }
        assert!(w.alerts().is_empty());
        assert_eq!(w.max_ledger_lag(), 0);
    }

    #[test]
    fn stuck_slot_alerts_once_per_slot() {
        let mut w = HealthWatchdog::new(WatchdogConfig::default());
        w.observe(0, &seqs(&[(0, 5)]));
        w.observe(14_000, &seqs(&[(0, 5)]));
        assert!(w.alerts().is_empty(), "inside the bound");
        w.observe(16_000, &seqs(&[(0, 5)]));
        w.observe(30_000, &seqs(&[(0, 5)])); // still stuck: no duplicate
        assert_eq!(w.alerts().len(), 1);
        let HealthAlert::StuckSlot {
            node,
            seq,
            stuck_for_ms,
            ..
        } = &w.alerts()[0]
        else {
            panic!("expected StuckSlot");
        };
        assert_eq!((*node, *seq, *stuck_for_ms), (NodeId(0), 5, 16_000));
        // Advancing and sticking on the *next* slot alerts again.
        w.observe(31_000, &seqs(&[(0, 6)]));
        w.observe(50_000, &seqs(&[(0, 6)]));
        assert_eq!(w.alerts().len(), 3, "slow close + new stuck slot");
    }

    #[test]
    fn slow_close_measures_the_interval() {
        let mut w = HealthWatchdog::new(WatchdogConfig::default());
        w.observe(1000, &seqs(&[(0, 2)]));
        w.observe(6000, &seqs(&[(0, 3)])); // 5 s: fine
        w.observe(16_000, &seqs(&[(0, 4)])); // 10 s: slow
        assert_eq!(w.alerts().len(), 1);
        let HealthAlert::SlowClose {
            seq, interval_ms, ..
        } = &w.alerts()[0]
        else {
            panic!("expected SlowClose");
        };
        assert_eq!((*seq, *interval_ms), (4, 10_000));
    }

    #[test]
    fn ledger_lag_tracks_the_tip() {
        let mut w = HealthWatchdog::new(WatchdogConfig::default());
        w.observe(0, &seqs(&[(0, 10), (1, 7), (2, 10)]));
        let lag = w.ledger_lag();
        assert_eq!(lag[&NodeId(0)], 0);
        assert_eq!(lag[&NodeId(1)], 3);
        assert_eq!(w.max_ledger_lag(), 3);
        let j = w.to_json();
        assert_eq!(
            j.get("max_ledger_lag").and_then(Json::as_f64),
            Some(3.0),
            "{}",
            j.render()
        );
    }

    #[test]
    fn scheduled_downtime_annotates_alerts_as_expected() {
        let mut w = HealthWatchdog::new(WatchdogConfig::default());
        // Node 0 is deliberately failed from 10 s to 40 s; node 1 keeps
        // closing on the 5-second cadence throughout.
        w.expect_downtime(NodeId(0), 10_000, 40_000);
        for step in 0..7u64 {
            let now = 10_000 + step * 5_000;
            w.observe(now, &seqs(&[(0, 3), (1, 3 + step)]));
        }
        assert!(w.alerts().is_empty(), "{:?}", w.alerts());
        assert_eq!(w.expected_alerts().len(), 1, "node 0's stall is staged");
        // Node 0 revives: the catch-up close spans the window, so the
        // slow-close alert is expected too.
        w.observe(45_000, &seqs(&[(0, 4), (1, 10)]));
        assert!(w.alerts().is_empty(), "{:?}", w.alerts());
        assert_eq!(w.expected_alerts().len(), 2, "{:?}", w.expected_alerts());
        // Node 1 now stalls *outside* any window while node 0 closes
        // normally: a real health finding.
        for step in 1..=4u64 {
            let now = 45_000 + step * 5_000;
            w.observe(now, &seqs(&[(0, 4 + step), (1, 10)]));
        }
        assert_eq!(w.alerts().len(), 1, "{:?}", w.alerts());
        let HealthAlert::StuckSlot { node, .. } = &w.alerts()[0] else {
            panic!("expected StuckSlot");
        };
        assert_eq!(*node, NodeId(1));
        // Both lists render in the report JSON.
        let j = w.to_json();
        assert_eq!(
            j.get("expected_alerts")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(2)
        );
        let parsed = Json::parse(&j.render()).expect("valid JSON");
        assert_eq!(parsed, j);
    }

    #[test]
    fn alerts_render_as_json() {
        let mut w = HealthWatchdog::new(WatchdogConfig {
            stuck_slot_ms: 10,
            slow_close_ms: 5,
        });
        w.observe(0, &seqs(&[(3, 1)]));
        w.observe(20, &seqs(&[(3, 1)]));
        let j = w.to_json();
        let alerts = j.get("alerts").and_then(Json::as_arr).expect("array");
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].get("kind").and_then(Json::as_str),
            Some("stuck_slot")
        );
        let parsed = Json::parse(&j.render()).expect("valid JSON");
        assert_eq!(parsed, j);
    }
}

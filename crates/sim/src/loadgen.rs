//! Synthetic load generation (the `generateload` runtime query of §7.3).
//!
//! Builds a genesis ledger with N funded accounts and emits XLM payments
//! between random accounts at a target rate with Poisson arrivals —
//! "although Stellar supports various trading features … we focused on
//! simple payments."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stellar_crypto::sign::KeyPair;
use stellar_ledger::amount::{xlm, BASE_FEE};
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::{AccountEntry, AccountId};
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};

/// Seed namespace for synthetic user keys (distinct from validator keys).
const USER_KEY_NAMESPACE: u64 = 0x5EED_CAFE;

/// Deterministic keypair for synthetic account `i`.
pub fn user_keys(i: u64) -> KeyPair {
    KeyPair::from_seed(USER_KEY_NAMESPACE.wrapping_add(i.wrapping_mul(2654435761)))
}

/// Account id of synthetic account `i`.
pub fn user_account(i: u64) -> AccountId {
    AccountId(user_keys(i).public())
}

/// Builds the genesis store with `n_accounts` accounts, each funded with
/// `funding` XLM.
pub fn genesis_store(n_accounts: u64, funding_xlm: i64) -> LedgerStore {
    let mut store = LedgerStore::new();
    for i in 0..n_accounts {
        store.put_account(AccountEntry::new(user_account(i), xlm(funding_xlm)));
    }
    store
}

/// Poisson payment generator over the synthetic accounts.
pub struct LoadGen {
    n_accounts: u64,
    rate_tps: f64,
    rng: StdRng,
    /// Next sequence number per account index (sparse).
    next_seq: std::collections::HashMap<u64, u64>,
    /// Total transactions generated.
    pub generated: u64,
}

impl LoadGen {
    /// Creates a generator at `rate_tps` transactions per second.
    pub fn new(n_accounts: u64, rate_tps: f64, seed: u64) -> LoadGen {
        LoadGen {
            n_accounts,
            rate_tps,
            rng: StdRng::seed_from_u64(seed ^ 0x10AD),
            next_seq: std::collections::HashMap::new(),
            generated: 0,
        }
    }

    /// Milliseconds until the next arrival (exponential inter-arrival).
    pub fn next_arrival_ms(&mut self) -> u64 {
        if self.rate_tps <= 0.0 {
            return u64::MAX / 4;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let dt_s = -u.ln() / self.rate_tps;
        (dt_s * 1000.0).ceil() as u64
    }

    /// Generates one signed random payment.
    pub fn make_payment(&mut self) -> TransactionEnvelope {
        let src = self.rng.gen_range(0..self.n_accounts);
        let mut dst = self.rng.gen_range(0..self.n_accounts);
        if dst == src {
            dst = (dst + 1) % self.n_accounts;
        }
        let seq = {
            let e = self.next_seq.entry(src).or_insert(0);
            *e += 1;
            *e
        };
        let keys = user_keys(src);
        let tx = Transaction {
            source: user_account(src),
            seq_num: seq,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: user_account(dst),
                    asset: Asset::Native,
                    amount: 1 + self.rng.gen_range(0i64..1000),
                },
            }],
        };
        self.generated += 1;
        TransactionEnvelope::sign(tx, &[&keys])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_has_funded_accounts() {
        let s = genesis_store(100, 50);
        assert_eq!(s.account_count(), 100);
        assert_eq!(s.account(user_account(7)).unwrap().balance, xlm(50));
    }

    #[test]
    fn payments_are_valid_against_genesis() {
        let s = genesis_store(100, 50);
        let mut lg = LoadGen::new(100, 10.0, 1);
        let mut q = stellar_herder::TxQueue::new();
        for _ in 0..20 {
            q.submit(
                &s,
                lg.make_payment(),
                &mut stellar_ledger::sigcache::SigVerifyCache::disabled(),
            )
            .expect("generated tx must be admissible");
        }
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn arrival_rate_is_roughly_right() {
        let mut lg = LoadGen::new(10, 100.0, 2);
        let total: u64 = (0..1000).map(|_| lg.next_arrival_ms()).sum();
        let mean = total as f64 / 1000.0;
        // 100 tps ⇒ ~10 ms inter-arrival (ceil bias tolerated).
        assert!((8.0..14.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn sequences_increase_per_account() {
        let mut lg = LoadGen::new(1, 1.0, 3);
        // Single account: strictly increasing sequence numbers.
        let e1 = lg.make_payment();
        let e2 = lg.make_payment();
        assert_eq!(e1.tx.seq_num, 1);
        assert_eq!(e2.tx.seq_num, 2);
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut lg = LoadGen::new(10, 0.0, 4);
        assert!(lg.next_arrival_ms() > 1_000_000_000);
    }
}

//! The simulation event queue.
//!
//! A binary heap ordered by `(time, sequence)` — the sequence number makes
//! simultaneous events deterministic. Timer events carry a version per
//! `(node, slot, kind)`; re-arming bumps the version so stale expiries are
//! ignored, giving SCP the replace/cancel timer semantics its driver
//! contract requires.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use stellar_crypto::Hash256;
use stellar_herder::validator::Outputs;
use stellar_ledger::tx::TransactionEnvelope;
use stellar_overlay::FloodMessage;
use stellar_scp::driver::TimerKind;
use stellar_scp::{NodeId, SlotIndex};

/// A flood payload with its content id and wire size precomputed, shared
/// between the many delivery events one broadcast fans out into.
#[derive(Clone, Debug)]
pub struct Flooded {
    /// Content address (flood de-duplication key).
    pub id: Hash256,
    /// Encoded size in bytes (traffic accounting).
    pub size: usize,
    /// The payload itself.
    pub msg: Arc<FloodMessage>,
}

impl Flooded {
    /// Wraps a message, hashing and sizing it once.
    pub fn new(msg: FloodMessage) -> Flooded {
        Flooded {
            id: msg.id(),
            size: msg.wire_size(),
            msg: Arc::new(msg),
        }
    }
}

/// A scheduled occurrence.
#[derive(Clone, Debug)]
pub enum Event {
    /// A flooded message arrives at `to` from peer `from`.
    Deliver {
        /// Receiving node.
        to: NodeId,
        /// Sending peer (for relay suppression).
        from: NodeId,
        /// The payload.
        msg: Flooded,
    },
    /// An SCP timer expires (if `version` is still current).
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Slot the timer belongs to.
        slot: SlotIndex,
        /// Nomination or ballot timer.
        kind: TimerKind,
        /// Arm version; stale versions are no-ops.
        version: u64,
    },
    /// A node should start consensus on its next ledger.
    TriggerLedger {
        /// The node to trigger.
        node: NodeId,
    },
    /// A client submits a transaction to a node.
    SubmitTx {
        /// Receiving node.
        to: NodeId,
        /// The transaction.
        tx: Box<TransactionEnvelope>,
    },
    /// A pull-mode flood tick: the node drains its advert batch and
    /// retries expired demands. Armed lazily — only while the node's
    /// demand scheduler has work — so idle networks schedule no ticks.
    PullTick {
        /// The ticking node.
        node: NodeId,
    },
    /// A horizon client runs a query batch against the observer's
    /// pipeline (wall-clock timed; read-only, never perturbs consensus).
    HorizonQuery,
    /// The observer's horizon pipeline drains its close-event feed (only
    /// scheduled when ingestion runs on a cadence instead of per close).
    HorizonIngest,
}

#[derive(Debug)]
struct Queued {
    time: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Deterministic time-ordered event queue with versioned timers.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Queued>>,
    next_seq: u64,
    timer_versions: BTreeMap<(NodeId, SlotIndex, TimerKind), u64>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `time` (ms).
    pub fn push(&mut self, time: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Queued { time, seq, event }));
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|Reverse(q)| (q.time, q.event))
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(q)| q.time)
    }

    /// Removes every pending `Deliver` addressed to `node`, returning how
    /// many were purged. Called on crash so a dead node's inbound traffic
    /// doesn't sit in the heap for the rest of the run.
    pub fn purge_deliveries_to(&mut self, node: NodeId) -> usize {
        let before = self.heap.len();
        let kept: Vec<Reverse<Queued>> = self
            .heap
            .drain()
            .filter(|Reverse(q)| !matches!(q.event, Event::Deliver { to, .. } if to == node))
            .collect();
        self.heap = kept.into();
        before - self.heap.len()
    }

    /// Number of pending `Deliver` events addressed to `node`.
    pub fn count_deliveries_to(&self, node: NodeId) -> usize {
        self.heap
            .iter()
            .filter(|Reverse(q)| matches!(q.event, Event::Deliver { to, .. } if to == node))
            .count()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Arms (or cancels) a timer per the SCP driver contract; returns the
    /// event to schedule, if any.
    pub fn arm_timer(
        &mut self,
        now: u64,
        node: NodeId,
        slot: SlotIndex,
        kind: TimerKind,
        delay_ms: Option<u64>,
    ) {
        let v = self.timer_versions.entry((node, slot, kind)).or_insert(0);
        *v += 1;
        let version = *v;
        if let Some(d) = delay_ms {
            self.push(
                now + d,
                Event::Timer {
                    node,
                    slot,
                    kind,
                    version,
                },
            );
        }
    }

    /// Whether a timer event is still current.
    pub fn timer_current(
        &self,
        node: NodeId,
        slot: SlotIndex,
        kind: TimerKind,
        version: u64,
    ) -> bool {
        self.timer_versions.get(&(node, slot, kind)) == Some(&version)
    }

    /// Applies a validator's buffered timer requests.
    pub fn apply_outputs_timers(&mut self, now: u64, node: NodeId, outputs: &Outputs) {
        for (slot, kind, delay) in &outputs.timers {
            self.arm_timer(now, node, *slot, *kind, delay.map(|d| d.as_millis() as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(10, Event::TriggerLedger { node: NodeId(1) });
        q.push(5, Event::TriggerLedger { node: NodeId(2) });
        q.push(5, Event::TriggerLedger { node: NodeId(3) });
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::TriggerLedger { node } => (t, node.0),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(5, 2), (5, 3), (10, 1)]);
    }

    #[test]
    fn rearming_invalidates_old_timer() {
        let mut q = EventQueue::new();
        q.arm_timer(0, NodeId(1), 1, TimerKind::Ballot, Some(100));
        let (_, e1) = q.pop().unwrap();
        let v1 = match e1 {
            Event::Timer { version, .. } => version,
            _ => unreachable!(),
        };
        assert!(q.timer_current(NodeId(1), 1, TimerKind::Ballot, v1));
        // Re-arm: v1 becomes stale.
        q.arm_timer(0, NodeId(1), 1, TimerKind::Ballot, Some(200));
        assert!(!q.timer_current(NodeId(1), 1, TimerKind::Ballot, v1));
        let (_, e2) = q.pop().unwrap();
        match e2 {
            Event::Timer { version, .. } => {
                assert!(q.timer_current(NodeId(1), 1, TimerKind::Ballot, version));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn cancel_leaves_no_event_and_bumps_version() {
        let mut q = EventQueue::new();
        q.arm_timer(0, NodeId(1), 1, TimerKind::Nomination, Some(100));
        q.arm_timer(0, NodeId(1), 1, TimerKind::Nomination, None);
        // One stale event remains in the heap; it must be non-current.
        let (_, e) = q.pop().unwrap();
        match e {
            Event::Timer { version, .. } => {
                assert!(!q.timer_current(NodeId(1), 1, TimerKind::Nomination, version));
            }
            _ => unreachable!(),
        }
        assert!(q.is_empty());
    }
}

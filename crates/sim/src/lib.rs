//! Deterministic discrete-event simulation of Stellar networks.
//!
//! The paper's evaluation (§7) ran on EC2 instances; this crate replaces
//! the testbed with a seeded discrete-event simulator (see `DESIGN.md`,
//! substitutions). Network propagation is *simulated* (configurable
//! per-link latency distributions); transaction application and bucket
//! merging are *real* — every simulated validator runs the actual ledger
//! and bucket-list code, and ledger-update latency is measured with a
//! wall clock, exactly the split the paper's latency components have.
//!
//! * [`latency`] — seeded link-latency models (LAN, same-region EC2, WAN);
//! * [`events`] — the event queue (deliveries, timers, ledger triggers,
//!   load arrivals) with versioned timer cancellation;
//! * [`loadgen`] — the `generateload` equivalent: synthetic accounts and
//!   Poisson payment load (§7.3);
//! * [`simulation`] — the engine: validators + overlay + clock;
//! * [`metrics`] — per-ledger latency decomposition (nomination,
//!   balloting, ledger update), timeout counters, message and byte
//!   accounting, percentile helpers;
//! * [`scenario`] — canned topologies: the §7.3 controlled setups
//!   (full-mesh majority quorums) and the Fig. 7-like tiered public
//!   network;
//! * [`tracing`] — cross-node trace aggregation: merges per-node span
//!   streams into per-transaction rows and the submit→apply phase-level
//!   latency decomposition (p50/p99 per phase, Fig. 7-style CDF);
//! * [`watchdog`] — the health watchdog: stuck-slot and slow-close
//!   detection plus the ledger-lag gauge, feeding sim and chaos reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod latency;
pub mod loadgen;
pub mod metrics;
pub mod scenario;
pub mod simulation;
pub mod tracing;
pub mod watchdog;

pub use latency::LatencyModel;
pub use metrics::{percentile, traffic_to_json, SimReport};
pub use scenario::Scenario;
pub use simulation::{SimConfig, Simulation};
pub use tracing::{build_tx_traces, phase_stats, render_causal_trace, PhaseStats, TxTrace};
pub use watchdog::{HealthAlert, HealthWatchdog, WatchdogConfig};

//! Canned experiment topologies.
//!
//! * [`Scenario::ControlledMesh`] — the §7.3 setup: "We configured every
//!   validator to know about every other validator (a worst-case scenario
//!   for SCP), with quorum slices set to any simple majority of nodes (so
//!   as to maximize the number of different quorums)", on same-region
//!   links.
//! * [`Scenario::ByzantineMesh`] — the same mesh with `n − f` BFT-style
//!   slices, for adversary experiments that need Byzantine tolerance.
//! * [`Scenario::PublicNetwork`] — a Fig. 7-shaped network: a handful of
//!   tier-one organizations running 3–4 validators each (synthesized
//!   Fig. 6 quorum sets via `stellar-quorum`), watcher nodes hanging off
//!   the core, and WAN latencies.

use crate::latency::LatencyModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stellar_overlay::PeerGraph;
use stellar_quorum::tiers::{synthesize_all, OrgConfig, Quality};
use stellar_scp::{NodeId, QuorumSet};

/// A network shape for an experiment run.
#[derive(Clone, Debug)]
pub enum Scenario {
    /// §7.3 controlled experiments: full mesh, majority slices, LAN.
    ControlledMesh {
        /// Number of validators (the paper sweeps 4–43).
        n_validators: u32,
    },
    /// Full mesh over LAN like [`Scenario::ControlledMesh`], but with
    /// `n - f` Byzantine-tolerant slices (`f = ⌊(n-1)/3⌋`) instead of
    /// simple majority. Majority slices maximize the number of quorums
    /// but tolerate **zero** Byzantine nodes — deleting even one from
    /// the slices admits disjoint quorums — so adversary experiments
    /// (the chaos subsystem) use this shape to keep a non-empty intact
    /// set while under attack.
    ByzantineMesh {
        /// Number of validators.
        n_validators: u32,
    },
    /// §7.2-like public network: tiered orgs + watchers over WAN.
    PublicNetwork {
        /// Number of tier-one organizations (paper: 5 orgs, 17 nodes).
        n_orgs: u32,
        /// Validators per organization.
        validators_per_org: u32,
        /// Non-validating watcher nodes.
        n_watchers: u32,
    },
    /// A randomized FBAS family from `stellar_quorum::topology`
    /// (tier-weighted / scale-free / uniform), instantiated as a sim
    /// topology over WAN links. The spec's own seed drives quorum-set
    /// sampling; the scenario seed drives the peer graph.
    Generated {
        /// The topology generator spec.
        spec: stellar_quorum::TopologySpec,
    },
}

/// A fully instantiated topology.
#[derive(Clone, Debug)]
pub struct BuiltScenario {
    /// Per-node quorum sets (validators only).
    pub qsets: Vec<(NodeId, QuorumSet)>,
    /// The peer graph (validators + watchers).
    pub graph: PeerGraph,
    /// The link-latency model.
    pub latency: LatencyModel,
    /// All validator ids.
    pub validators: Vec<NodeId>,
}

fn mesh(n_validators: u32, slices: impl Fn(Vec<NodeId>) -> QuorumSet) -> BuiltScenario {
    let ids: Vec<NodeId> = (0..n_validators).map(NodeId).collect();
    let qset = slices(ids.clone());
    BuiltScenario {
        qsets: ids.iter().map(|id| (*id, qset.clone())).collect(),
        graph: PeerGraph::full_mesh(&ids),
        latency: LatencyModel::lan(),
        validators: ids,
    }
}

impl Scenario {
    /// Instantiates the scenario (deterministic given `seed`).
    pub fn build(&self, seed: u64) -> BuiltScenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7090);
        match self {
            Scenario::ControlledMesh { n_validators } => mesh(*n_validators, QuorumSet::majority),
            Scenario::ByzantineMesh { n_validators } => mesh(*n_validators, QuorumSet::byzantine),
            Scenario::PublicNetwork {
                n_orgs,
                validators_per_org,
                n_watchers,
            } => {
                let mut orgs = Vec::new();
                let mut next = 0u32;
                for o in 0..*n_orgs {
                    let members: Vec<NodeId> =
                        (next..next + validators_per_org).map(NodeId).collect();
                    next += validators_per_org;
                    orgs.push(OrgConfig::new(&format!("org{o}"), members, Quality::High));
                }
                let qsets = synthesize_all(&orgs);
                let validators: Vec<NodeId> = qsets.iter().map(|(n, _)| *n).collect();
                let watchers: Vec<NodeId> = (1000..1000 + n_watchers).map(NodeId).collect();
                let graph = PeerGraph::tiered_core(&validators, &watchers, 3, &mut rng);
                BuiltScenario {
                    qsets,
                    graph,
                    latency: LatencyModel::wan(),
                    validators,
                }
            }
            Scenario::Generated { spec } => {
                let topo = stellar_quorum::generate(spec);
                let qsets: Vec<(NodeId, QuorumSet)> = topo
                    .system
                    .nodes
                    .iter()
                    .map(|(n, q)| (*n, q.clone()))
                    .collect();
                let validators: Vec<NodeId> = qsets.iter().map(|(n, _)| *n).collect();
                let graph = PeerGraph::tiered_core(&validators, &[], 3, &mut rng);
                BuiltScenario {
                    qsets,
                    graph,
                    latency: LatencyModel::wan(),
                    validators,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_quorum::intersection::{enjoys_quorum_intersection, FbaSystem};

    #[test]
    fn controlled_mesh_shape() {
        let b = Scenario::ControlledMesh { n_validators: 4 }.build(1);
        assert_eq!(b.validators.len(), 4);
        assert_eq!(b.graph.link_count(), 6);
        for (_, q) in &b.qsets {
            assert_eq!(q.threshold, 3);
        }
    }

    #[test]
    fn public_network_shape() {
        let b = Scenario::PublicNetwork {
            n_orgs: 5,
            validators_per_org: 3,
            n_watchers: 20,
        }
        .build(1);
        assert_eq!(b.validators.len(), 15);
        assert!(b.graph.is_connected());
        // Validators + watchers all present in the graph.
        assert_eq!(b.graph.nodes().count(), 35);
    }

    #[test]
    fn public_network_enjoys_quorum_intersection() {
        let b = Scenario::PublicNetwork {
            n_orgs: 5,
            validators_per_org: 3,
            n_watchers: 0,
        }
        .build(1);
        let sys = FbaSystem::new(b.qsets.clone());
        assert!(enjoys_quorum_intersection(&sys));
    }

    #[test]
    fn generated_scenario_builds_a_connected_federation() {
        use stellar_quorum::{TopologyFamily, TopologySpec};
        let spec = TopologySpec::new(TopologyFamily::TierWeighted, 8, 3, 5);
        let a = Scenario::Generated { spec }.build(2);
        let b = Scenario::Generated { spec }.build(2);
        assert_eq!(a.validators.len(), 24);
        assert!(a.graph.is_connected());
        assert_eq!(a.qsets, b.qsets, "deterministic per (spec, seed)");
        let sys = FbaSystem::new(a.qsets.clone());
        assert!(enjoys_quorum_intersection(&sys));
    }

    #[test]
    fn build_is_deterministic() {
        let a = Scenario::PublicNetwork {
            n_orgs: 3,
            validators_per_org: 3,
            n_watchers: 5,
        }
        .build(9);
        let b = Scenario::PublicNetwork {
            n_orgs: 3,
            validators_per_org: 3,
            n_watchers: 5,
        }
        .build(9);
        assert_eq!(a.graph.link_count(), b.graph.link_count());
        assert_eq!(a.qsets, b.qsets);
    }
}

//! Cross-node trace aggregation: folding per-node span streams into a
//! per-transaction latency decomposition (the §7.3 measurement points,
//! taken per *transaction* instead of per ledger).
//!
//! Every validator records [`SpanEvent`]s into its own bounded buffer;
//! after a run the simulator merges them, groups by trace id, and takes
//! the network-wide *first* time each phase was reached. Consecutive
//! phase points then yield the submit→apply latency decomposition:
//!
//! ```text
//! submit → queue admit → nominated → externalized → applied → visible
//! ```
//!
//! All timestamps are simulated milliseconds, so the JSON these
//! functions render is byte-identical across same-seed runs — the
//! determinism gate `exp_trace` enforces.

use crate::metrics::percentile;
use stellar_telemetry::{Json, SpanEvent, SpanPhase, TraceId};

/// One transaction's lifecycle, folded across every node that saw it.
/// Each timestamp is the *earliest* simulated time any node reached the
/// phase (`None`: no node did — e.g. a transaction still pending when
/// the run stopped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxTrace {
    /// The content-derived trace id.
    pub trace: TraceId,
    /// Client submission (the trace root).
    pub submit_ms: u64,
    /// First pending-queue admission anywhere.
    pub admit_ms: Option<u64>,
    /// First inclusion in a nominated tx set.
    pub nominated_ms: Option<u64>,
    /// First externalize of a slot carrying it.
    pub externalized_ms: Option<u64>,
    /// First ledger apply.
    pub applied_ms: Option<u64>,
    /// First horizon visibility.
    pub visible_ms: Option<u64>,
    /// The ledger sequence it landed in, if applied.
    pub apply_slot: Option<u64>,
    /// Flood hops observed (full-payload arrivals network-wide).
    pub flood_hops: u64,
    /// Pull-mode demand timeouts suffered network-wide.
    pub demand_timeouts: u64,
    /// Distinct nodes that recorded any span for this trace.
    pub nodes_reached: u64,
    /// Last full-payload arrival anywhere minus submit time: how long
    /// the flood took to finish propagating (the flood-lag gauge).
    pub flood_lag_ms: Option<u64>,
}

/// Groups a merged span stream by trace and folds each group into a
/// [`TxTrace`] row. Only traces with a [`SpanPhase::Submit`] root are
/// kept (a span buffer that evicted its root cannot anchor latencies).
/// Rows come back sorted by `(submit_ms, trace)`.
pub fn build_tx_traces(spans: &[SpanEvent]) -> Vec<TxTrace> {
    use std::collections::{BTreeMap, BTreeSet};
    #[derive(Default)]
    struct Acc {
        submit: Option<u64>,
        admit: Option<u64>,
        nominated: Option<u64>,
        externalized: Option<u64>,
        applied: Option<u64>,
        visible: Option<u64>,
        apply_slot: Option<u64>,
        flood_hops: u64,
        last_flood_ms: Option<u64>,
        demand_timeouts: u64,
        nodes: BTreeSet<u32>,
    }
    fn first(slot: &mut Option<u64>, t: u64) {
        *slot = Some(slot.map_or(t, |cur| cur.min(t)));
    }
    let mut by_trace: BTreeMap<TraceId, Acc> = BTreeMap::new();
    for s in spans {
        let a = by_trace.entry(s.trace).or_default();
        a.nodes.insert(s.node);
        match &s.phase {
            SpanPhase::Submit => first(&mut a.submit, s.t_ms),
            SpanPhase::QueueAdmit => first(&mut a.admit, s.t_ms),
            SpanPhase::Nominated { .. } => first(&mut a.nominated, s.t_ms),
            SpanPhase::Externalized { .. } => first(&mut a.externalized, s.t_ms),
            SpanPhase::Applied { slot } => {
                if a.applied.is_none() || s.t_ms < a.applied.unwrap() {
                    a.apply_slot = Some(*slot);
                }
                first(&mut a.applied, s.t_ms);
            }
            SpanPhase::HorizonVisible { .. } => first(&mut a.visible, s.t_ms),
            SpanPhase::FloodRecv { .. } => {
                a.flood_hops += 1;
                let last = a.last_flood_ms.map_or(s.t_ms, |cur| cur.max(s.t_ms));
                a.last_flood_ms = Some(last);
            }
            SpanPhase::DemandTimeout { .. } => a.demand_timeouts += 1,
            _ => {}
        }
    }
    let mut rows: Vec<TxTrace> = by_trace
        .into_iter()
        .filter_map(|(trace, a)| {
            let submit_ms = a.submit?;
            Some(TxTrace {
                trace,
                submit_ms,
                admit_ms: a.admit,
                nominated_ms: a.nominated,
                externalized_ms: a.externalized,
                applied_ms: a.applied,
                visible_ms: a.visible,
                apply_slot: a.apply_slot,
                flood_hops: a.flood_hops,
                demand_timeouts: a.demand_timeouts,
                nodes_reached: a.nodes.len() as u64,
                flood_lag_ms: a.last_flood_ms.map(|t| t.saturating_sub(submit_ms)),
            })
        })
        .collect();
    rows.sort_by_key(|r| (r.submit_ms, r.trace));
    rows
}

/// Latency statistics of one pipeline phase across all traced
/// transactions that completed it.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStats {
    /// Phase label (`submit_to_admit`, …).
    pub phase: &'static str,
    /// Transactions that completed the phase.
    pub samples: u64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
}

/// The phase boundaries of the latency decomposition, as `(label,
/// start-time, end-time)` extractors over a [`TxTrace`] row.
type PhaseEdge = (
    &'static str,
    fn(&TxTrace) -> Option<u64>,
    fn(&TxTrace) -> Option<u64>,
);

const PHASES: &[PhaseEdge] = &[
    ("submit_to_admit", |r| Some(r.submit_ms), |r| r.admit_ms),
    ("admit_to_nominate", |r| r.admit_ms, |r| r.nominated_ms),
    (
        "nominate_to_externalize",
        |r| r.nominated_ms,
        |r| r.externalized_ms,
    ),
    (
        "externalize_to_apply",
        |r| r.externalized_ms,
        |r| r.applied_ms,
    ),
    ("apply_to_visible", |r| r.applied_ms, |r| r.visible_ms),
    ("submit_to_apply", |r| Some(r.submit_ms), |r| r.applied_ms),
];

/// Per-phase p50/p99/mean over every row that completed the phase. The
/// last entry, `submit_to_apply`, is the end-to-end confirmation
/// latency (the Fig. 7 quantity).
pub fn phase_stats(rows: &[TxTrace]) -> Vec<PhaseStats> {
    PHASES
        .iter()
        .map(|(label, start, end)| {
            let mut xs: Vec<f64> = rows
                .iter()
                .filter_map(|r| Some(end(r)?.saturating_sub(start(r)?) as f64))
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mean = if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            };
            PhaseStats {
                phase: label,
                samples: xs.len() as u64,
                p50_ms: percentile(&xs, 50.0),
                p99_ms: percentile(&xs, 99.0),
                mean_ms: mean,
            }
        })
        .collect()
}

/// The submit→apply latency CDF on a fixed percentile grid (Fig. 7's
/// axes: confirmation latency vs fraction of transactions).
pub fn submit_to_apply_cdf(rows: &[TxTrace]) -> Json {
    let mut xs: Vec<f64> = rows
        .iter()
        .filter_map(|r| Some(r.applied_ms?.saturating_sub(r.submit_ms) as f64))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let grid = [5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];
    Json::Arr(
        grid.iter()
            .map(|p| Json::obj().set("p", *p).set("ms", percentile(&xs, *p)))
            .collect(),
    )
}

/// The whole trace section of a report: row counts, the per-phase
/// decomposition, the confirmation CDF, and flood health. Deterministic
/// for same-seed runs (simulated time only).
pub fn trace_summary_json(rows: &[TxTrace], spans_dropped: u64) -> Json {
    let applied = rows.iter().filter(|r| r.applied_ms.is_some()).count() as u64;
    let mut phases = Json::obj();
    for s in phase_stats(rows) {
        phases = phases.set(
            s.phase,
            Json::obj()
                .set("samples", s.samples)
                .set("p50_ms", s.p50_ms)
                .set("p99_ms", s.p99_ms)
                .set("mean_ms", s.mean_ms),
        );
    }
    let mut lags: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.flood_lag_ms.map(|v| v as f64))
        .collect();
    lags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let timeouts: u64 = rows.iter().map(|r| r.demand_timeouts).sum();
    Json::obj()
        .set("traced", rows.len() as u64)
        .set("applied", applied)
        .set("spans_dropped", spans_dropped)
        .set("phases", phases)
        .set("submit_to_apply_cdf", submit_to_apply_cdf(rows))
        .set(
            "flood",
            Json::obj()
                .set("lag_p50_ms", percentile(&lags, 50.0))
                .set("lag_p99_ms", percentile(&lags, 99.0))
                .set("demand_timeouts", timeouts),
        )
}

/// Every row as one JSON array — the byte-identical artifact the
/// `exp_trace` twin-run determinism gate compares.
pub fn rows_to_json(rows: &[TxTrace]) -> Json {
    fn opt(obj: Json, key: &str, v: Option<u64>) -> Json {
        match v {
            Some(v) => obj.set(key, v),
            None => obj,
        }
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                let mut o = Json::obj()
                    .set("trace", r.trace)
                    .set("submit_ms", r.submit_ms);
                o = opt(o, "admit_ms", r.admit_ms);
                o = opt(o, "nominated_ms", r.nominated_ms);
                o = opt(o, "externalized_ms", r.externalized_ms);
                o = opt(o, "applied_ms", r.applied_ms);
                o = opt(o, "visible_ms", r.visible_ms);
                o = opt(o, "apply_slot", r.apply_slot);
                o = opt(o, "flood_lag_ms", r.flood_lag_ms);
                o.set("flood_hops", r.flood_hops)
                    .set("demand_timeouts", r.demand_timeouts)
                    .set("nodes_reached", r.nodes_reached)
            })
            .collect(),
    )
}

/// Renders one transaction's complete cross-node causal trace, one line
/// per span, ordered by `(t_ms, pipeline order, node)` — several close
/// milestones share a simulated millisecond, so causal order within it
/// is the pipeline order. This is the artifact a chaos violation
/// attaches for every transaction in an affected slot.
pub fn render_causal_trace(spans: &[SpanEvent], trace: TraceId) -> String {
    let mut picked: Vec<&SpanEvent> = spans.iter().filter(|s| s.trace == trace).collect();
    picked.sort_by_key(|s| (s.t_ms, s.phase.order(), s.node));
    let mut out = format!("trace {trace:016x}\n");
    for s in picked {
        let detail = match &s.phase {
            SpanPhase::QueueReject { reason } => format!(" reason={reason}"),
            SpanPhase::FloodRecv { from } | SpanPhase::AdvertSeen { from } => {
                format!(" from=n{from}")
            }
            SpanPhase::DemandSent { to, attempt } => format!(" to=n{to} attempt={attempt}"),
            SpanPhase::DemandTimeout { attempt } => format!(" attempt={attempt}"),
            other => match other.slot() {
                Some(slot) => format!(" slot={slot}"),
                None => String::new(),
            },
        };
        out.push_str(&format!(
            "  t={:>8}ms n{:<3} {:<15}{}\n",
            s.t_ms,
            s.node,
            s.phase.tag(),
            detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, node: u32, t_ms: u64, phase: SpanPhase) -> SpanEvent {
        SpanEvent {
            trace,
            node,
            t_ms,
            phase,
        }
    }

    fn lifecycle(trace: u64) -> Vec<SpanEvent> {
        vec![
            ev(trace, 0, 100, SpanPhase::Submit),
            ev(trace, 0, 100, SpanPhase::QueueAdmit),
            ev(trace, 1, 180, SpanPhase::FloodRecv { from: 0 }),
            ev(trace, 1, 180, SpanPhase::QueueAdmit),
            ev(trace, 2, 240, SpanPhase::FloodRecv { from: 1 }),
            ev(trace, 0, 1000, SpanPhase::Nominated { slot: 2 }),
            ev(trace, 1, 1400, SpanPhase::Externalized { slot: 2 }),
            ev(trace, 1, 1400, SpanPhase::Applied { slot: 2 }),
            ev(trace, 1, 1400, SpanPhase::HorizonVisible { slot: 2 }),
            ev(trace, 0, 1450, SpanPhase::Externalized { slot: 2 }),
            ev(trace, 0, 1450, SpanPhase::Applied { slot: 2 }),
        ]
    }

    #[test]
    fn rows_take_network_first_per_phase() {
        let rows = build_tx_traces(&lifecycle(7));
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.submit_ms, 100);
        assert_eq!(r.admit_ms, Some(100), "origin admit, not the relay's");
        assert_eq!(r.nominated_ms, Some(1000));
        assert_eq!(r.externalized_ms, Some(1400), "first externalize wins");
        assert_eq!(r.applied_ms, Some(1400));
        assert_eq!(r.apply_slot, Some(2));
        assert_eq!(r.flood_hops, 2);
        assert_eq!(r.nodes_reached, 3);
        assert_eq!(r.flood_lag_ms, Some(140), "last arrival at 240");
    }

    #[test]
    fn rootless_traces_are_dropped() {
        // Ring eviction can lose a Submit; the remaining spans cannot
        // anchor a latency decomposition and must not produce a row.
        let spans = vec![
            ev(1, 0, 50, SpanPhase::QueueAdmit),
            ev(1, 1, 90, SpanPhase::Applied { slot: 3 }),
            ev(2, 0, 10, SpanPhase::Submit),
        ];
        let rows = build_tx_traces(&spans);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].trace, 2);
    }

    #[test]
    fn rows_sorted_by_submit_time_then_trace() {
        let spans = vec![
            ev(9, 0, 300, SpanPhase::Submit),
            ev(4, 0, 100, SpanPhase::Submit),
            ev(5, 0, 300, SpanPhase::Submit),
        ];
        let rows = build_tx_traces(&spans);
        let order: Vec<u64> = rows.iter().map(|r| r.trace).collect();
        assert_eq!(order, vec![4, 5, 9]);
    }

    #[test]
    fn phase_stats_decompose_the_pipeline() {
        let mut spans = lifecycle(7);
        spans.extend(lifecycle(8).into_iter().map(|mut e| {
            e.t_ms += 100; // a second, uniformly slower transaction
            e
        }));
        let rows = build_tx_traces(&spans);
        let stats = phase_stats(&rows);
        let find = |name: &str| stats.iter().find(|s| s.phase == name).unwrap().clone();
        assert_eq!(find("submit_to_admit").samples, 2);
        assert_eq!(find("submit_to_admit").p50_ms, 0.0);
        assert_eq!(find("admit_to_nominate").p50_ms, 900.0);
        assert_eq!(find("nominate_to_externalize").p50_ms, 400.0);
        assert_eq!(find("externalize_to_apply").p50_ms, 0.0);
        let total = find("submit_to_apply");
        assert_eq!(total.p50_ms, 1300.0);
        assert_eq!(total.mean_ms, 1300.0);
    }

    #[test]
    fn incomplete_rows_skip_their_missing_phases() {
        let spans = vec![
            ev(1, 0, 100, SpanPhase::Submit),
            ev(1, 0, 100, SpanPhase::QueueAdmit),
            // never nominated (still pending at shutdown)
        ];
        let rows = build_tx_traces(&spans);
        let stats = phase_stats(&rows);
        let nominate = stats.iter().find(|s| s.phase == "admit_to_nominate");
        assert_eq!(nominate.unwrap().samples, 0);
        let cdf = submit_to_apply_cdf(&rows);
        let rendered = cdf.render();
        assert!(rendered.contains("\"ms\":0"), "empty CDF renders zeros");
    }

    #[test]
    fn summary_and_rows_render_deterministically() {
        let spans = lifecycle(7);
        let rows = build_tx_traces(&spans);
        let a = trace_summary_json(&rows, 0).render();
        let b = trace_summary_json(&build_tx_traces(&spans), 0).render();
        assert_eq!(a, b);
        assert_eq!(rows_to_json(&rows).render(), rows_to_json(&rows).render());
        let parsed = Json::parse(&a).expect("valid JSON");
        assert!(parsed.get("phases").is_some());
        assert!(parsed.get("submit_to_apply_cdf").is_some());
    }

    #[test]
    fn causal_render_orders_simultaneous_spans_by_pipeline() {
        let trace = 7;
        let render = render_causal_trace(&lifecycle(trace), trace);
        let lines: Vec<&str> = render.lines().collect();
        assert!(lines[0].starts_with("trace"));
        // The externalize/apply/visible triple at t=1400 keeps pipeline
        // order despite the shared timestamp.
        let ext = lines.iter().position(|l| l.contains("externalized"));
        let app = lines.iter().position(|l| l.contains(" applied"));
        let vis = lines.iter().position(|l| l.contains("horizon_visible"));
        assert!(ext < app && app < vis, "{render}");
        assert!(render.contains("from=n0"));
        // A trace nobody recorded renders just its header.
        let empty = render_causal_trace(&lifecycle(trace), 999);
        assert_eq!(empty.lines().count(), 1);
    }
}

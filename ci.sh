#!/usr/bin/env bash
# Full CI gate: release build, workspace tests, lints, formatting.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI green."

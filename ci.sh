#!/usr/bin/env bash
# Full CI gate: release build, workspace tests, lints, formatting.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace (mem backend)"
cargo test -q --workspace

echo "==> cargo test -q --workspace (disk backend)"
STELLAR_STORE_BACKEND=disk cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> telemetry smoke (short sim -> schema-valid BENCH_smoke.json + flight recorder)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
BENCH_OUT_DIR="$SMOKE_DIR" cargo run --release -q -p stellar-bench --bin telemetry_smoke

echo "==> close-path perf smoke (exp_close_perf --quick; in-run gate: apply_threads=4 externalizes the same final header as sequential)"
BENCH_OUT_DIR="$SMOKE_DIR" cargo run --release -q -p stellar-bench --bin exp_close_perf -- --quick
grep -q '"schema": "stellar-bench/v2"' "$SMOKE_DIR/BENCH_close_perf.json"
grep -q '"schema": "stellar-bench/v2"' BENCH_close_perf.json  # committed full sweep

echo "==> parallel apply determinism (twin-run threads 1 vs 2/4/8, escape re-run, path-payment fallback; both backends)"
cargo test -q --test parallel_determinism
STELLAR_STORE_BACKEND=disk cargo test -q --test parallel_determinism

echo "==> cache determinism (caches on vs off externalize identical hashes)"
cargo test -q --test cache_determinism

echo "==> pull-mode flooding (twin-run determinism + lossy-link chaos)"
cargo test -q --test pull_flood

echo "==> overlay pull smoke (exp_overlay_pull --quick; gates schema + flood-byte regression vs committed BENCH_overlay_pull.json)"
BENCH_OUT_DIR="$SMOKE_DIR" cargo run --release -q -p stellar-bench --bin exp_overlay_pull -- --quick

echo "==> crash-restart recovery (amnesia A/B, restart storm, persistence twin run)"
cargo test -q -p stellar-chaos --test recovery

echo "==> recovery smoke (exp_recovery --quick -> schema-valid BENCH_recovery.json)"
BENCH_OUT_DIR="$SMOKE_DIR" cargo run --release -q -p stellar-bench --bin exp_recovery -- --quick
grep -q '"schema": "stellar-bench/v2"' "$SMOKE_DIR/BENCH_recovery.json"
grep -q '"schema": "stellar-bench/v2"' BENCH_recovery.json  # committed full sweep

echo "==> storage-engine smoke (exp_store --quick; RAM/disk twin hash gate + schema-valid BENCH_store.json)"
BENCH_OUT_DIR="$SMOKE_DIR" cargo run --release -q -p stellar-bench --bin exp_store -- --quick
grep -q '"schema": "stellar-bench/v2"' "$SMOKE_DIR/BENCH_store.json"
grep -q '"schema": "stellar-bench/v2"' BENCH_store_baseline.json  # committed full sweep

echo "==> lifecycle tracing smoke (exp_trace --quick on both store backends; in-run gates: twin-run byte-identical trace rows, pipeline coverage, sampled-tracing overhead ≤5% closes/s vs tracing-off)"
BENCH_OUT_DIR="$SMOKE_DIR" cargo run --release -q -p stellar-bench --bin exp_trace -- --quick
grep -q '"schema": "stellar-bench/v2"' "$SMOKE_DIR/BENCH_trace.json"
BENCH_OUT_DIR="$SMOKE_DIR" STELLAR_STORE_BACKEND=disk cargo run --release -q -p stellar-bench --bin exp_trace -- --quick
grep -q '"schema": "stellar-bench/v2"' "$SMOKE_DIR/BENCH_trace.json"
grep -q '"schema": "stellar-bench/v2"' BENCH_trace.json  # committed full sweep

echo "==> horizon indexer twin-run determinism (pipeline on/off externalize identical artifacts; both backends)"
cargo test -q --test horizon_determinism
STELLAR_STORE_BACKEND=disk cargo test -q --test horizon_determinism

echo "==> horizon ingestion correctness (indexed history vs naive rescan, restart-mid-ingestion recovery)"
cargo test -q --test horizon_ingest

echo "==> horizon pipeline smoke (exp_horizon --quick; in-run gates: pipeline on/off twin headers, 10x burst shed without close stall, bounded admission table at 250k clients)"
BENCH_OUT_DIR="$SMOKE_DIR" cargo run --release -q -p stellar-bench --bin exp_horizon -- --quick
grep -q '"schema": "stellar-bench/v2"' "$SMOKE_DIR/BENCH_horizon.json"
BENCH_OUT_DIR="$SMOKE_DIR" STELLAR_STORE_BACKEND=disk cargo run --release -q -p stellar-bench --bin exp_horizon -- --quick
grep -q '"schema": "stellar-bench/v2"' "$SMOKE_DIR/BENCH_horizon.json"
grep -q '"schema": "stellar-bench/v2"' BENCH_horizon.json  # committed full sweep

echo "==> cascade campaigns (survival frontier, halt-and-reconfigure healing, 25-seed storm; both backends)"
cargo test -q -p stellar-chaos --test cascade
STELLAR_STORE_BACKEND=disk cargo test -q -p stellar-chaos --test cascade
cargo test -q --test cascade_storm
STELLAR_STORE_BACKEND=disk cargo test -q --test cascade_storm

echo "==> cascade smoke (exp_cascade --quick; in-run gates: twin-regenerated frontier curves byte-identical, below/past-frontier empirical cross-check)"
BENCH_OUT_DIR="$SMOKE_DIR" cargo run --release -q -p stellar-bench --bin exp_cascade -- --quick
grep -q '"schema": "stellar-bench/v2"' "$SMOKE_DIR/BENCH_cascade.json"
grep -q '"schema": "stellar-bench/v2"' BENCH_cascade.json  # committed full sweep

echo "CI green."

//! Token issuance with issuer-enforced policy (§5.1, §5.2).
//!
//! Demonstrates the paper's goal-2 machinery end to end:
//!
//! 1. an issuer sets `auth_required` + `auth_revocable` (KYC gating, as
//!    the Stronghold USD anchor does in §7.1);
//! 2. customers open trustlines, which start **unauthorized**;
//! 3. payments bounce until the issuer runs `AllowTrust` (photo ID
//!    checked!), and the issuer can later revoke;
//! 4. finally, the paper's multi-party atomic deal (§5.2): a single
//!    transaction carrying three operations — land parcel + $10,000 one
//!    way, a bigger parcel the other — signed by both parties, all-or-
//!    nothing.
//!
//! ```sh
//! cargo run --release --example token_issuance
//! ```

use stellar::crypto::sign::KeyPair;
use stellar::ledger::amount::xlm;
use stellar::ledger::amount::BASE_FEE;
use stellar::ledger::apply::{apply_transaction, check_validity};
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::ops::{apply_operation, ExecEnv};
use stellar::ledger::sigcache::SigVerifyCache;
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{OpError, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::Asset;

fn keys(seed: u64) -> KeyPair {
    KeyPair::from_seed(seed)
}

fn main() {
    let issuer_k = keys(1);
    let alice_k = keys(2);
    let bob_k = keys(3);
    let issuer = AccountId(issuer_k.public());
    let alice = AccountId(alice_k.public());
    let bob = AccountId(bob_k.public());

    let mut store = LedgerStore::new();
    for id in [issuer, alice, bob] {
        store.put_account(AccountEntry::new(id, xlm(100)));
    }
    let env = ExecEnv::default();
    let usd = Asset::issued(issuer, "USD");
    let deed = Asset::issued(issuer, "DEED");

    println!("=== issuer-enforced finality: the KYC flow ===\n");
    let mut d = store.begin();

    // 1. Issuer requires authorization for its assets.
    apply_operation(
        &mut d,
        issuer,
        &Operation::SetOptions {
            auth_required: Some(true),
            auth_revocable: Some(true),
            master_weight: None,
            low_threshold: None,
            medium_threshold: None,
            high_threshold: None,
            signer: None,
        },
        &env,
    )
    .unwrap();
    println!("issuer set auth_required + auth_revocable");

    // 2. Customers open trustlines (unauthorized until KYC).
    for who in [alice, bob] {
        apply_operation(
            &mut d,
            who,
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: 1_000_000,
            },
            &env,
        )
        .unwrap();
        apply_operation(
            &mut d,
            who,
            &Operation::ChangeTrust {
                asset: deed.clone(),
                limit: 1_000,
            },
            &env,
        )
        .unwrap();
    }

    // 3. Payment to an unauthorized line bounces.
    let attempt = apply_operation(
        &mut d,
        issuer,
        &Operation::Payment {
            destination: alice,
            asset: usd.clone(),
            amount: 20_000,
        },
        &env,
    );
    assert_eq!(attempt, Err(OpError::NotAuthorized));
    println!("payment before KYC: rejected (NotAuthorized) ✓");

    // Issuer authorizes after checking IDs.
    for who in [alice, bob] {
        for code in ["USD", "DEED"] {
            apply_operation(
                &mut d,
                issuer,
                &Operation::AllowTrust {
                    trustor: who,
                    asset_code: code.into(),
                    authorize: true,
                },
                &env,
            )
            .unwrap();
        }
    }
    apply_operation(
        &mut d,
        issuer,
        &Operation::Payment {
            destination: alice,
            asset: usd.clone(),
            amount: 20_000,
        },
        &env,
    )
    .unwrap();
    apply_operation(
        &mut d,
        issuer,
        &Operation::Payment {
            destination: alice,
            asset: deed.clone(),
            amount: 1,
        },
        &env,
    )
    .unwrap();
    apply_operation(
        &mut d,
        issuer,
        &Operation::Payment {
            destination: bob,
            asset: deed.clone(),
            amount: 5,
        },
        &env,
    )
    .unwrap();
    println!("after AllowTrust: issuer minted $20,000 + deeds to customers ✓");

    let ch = d.into_changes();
    store.commit(ch);

    // 4. The atomic three-operation swap (§5.2): Alice gives her small
    //    parcel (1 DEED) + $10,000; Bob gives his larger parcel (5 DEED).
    println!("\n=== atomic multi-party land swap (one tx, three ops) ===\n");
    let swap = Transaction {
        source: alice,
        seq_num: 1,
        fee: BASE_FEE * 3,
        time_bounds: Some(stellar::ledger::tx::TimeBounds {
            min_time: 0,
            max_time: 1_000_000,
        }),
        memo: stellar::ledger::tx::Memo::Text("land deal".into()),
        operations: vec![
            SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: bob,
                    asset: deed.clone(),
                    amount: 1,
                },
            },
            SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: bob,
                    asset: usd.clone(),
                    amount: 10_000,
                },
            },
            SourcedOperation {
                source: Some(bob),
                op: Operation::Payment {
                    destination: alice,
                    asset: deed.clone(),
                    amount: 5,
                },
            },
        ],
    };

    // Alice's signature alone is not enough: Bob sources an operation.
    let half_signed = TransactionEnvelope::sign(swap.clone(), &[&alice_k]);
    let d0 = store.begin();
    assert!(check_validity(
        &d0,
        &half_signed,
        10,
        BASE_FEE * 3,
        &mut SigVerifyCache::disabled()
    )
    .is_err());
    println!("swap signed only by Alice: rejected (BadAuth) ✓");

    let fully_signed = TransactionEnvelope::sign(swap, &[&alice_k, &bob_k]);
    let mut d = store.begin();
    let result = apply_transaction(
        &mut d,
        &fully_signed,
        10,
        BASE_FEE * 3,
        &env,
        &mut SigVerifyCache::disabled(),
    );
    assert!(result.is_success(), "{result:?}");
    let ch = d.into_changes();
    store.commit(ch);

    let d = store.begin();
    println!("swap signed by both: applied ✓");
    println!(
        "  Alice: {} DEED, ${}",
        d.trustline(alice, &deed).unwrap().balance,
        d.trustline(alice, &usd).unwrap().balance
    );
    println!(
        "  Bob:   {} DEED, ${}",
        d.trustline(bob, &deed).unwrap().balance,
        d.trustline(bob, &usd).unwrap().balance
    );
    assert_eq!(d.trustline(alice, &deed).unwrap().balance, 5);
    assert_eq!(d.trustline(bob, &deed).unwrap().balance, 1);
    assert_eq!(d.trustline(bob, &usd).unwrap().balance, 10_000);

    // 5. Revocation: the issuer can freeze a holder.
    let mut d = store.begin();
    apply_operation(
        &mut d,
        issuer,
        &Operation::AllowTrust {
            trustor: bob,
            asset_code: "USD".into(),
            authorize: false,
        },
        &env,
    )
    .unwrap();
    let frozen = apply_operation(
        &mut d,
        bob,
        &Operation::Payment {
            destination: alice,
            asset: usd.clone(),
            amount: 1,
        },
        &env,
    );
    assert_eq!(frozen, Err(OpError::NotAuthorized));
    println!("\nissuer revoked Bob's USD authorization: Bob's spend rejected ✓");
}

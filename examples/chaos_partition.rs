//! Chaos demo: a 3-org network under partition — halt, heal, catch up.
//!
//! Three organizations of three validators each synthesize the tiered
//! quorum sets of Fig. 6: every node requires 2-of-3 orgs, each org
//! counting via a 2-of-3 inner set. The fault schedule then cuts org2
//! off from the rest of the network for 25 simulated seconds:
//!
//! * the majority side (org0 + org1) still contains a quorum and keeps
//!   closing ledgers;
//! * the isolated org2 has no quorum, so it **halts** — SCP trades
//!   liveness, never safety, when a quorum is unreachable (§3.1);
//! * at heal time the reconnect state exchange re-floods SCP votes and
//!   the tx sets they name, and org2 replays the ledgers it missed from
//!   a peer's history archive (§6 catchup) — then rejoins consensus.
//!
//! The chaos invariant monitor watches the whole run: no two intact
//! nodes may externalize different values for a slot or diverge in
//! ledger hashes, and the declared partition suspends (not excuses)
//! liveness judgment.
//!
//! ```sh
//! cargo run --release --example chaos_partition
//! ```

use stellar::chaos::{ChaosConfig, ChaosRun, FaultSchedule};
use stellar::scp::NodeId;
use stellar::sim::scenario::Scenario;
use stellar::sim::SimConfig;

const PARTITION_AT_MS: u64 = 10_000;
const HEAL_AT_MS: u64 = 35_000;
const TARGET_LEDGERS: u64 = 12;

fn main() {
    let orgs: Vec<Vec<NodeId>> = (0..3u32)
        .map(|o| (o * 3..o * 3 + 3).map(NodeId).collect())
        .collect();
    let majority: Vec<NodeId> = orgs[0].iter().chain(&orgs[1]).copied().collect();
    let isolated = orgs[2].clone();

    println!("=== 3-org tiered network vs. a partition ===\n");
    println!("orgs: {orgs:?}");
    println!(
        "t={}s  partition: {majority:?} | {isolated:?}",
        PARTITION_AT_MS / 1000
    );
    println!("t={}s  heal\n", HEAL_AT_MS / 1000);

    let schedule = FaultSchedule::builder()
        .partition_at(
            PARTITION_AT_MS,
            vec![majority.clone(), isolated.clone()],
            Some(HEAL_AT_MS),
        )
        .build();
    let mut run = ChaosRun::new(ChaosConfig {
        sim: SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: 3,
                validators_per_org: 3,
                n_watchers: 0,
            },
            n_accounts: 50,
            tx_rate: 3.0,
            target_ledgers: TARGET_LEDGERS,
            seed: 42,
            max_sim_time_ms: 180_000,
            ..SimConfig::default()
        },
        schedule,
        ..ChaosConfig::default()
    });

    let seq_of = |run: &ChaosRun, ids: &[NodeId]| -> Vec<u64> {
        ids.iter().map(|id| run.sim().ledger_seq_of(*id)).collect()
    };
    let mut next_print = 0;
    let mut halted_seq = None;
    let mut resumed_at = None;
    while run.step() {
        let now = run.sim().now_ms();
        if now >= next_print {
            println!(
                "t={:>3}s  org0+org1 seqs {:?}  org2 seqs {:?}",
                now / 1000,
                seq_of(&run, &majority),
                seq_of(&run, &isolated),
            );
            next_print += 5_000;
        }
        if now >= HEAL_AT_MS && halted_seq.is_none() {
            halted_seq = Some(seq_of(&run, &isolated));
        }
        if halted_seq.is_some()
            && resumed_at.is_none()
            && isolated
                .iter()
                .all(|id| run.sim().ledger_seq_of(*id) >= run.sim().ledger_seq_of(majority[0]))
        {
            resumed_at = Some(now);
            println!(
                "t={:>3}s  org2 caught up via archive replay — back in consensus",
                now / 1000
            );
        }
        let done = now > HEAL_AT_MS
            && run
                .sim()
                .validator_ids()
                .into_iter()
                .all(|id| run.sim().ledger_seq_of(id) > TARGET_LEDGERS);
        if done {
            break;
        }
    }

    println!("\n=== verdict ===\n");
    let final_majority = seq_of(&run, &majority);
    let final_isolated = seq_of(&run, &isolated);
    println!("final seqs: org0+org1 {final_majority:?}  org2 {final_isolated:?}");
    let halted = halted_seq.expect("run reached the heal");
    println!("org2 at heal time: {halted:?} (halted while cut off; majority kept closing)");
    assert!(
        halted.iter().all(|s| *s < final_majority[0]),
        "org2 should have fallen behind during the partition"
    );
    assert!(
        resumed_at.is_some(),
        "org2 should have caught back up after the heal"
    );
    assert!(
        run.violations().is_empty(),
        "invariant monitor flagged: {:?}",
        run.violations()
    );
    println!(
        "invariant monitor: clean — the partition cost org2 liveness for {}s, never safety",
        (HEAL_AT_MS - PARTITION_AT_MS) / 1000
    );

    // The flight recorder kept a per-slot trace on every node; render the
    // observer's latest decided slot — the same artifact a violating
    // chaos run attaches to its report (`ChaosReport::flight_recording`).
    let observer = run.sim().observer_id();
    let recorder = &run.sim().telemetry(observer).recorder;
    let decided = recorder
        .events()
        .filter(|e| matches!(e.kind, stellar::telemetry::TraceKind::Externalized))
        .last()
        .map(|e| e.slot)
        .expect("observer externalized within the retention window");
    println!("\n=== flight recorder: node {observer}, slot {decided} ===\n");
    println!("{}", recorder.timeline(decided));
}

//! Quorum health: intersection checking, criticality, and the §6 story.
//!
//! Replays the lessons of the paper's deployment experience:
//!
//! 1. synthesize Fig. 6 tiered quorum sets from organization configs;
//! 2. check quorum intersection proactively (§6.2.1);
//! 3. scan for *criticality* — orgs one misconfiguration away from
//!    splitting the network (§6.2.2);
//! 4. demonstrate the failure mode: a hand-written 2-of-4 configuration
//!    that admits disjoint quorums (the divergence risk that §6 made
//!    "very concrete");
//! 5. show unilateral slice adjustment healing a liveness loss — SCP
//!    needs no view-change protocol (§3.1.1).
//!
//! ```sh
//! cargo run --release --example network_resilience
//! ```

use stellar::quorum::criticality::{check_criticality, OrgMap};
use stellar::quorum::intersection::{find_disjoint_quorums, FbaSystem, IntersectionResult};
use stellar::quorum::tiers::{synthesize_all, synthesize_quorum_set, OrgConfig, Quality};
use stellar::scp::test_harness::InMemoryNetwork;
use stellar::scp::{NodeId, QuorumSet, Value};

fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
    range.map(NodeId).collect()
}

fn main() {
    // ---- 1. a production-like tiered configuration (Fig. 6/7) ----
    let orgs = vec![
        OrgConfig::new("sdf", ids(0..3), Quality::High),
        OrgConfig::new("satoshipay", ids(3..6), Quality::High),
        OrgConfig::new("lobstr", ids(6..9), Quality::High),
        OrgConfig::new("coinqvest", ids(9..12), Quality::High),
        OrgConfig::new("keybase", ids(12..15), Quality::High),
    ];
    let (qset, warnings) = synthesize_quorum_set(&orgs);
    println!("=== tiered quorum synthesis (Fig. 6) ===\n");
    println!(
        "5 orgs × 3 validators → top threshold {}-of-{}",
        qset.threshold,
        qset.num_entries()
    );
    println!("warnings: {warnings:?}");

    let sys = FbaSystem::new(synthesize_all(&orgs));
    let t0 = std::time::Instant::now();
    let result = find_disjoint_quorums(&sys);
    println!(
        "\nquorum-intersection check over {} nodes: {:?} ({} µs)",
        sys.nodes.len(),
        matches!(result, IntersectionResult::Intersecting),
        t0.elapsed().as_micros()
    );
    assert!(matches!(result, IntersectionResult::Intersecting));

    // ---- 2. criticality scan (§6.2.2) ----
    let org_map: OrgMap = orgs
        .iter()
        .map(|o| (o.name.clone(), o.validators.clone()))
        .collect();
    let t0 = std::time::Instant::now();
    let report = check_criticality(&sys, &org_map);
    println!(
        "criticality scan: safe={} critical_orgs={:?} ({} ms)",
        report.is_safe(),
        report.critical_orgs,
        t0.elapsed().as_millis()
    );
    assert!(
        report.is_safe(),
        "5-org/67% configuration tolerates any one org failing"
    );

    // With only 3 orgs, every org is critical — the checker warns *before*
    // anything diverges.
    let small_orgs: Vec<OrgConfig> = orgs[..3].to_vec();
    let small_sys = FbaSystem::new(synthesize_all(&small_orgs));
    let small_map: OrgMap = small_orgs
        .iter()
        .map(|o| (o.name.clone(), o.validators.clone()))
        .collect();
    let small_report = check_criticality(&small_sys, &small_map);
    println!(
        "3-org network: critical orgs = {:?}  ← operators get warned early",
        small_report.critical_orgs
    );
    assert_eq!(small_report.critical_orgs.len(), 3);

    // ---- 3. the misconfiguration §6 warns about ----
    println!("\n=== hand-written misconfiguration: 2-of-4 slices ===\n");
    let four = ids(0..4);
    let half = QuorumSet::threshold_of(2, four.clone());
    let bad = FbaSystem::new(four.iter().map(|n| (*n, half.clone())));
    match find_disjoint_quorums(&bad) {
        IntersectionResult::Disjoint(a, b) => {
            println!("DANGER: disjoint quorums {a:?} and {b:?} — the network can double-spend");
        }
        other => panic!("expected disjoint quorums, got {other:?}"),
    }

    // ---- 4. liveness loss + unilateral slice adjustment (§3.1.1) ----
    println!("\n=== healing a liveness failure by retuning slices ===\n");
    let nodes = ids(0..4);
    let qset = QuorumSet::byzantine(nodes.clone()); // 3-of-4
    let mut net = InMemoryNetwork::new(&nodes, &qset, 99);
    net.crash(NodeId(2));
    net.crash(NodeId(3));
    for n in &nodes[..2] {
        net.propose(*n, 1, Value::new(b"ledger-1".to_vec()));
    }
    let decided = net.run_to_quiescence(1);
    println!(
        "with 2 of 4 crashed and 3-of-4 slices: {} nodes decided (blocked) ✓",
        decided.len()
    );
    assert!(decided.is_empty());

    // Node operators react: drop the dead nodes from their slices. No
    // network-wide reconfiguration consensus needed.
    let live = ids(0..2);
    let retuned = QuorumSet::threshold_of(2, live.clone());
    let mut net2 = InMemoryNetwork::new(&live, &retuned, 99);
    for n in &live {
        net2.propose(*n, 1, Value::new(b"ledger-1".to_vec()));
    }
    let decided = net2.run_to_quiescence(1);
    println!(
        "after both survivors retune slices to 2-of-2: {} nodes decided ✓",
        decided.len()
    );
    assert_eq!(decided.len(), 2);
    println!("\n(Retuning trades fault tolerance for liveness — exactly the §6 judgment call.)");
}

//! An anchor's service stack: horizon + federation + compliance + bridge
//! (paper §5.4, Fig. 5, and the §7.1 anchor stories).
//!
//! Plays the Stronghold-style USD anchor end to end:
//!
//! 1. customers are onboarded with KYC (`auth_required` + `AllowTrust`);
//! 2. a **federation server** resolves `benito*anchor.mx` to his pooled
//!    account and required memo;
//! 3. a **compliance server** screens sender/beneficiary against a
//!    sanctions list before anything is submitted;
//! 4. the payment goes through **horizon** submission into a real
//!    consensus round;
//! 5. the **bridge server** notices the incoming payment and emits the
//!    notification a core-banking system would consume.
//!
//! ```sh
//! cargo run --release --example anchor_service
//! ```

use stellar::crypto::sign::KeyPair;
use stellar::horizon::compliance::PartyInfo;
use stellar::horizon::{
    BridgeServer, ComplianceDecision, ComplianceServer, FederationServer, Horizon,
};
use stellar::ledger::amount::{xlm, BASE_FEE};
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::ops::{apply_operation, ExecEnv};
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::Asset;
use stellar::sim::scenario::Scenario;
use stellar::sim::simulation::SimSetup;
use stellar::sim::{SimConfig, Simulation};

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0xA2C4 + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

fn main() {
    let anchor = acct(0);
    let alice = acct(1);
    let benito = acct(2);
    let usd = Asset::issued(anchor, "USD");

    // ---- genesis: KYC'd customers holding anchor USD ----
    let mut store = LedgerStore::new();
    for id in [anchor, alice, benito] {
        store.put_account(AccountEntry::new(id, xlm(100)));
    }
    {
        let env = ExecEnv::default();
        let mut d = store.begin();
        apply_operation(
            &mut d,
            anchor,
            &Operation::SetOptions {
                auth_required: Some(true),
                auth_revocable: Some(true),
                master_weight: None,
                low_threshold: None,
                medium_threshold: None,
                high_threshold: None,
                signer: None,
            },
            &env,
        )
        .unwrap();
        for who in [alice, benito] {
            apply_operation(
                &mut d,
                who,
                &Operation::ChangeTrust {
                    asset: usd.clone(),
                    limit: 1_000_000,
                },
                &env,
            )
            .unwrap();
            apply_operation(
                &mut d,
                anchor,
                &Operation::AllowTrust {
                    trustor: who,
                    asset_code: "USD".into(),
                    authorize: true,
                },
                &env,
            )
            .unwrap();
        }
        apply_operation(
            &mut d,
            anchor,
            &Operation::Payment {
                destination: alice,
                asset: usd.clone(),
                amount: 10_000,
            },
            &env,
        )
        .unwrap();
        let ch = d.into_changes();
        store.commit(ch);
    }

    // ---- the anchor's daemons ----
    let mut federation = FederationServer::new("anchor.mx");
    federation.register("benito", benito, Some(Memo::Id(77)));
    let mut compliance = ComplianceServer::new();
    compliance.sanction_name("Shady Intermediary LLC");
    let mut bridge = BridgeServer::new();
    bridge.watch(benito);

    println!("=== anchor service stack (horizon / federation / compliance / bridge) ===\n");

    // 2. Resolve the human-readable address.
    let record = federation
        .resolve("benito*anchor.mx")
        .expect("federation record");
    println!(
        "federation: benito*anchor.mx → {} (memo {:?})",
        record.account, record.required_memo
    );

    // 3. Compliance screening before submission.
    let sender = PartyInfo {
        name: "Alice Doe".into(),
        country: "US".into(),
        account: alice,
    };
    let beneficiary = PartyInfo {
        name: "Benito Ruiz".into(),
        country: "MX".into(),
        account: benito,
    };
    let decision = compliance.screen(&sender, &beneficiary);
    assert_eq!(decision, ComplianceDecision::Allowed);
    println!(
        "compliance: {:?} for {} → {}",
        decision, sender.name, beneficiary.name
    );
    // A sanctioned counterparty is stopped before touching the ledger.
    let crook = PartyInfo {
        name: "Shady Intermediary LLC".into(),
        country: "US".into(),
        account: acct(9),
    };
    assert_eq!(
        compliance.screen(&sender, &crook),
        ComplianceDecision::Denied
    );
    println!(
        "compliance: Denied for {} → {} (sanctions list)",
        sender.name, crook.name
    );

    // 4. Build, submit, and confirm the payment through consensus.
    let tx = Transaction {
        source: alice,
        seq_num: 1,
        fee: BASE_FEE,
        time_bounds: None,
        memo: record.required_memo.clone().unwrap(),
        operations: vec![SourcedOperation {
            source: None,
            op: Operation::Payment {
                destination: record.account,
                asset: usd.clone(),
                amount: 2_500,
            },
        }],
    };
    let envelope = TransactionEnvelope::sign(tx, &[&keys(1)]);
    let mut sim = Simulation::with_setup(
        SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 0,
            tx_rate: 0.0,
            target_ledgers: 2,
            seed: 21,
            ..SimConfig::default()
        },
        SimSetup {
            genesis: Some(store),
        },
    );
    sim.submit_transaction_at(1100, envelope);
    sim.run();

    // 5. The bridge notices the deposit on the anchor's own validator.
    let observer = sim.observer_id();
    let herder = &sim.validator(observer).herder;
    let notes = bridge.poll(herder);
    assert_eq!(notes.len(), 1);
    let n = &notes[0];
    println!(
        "bridge: ledger {} — {} received {} {} from {} (memo {:?})",
        n.ledger_seq, n.to, n.amount, n.asset, n.from, n.memo
    );
    assert_eq!(
        n.memo,
        Memo::Id(77),
        "pooled-account routing memo survives consensus"
    );

    // Horizon view of the final balances.
    let info = Horizon::account(herder, benito).expect("benito exists");
    println!(
        "horizon: {} now holds {} USD across {} trustline(s)",
        benito,
        info.trustlines[0].1,
        info.trustlines.len()
    );
    assert_eq!(info.trustlines[0].1, 2_500);
    println!("\nall five daemons of Fig. 5 cooperated on one payment.");
}

//! The paper's flagship scenario: "making it literally possible to send
//! $0.50 to Mexico in 5 seconds with a fee of $0.000001" (§7.1).
//!
//! Setup: a USD anchor (AnchorUSD-style) and an MXN anchor each issue
//! their token; a market maker posts offers on the USD/MXN book; Alice in
//! the U.S. holds anchor-issued USD; Benito in Mexico holds a trustline
//! for MXN. Alice sends a `PathPayment` that delivers an exact MXN amount
//! while spending at most her USD budget — atomically, through consensus,
//! with no solvency risk from the market maker.
//!
//! ```sh
//! cargo run --release --example cross_border_payment
//! ```

use stellar::crypto::sign::KeyPair;
use stellar::ledger::amount::{xlm, Price, BASE_FEE};
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::ops::ExecEnv;
use stellar::ledger::pathfind::find_best_path;
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::Asset;
use stellar::sim::scenario::Scenario;
use stellar::sim::simulation::SimSetup;
use stellar::sim::{SimConfig, Simulation};

fn keys(name: &str) -> KeyPair {
    let mut seed = 0u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(131).wrapping_add(u64::from(b));
    }
    KeyPair::from_seed(seed)
}

fn account(name: &str) -> AccountId {
    AccountId(keys(name).public())
}

/// Cents-scale integer amounts: 1 unit = $0.01 / 1 MXN centavo.
const CENTS: i64 = 100;

fn main() {
    let anchor_usd = account("anchor-usd");
    let anchor_mxn = account("anchor-mxn");
    let maker = account("market-maker");
    let alice = account("alice");
    let benito = account("benito");

    let usd = Asset::issued(anchor_usd, "USD");
    let mxn = Asset::issued(anchor_mxn, "MXN");

    // ---- genesis: accounts, trustlines, maker inventory, order book ----
    let mut store = LedgerStore::new();
    for id in [anchor_usd, anchor_mxn, maker, alice, benito] {
        store.put_account(AccountEntry::new(id, xlm(100)));
    }
    {
        let env = ExecEnv::default();
        let mut d = store.begin();
        use stellar::ledger::ops::apply_operation;
        for (who, asset) in [
            (maker, usd.clone()),
            (maker, mxn.clone()),
            (alice, usd.clone()),
            (benito, mxn.clone()),
        ] {
            apply_operation(
                &mut d,
                who,
                &Operation::ChangeTrust {
                    asset,
                    limit: i64::MAX / 8,
                },
                &env,
            )
            .expect("trustline");
        }
        // Fund the maker with both currencies and Alice with $100.
        apply_operation(
            &mut d,
            anchor_usd,
            &Operation::Payment {
                destination: maker,
                asset: usd.clone(),
                amount: 1_000_000 * CENTS,
            },
            &env,
        )
        .unwrap();
        apply_operation(
            &mut d,
            anchor_mxn,
            &Operation::Payment {
                destination: maker,
                asset: mxn.clone(),
                amount: 20_000_000 * CENTS,
            },
            &env,
        )
        .unwrap();
        apply_operation(
            &mut d,
            anchor_usd,
            &Operation::Payment {
                destination: alice,
                asset: usd.clone(),
                amount: 100 * CENTS,
            },
            &env,
        )
        .unwrap();
        // Maker quotes MXN/USD at 17.35 (sells MXN, buys USD).
        apply_operation(
            &mut d,
            maker,
            &Operation::ManageOffer {
                offer_id: 0,
                selling: mxn.clone(),
                buying: usd.clone(),
                amount: 10_000_000 * CENTS,
                price: Price::new(100, 1735), // USD per MXN
                passive: false,
            },
            &env,
        )
        .unwrap();
        let ch = d.into_changes();
        store.commit(ch);
    }

    // ---- find the best path for delivering 8.67 MXN (≈ $0.50) ----
    let dest_amount = 867; // 8.67 MXN in centavos
    let d = store.begin();
    let (path, cost) = find_best_path(&d, &usd, &mxn, dest_amount, &[Asset::Native])
        .expect("order book can fill the payment");
    println!("=== cross-border payment: Alice (USD) → Benito (MXN) ===\n");
    println!(
        "quote: deliver {:.2} MXN for {:.2} USD via path {:?}",
        dest_amount as f64 / 100.0,
        cost as f64 / 100.0,
        path
    );

    // ---- run it through a real consensus round ----
    let tx = Transaction {
        source: alice,
        seq_num: 1,
        fee: BASE_FEE, // 10⁻⁵ XLM ≈ $0.000001
        time_bounds: None,
        memo: Memo::Text("rent, love Alice".into()),
        operations: vec![SourcedOperation {
            source: None,
            op: Operation::PathPayment {
                send_asset: usd.clone(),
                send_max: 50 * CENTS, // at most $0.50, end-to-end limit price
                destination: benito,
                dest_asset: mxn.clone(),
                dest_amount,
                path,
            },
        }],
    };
    let envelope = TransactionEnvelope::sign(tx, &[&keys("alice")]);

    let mut sim = Simulation::with_setup(
        SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 0,
            tx_rate: 0.0,
            target_ledgers: 2,
            seed: 11,
            ..SimConfig::default()
        },
        SimSetup {
            genesis: Some(store),
        },
    );
    sim.submit_transaction_at(1100, envelope);
    let report = sim.run();

    // ---- verify on every validator ----
    let ids = sim.validator_ids();
    for id in &ids {
        let st = &sim.validator(*id).herder.store;
        let benito_mxn = st.trustline(benito, &mxn).map(|t| t.balance).unwrap_or(0);
        let alice_usd = st.trustline(alice, &usd).map(|t| t.balance).unwrap_or(0);
        assert_eq!(benito_mxn, dest_amount, "validator {id} must credit Benito");
        assert_eq!(
            alice_usd,
            100 * CENTS - cost,
            "validator {id} must debit Alice"
        );
    }
    println!(
        "\nconfirmed in ledger {} after {:.1} s of simulated time",
        report.ledgers.last().map(|l| l.slot).unwrap_or(0),
        report.sim_duration_ms as f64 / 1000.0
    );
    println!("Benito now holds 8.67 MXN on all {} validators.", ids.len());
    println!("fee paid: 100 stroops = 0.00001 XLM (≈ $0.000001)");
}

//! Quickstart: a 4-validator Stellar network closing ledgers with payment
//! load.
//!
//! Runs the §7.3 controlled setup at small scale — four validators with
//! simple-majority quorum slices on LAN-grade links — pushes a modest
//! payment load through it, and prints the latency decomposition the
//! paper reports (nomination, balloting, ledger update) plus the close
//! rate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stellar::sim::scenario::Scenario;
use stellar::sim::{SimConfig, Simulation};

fn main() {
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 10_000,
        tx_rate: 50.0,
        target_ledgers: 10,
        seed: 7,
        ..SimConfig::default()
    });
    let report = sim.run();

    println!("=== quickstart: 4 validators, 10k accounts, 50 tx/s ===\n");
    println!(
        "{:>7} {:>12} {:>12} {:>14} {:>8}",
        "ledger", "nominate(ms)", "ballot(ms)", "apply(ms)", "txs"
    );
    for l in &report.ledgers {
        println!(
            "{:>7} {:>12} {:>12} {:>14.2} {:>8}",
            l.slot, l.nomination_ms, l.balloting_ms, l.ledger_update_ms, l.tx_count
        );
    }
    println!();
    println!(
        "mean nomination latency : {:>8.1} ms",
        report.mean_nomination_ms()
    );
    println!(
        "mean balloting latency  : {:>8.1} ms",
        report.mean_balloting_ms()
    );
    println!(
        "mean ledger update      : {:>8.2} ms",
        report.mean_ledger_update_ms()
    );
    println!(
        "mean close interval     : {:>8.2} s",
        report.mean_close_interval_s()
    );
    println!(
        "mean txs per ledger     : {:>8.1}",
        report.mean_tx_per_ledger()
    );
    println!(
        "SCP messages per ledger : {:>8.1} (per validator)",
        report.scp_msgs_per_ledger()
    );

    // Every validator converged on the same chain.
    let ids = sim.validator_ids();
    let h0 = sim.validator(ids[0]).herder.header.hash();
    for id in &ids[1..] {
        assert_eq!(
            sim.validator(*id).herder.header.hash(),
            h0,
            "chain divergence!"
        );
    }
    println!(
        "\nall {} validators agree on ledger header {}",
        ids.len(),
        h0
    );
}

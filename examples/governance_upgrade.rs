//! Federated governance: upgrading network parameters through consensus
//! (§5.3).
//!
//! "Upgrades effect governance through a federated-voting tussle space,
//! neither egalitarian nor centralized." Governing validators nominate
//! *desired* upgrades; non-governing validators echo anything valid.
//! This example raises the base fee from 100 to 200 stroops: two of four
//! validators are configured as governing and desire the upgrade; after a
//! ledger closes carrying it, **every** validator's chain parameters have
//! changed, and subsequent cheap transactions bounce.
//!
//! ```sh
//! cargo run --release --example governance_upgrade
//! ```

use stellar::herder::Upgrade;
use stellar::sim::scenario::Scenario;
use stellar::sim::{SimConfig, Simulation};

fn main() {
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 100,
        tx_rate: 5.0,
        target_ledgers: 4,
        seed: 3,
        ..SimConfig::default()
    });

    println!("=== governance: raising the base fee via consensus upgrade ===\n");
    let ids = sim.validator_ids();
    println!(
        "before: base_fee = {} stroops on all validators",
        sim.validator(ids[0]).herder.header.params.base_fee
    );

    // Configure two governing validators desiring BaseFee(200); the other
    // two stay non-governing (they echo valid upgrades).
    sim.configure_governance(&ids[..2], [Upgrade::BaseFee(200)].into());

    let report = sim.run();
    println!("ran {} ledgers", report.ledgers.len());

    for id in &ids {
        let params = sim.validator(*id).herder.header.params;
        assert_eq!(
            params.base_fee, 200,
            "validator {id} must adopt the upgrade"
        );
    }
    println!(
        "after:  base_fee = {} stroops on all {} validators ✓",
        sim.validator(ids[0]).herder.header.params.base_fee,
        ids.len()
    );
    println!("\nonly 2 of 4 validators *desired* the upgrade; the rest echoed a");
    println!("valid proposal — federated voting settled it like any other value.");
}

//! # stellar — a reproduction of "Fast and secure global payments with Stellar" (SOSP 2019)
//!
//! This facade crate re-exports the whole workspace under one name. The
//! pieces, bottom-up:
//!
//! | Layer | Crate | Paper section |
//! |-------|-------|---------------|
//! | Hashing, signatures, deterministic codec | [`crypto`] | — |
//! | SCP: federated Byzantine agreement | [`scp`] | §3 |
//! | Quorum-health analysis & tier synthesis | [`quorum`] | §6 |
//! | Ledger, transactions, order book, path payments | [`ledger`] | §5.1–§5.2 |
//! | Bucket list & history archive | [`buckets`] | §5.1, §5.4 |
//! | Durable node state (simulated disk, write-ahead persistence) | [`persist`] | §3, §5.4 |
//! | Herder: consensus values, upgrades, validators | [`herder`] | §5.3 |
//! | Horizon, bridge, compliance, federation | [`horizon`] | §5.4, Fig. 5 |
//! | Overlay: flooding, topology, traffic stats | [`overlay`] | §5.4 |
//! | Discrete-event simulation & experiments | [`sim`] | §7 |
//! | Fault injection, Byzantine adversaries, invariant monitoring | [`chaos`] | §3, §6 |
//! | Metrics registry, flight recorder, JSON export | [`telemetry`] | §7 |
//!
//! ## Quickstart
//!
//! Run a 4-validator network for five ledgers with payment load:
//!
//! ```
//! use stellar::sim::scenario::Scenario;
//! use stellar::sim::{SimConfig, Simulation};
//!
//! let report = Simulation::new(SimConfig {
//!     scenario: Scenario::ControlledMesh { n_validators: 4 },
//!     n_accounts: 100,
//!     tx_rate: 10.0,
//!     target_ledgers: 5,
//!     ..SimConfig::default()
//! })
//! .run_to_completion();
//! assert!(report.ledgers.len() >= 5);
//! println!("mean consensus latency: {:.1} ms", report.mean_consensus_ms());
//! ```
//!
//! See `examples/` for richer scenarios: cross-border path payments,
//! token issuance with KYC, network-resilience drills, and governance
//! upgrades.

#![forbid(unsafe_code)]

pub use stellar_buckets as buckets;
pub use stellar_chaos as chaos;
pub use stellar_crypto as crypto;
pub use stellar_herder as herder;
pub use stellar_horizon as horizon;
pub use stellar_ledger as ledger;
pub use stellar_overlay as overlay;
pub use stellar_persist as persist;
pub use stellar_quorum as quorum;
pub use stellar_scp as scp;
pub use stellar_sim as sim;
pub use stellar_store as store;
pub use stellar_telemetry as telemetry;

//! Pull-mode flooding end to end: advert/demand gossip must change how
//! payloads cross the overlay without changing *what* the network
//! agrees on, and it must survive lossy, reordering links by retrying
//! demands against alternate advertisers.

use std::collections::BTreeSet;
use stellar::chaos::{ChaosConfig, ChaosRun, FaultSchedule};
use stellar::crypto::sign::KeyPair;
use stellar::ledger::amount::{xlm, BASE_FEE};
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::Asset;
use stellar::overlay::{FloodMode, LinkFault, MsgKind};
use stellar::scp::NodeId;
use stellar::sim::scenario::Scenario;
use stellar::sim::simulation::SimSetup;
use stellar::sim::{SimConfig, Simulation};

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0x9011 + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

fn genesis() -> LedgerStore {
    let mut store = LedgerStore::new();
    for n in 0..3 {
        store.put_account(AccountEntry::new(acct(n), xlm(100)));
    }
    store
}

fn payment(from: u64, seq_num: u64, to: u64, amount: i64) -> TransactionEnvelope {
    TransactionEnvelope::sign(
        Transaction {
            source: acct(from),
            seq_num,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: acct(to),
                    asset: Asset::Native,
                    amount,
                },
            }],
        },
        &[&keys(from)],
    )
}

/// Runs the same submission script under the given flood mode and
/// returns the observer's header-hash chain, the run report, and the
/// finished sim.
fn scripted_run(
    mode: FloodMode,
) -> (
    Vec<(u64, stellar::crypto::Hash256)>,
    stellar::sim::SimReport,
    Simulation,
) {
    let mut sim = Simulation::with_setup(
        SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 0,
            tx_rate: 0.0,
            target_ledgers: 3,
            seed: 0x9011,
            flood_mode: mode,
            ..SimConfig::default()
        },
        SimSetup {
            genesis: Some(genesis()),
        },
    );
    // Submissions land early in their ledger interval (5000 ms), so
    // both modes have ample time — pull adds at most an advert tick
    // plus a demand round trip — to spread every tx before the trigger.
    sim.submit_transaction_at(1_100, payment(0, 1, 1, 7));
    sim.submit_transaction_at(1_300, payment(1, 1, 2, 5));
    sim.submit_transaction_at(6_100, payment(0, 2, 2, 3));
    let report = sim.run();
    let hashes = sim.header_hashes(sim.observer_id());
    (hashes, report, sim)
}

#[test]
fn push_and_pull_twin_runs_externalize_byte_identical_headers() {
    let (push_hashes, push_report, _push_sim) = scripted_run(FloodMode::Push);
    let (pull_hashes, pull_report, pull_sim) = scripted_run(FloodMode::Pull);

    // The whole point of the redesign: transport changes, ledgers don't.
    assert!(push_hashes.len() >= 3, "push run closed {push_hashes:?}");
    assert_eq!(
        push_hashes, pull_hashes,
        "pull transport altered externalized ledgers"
    );
    // Every validator in the pull run converged on the same chain.
    for id in pull_sim.validator_ids() {
        assert_eq!(
            pull_sim.header_hashes(id),
            pull_hashes,
            "validator {id:?} diverged under pull mode"
        );
    }

    // Sanity on the transport itself: push floods no control traffic,
    // pull moves every Tx/TxSet payload through advert → demand.
    let sum = |r: &stellar::sim::SimReport, kind: MsgKind| -> u64 {
        r.traffic.values().map(|t| t.out_count(kind)).sum()
    };
    assert_eq!(sum(&push_report, MsgKind::Advert), 0);
    assert_eq!(sum(&push_report, MsgKind::Demand), 0);
    assert!(sum(&pull_report, MsgKind::Advert) > 0, "no adverts sent");
    assert!(sum(&pull_report, MsgKind::Demand) > 0, "no demands sent");
    let fulfilled: u64 = pull_report.traffic.values().map(|t| t.pull_fulfilled).sum();
    assert!(fulfilled > 0, "no demand was ever fulfilled");
}

#[test]
fn pull_mode_chaos_with_lossy_reordering_links_stays_clean() {
    // Drop/delay/reorder faults on every link from t=1s hit adverts and
    // demands like any other delivery, forcing the demand scheduler
    // through its timeout → next-advertiser retry path. The invariant
    // monitor must stay clean: identical externalized ledgers on all
    // validators and no liveness stall.
    let target_ledgers = 3;
    let n: u32 = 6;
    let report = ChaosRun::new(ChaosConfig {
        sim: SimConfig {
            scenario: Scenario::ByzantineMesh { n_validators: n },
            n_accounts: 40,
            tx_rate: 2.0,
            target_ledgers,
            seed: 0xD3A1,
            max_sim_time_ms: 180_000,
            flood_mode: FloodMode::Pull,
            ..SimConfig::default()
        },
        adversaries: vec![],
        schedule: FaultSchedule::builder()
            .default_link_fault_at(
                1_000,
                LinkFault::none()
                    .with_drop(0.10)
                    .with_delay(0.25, 10, 60)
                    .with_reorder(0.15, 40),
            )
            .build(),
        liveness_bound_ms: 60_000,
        ..ChaosConfig::default()
    })
    .run();

    assert!(report.is_clean(), "violations: {:?}", report.violations);
    let intact: BTreeSet<NodeId> = report.intact.iter().copied().collect();
    assert_eq!(intact.len(), n as usize, "every validator should be intact");
    for (id, seq) in &report.final_seqs {
        assert!(
            *seq > target_ledgers,
            "{id:?} stuck at seq {seq} under pull-mode link faults"
        );
    }
}

//! Horizon-ecosystem integration: the Fig. 5 daemons against a live
//! consensus network (condensed from `examples/anchor_service.rs`).

use stellar::crypto::sign::KeyPair;
use stellar::horizon::compliance::PartyInfo;
use stellar::horizon::{
    BridgeServer, ComplianceDecision, ComplianceServer, FederationServer, Horizon,
};
use stellar::ledger::amount::{xlm, BASE_FEE};
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::ops::{apply_operation, ExecEnv};
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::Asset;
use stellar::sim::scenario::Scenario;
use stellar::sim::simulation::SimSetup;
use stellar::sim::{SimConfig, Simulation};

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0xF10A + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

#[test]
fn federation_compliance_submission_bridge_roundtrip() {
    let anchor = acct(0);
    let alice = acct(1);
    let benito = acct(2);
    let usd = Asset::issued(anchor, "USD");

    let mut store = LedgerStore::new();
    for id in [anchor, alice, benito] {
        store.put_account(AccountEntry::new(id, xlm(100)));
    }
    {
        let env = ExecEnv::default();
        let mut d = store.begin();
        for who in [alice, benito] {
            apply_operation(
                &mut d,
                who,
                &Operation::ChangeTrust {
                    asset: usd.clone(),
                    limit: 1_000_000,
                },
                &env,
            )
            .unwrap();
        }
        apply_operation(
            &mut d,
            anchor,
            &Operation::Payment {
                destination: alice,
                asset: usd.clone(),
                amount: 10_000,
            },
            &env,
        )
        .unwrap();
        let ch = d.into_changes();
        store.commit(ch);
    }

    let mut federation = FederationServer::new("anchor.mx");
    federation.register("benito", benito, Some(Memo::Id(42)));
    let mut compliance = ComplianceServer::new();
    compliance.sanction_name("Bad Actor");
    let mut bridge = BridgeServer::new();
    bridge.watch(benito);

    // Resolve + screen.
    let record = federation.resolve("benito*anchor.mx").unwrap().clone();
    let d = compliance.screen(
        &PartyInfo {
            name: "Alice".into(),
            country: "US".into(),
            account: alice,
        },
        &PartyInfo {
            name: "Benito".into(),
            country: "MX".into(),
            account: benito,
        },
    );
    assert_eq!(d, ComplianceDecision::Allowed);

    // Submit through consensus.
    let tx = Transaction {
        source: alice,
        seq_num: 1,
        fee: BASE_FEE,
        time_bounds: None,
        memo: record.required_memo.clone().unwrap(),
        operations: vec![SourcedOperation {
            source: None,
            op: Operation::Payment {
                destination: record.account,
                asset: usd.clone(),
                amount: 777,
            },
        }],
    };
    let envelope = TransactionEnvelope::sign(tx, &[&keys(1)]);
    let tx_hash = envelope.hash();
    let mut sim = Simulation::with_setup(
        SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 0,
            tx_rate: 0.0,
            target_ledgers: 2,
            seed: 404,
            ..SimConfig::default()
        },
        SimSetup {
            genesis: Some(store),
        },
    );
    sim.submit_transaction_at(1100, envelope);
    sim.run();

    let herder = &sim.validator(sim.observer_id()).herder;
    // Bridge notification fires once with the routing memo.
    let notes = bridge.poll(herder);
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].amount, 777);
    assert_eq!(notes[0].memo, Memo::Id(42));
    // Horizon finds the transaction and the new balance.
    let rec = Horizon::find_transaction_exhaustive(herder, tx_hash).unwrap();
    assert_eq!(rec.envelope.hash(), tx_hash);
    assert_eq!(notes[0].ledger_seq, rec.ledger_seq);
    // The archive hit carries the lifecycle timeline the tracing layer
    // recorded on this node, ending at horizon visibility.
    let timeline = rec.timeline.expect("traced run attaches a timeline");
    assert_eq!(timeline.last().unwrap().phase.tag(), "horizon_visible");
    let info = Horizon::account(herder, benito).unwrap();
    assert_eq!(info.trustlines[0].1, 777);
}

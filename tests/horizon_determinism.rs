//! Twin-run determinism: the horizon pipeline is off-consensus.
//!
//! The ingestion indexer, subscription hub, and admission bookkeeping
//! consume each close *after* it is final and feed nothing back, so a
//! node running the full pipeline and a node running none of it must
//! externalize byte-identical artifacts — per-ledger header hashes and
//! the final bucket level hashes. If they ever diverged, a horizon
//! deployment choice could fork the network.
//!
//! Runs on both store backends explicitly, and again at the simulation
//! level under Poisson payment load.

use std::collections::BTreeMap;
use stellar::crypto::sign::KeyPair;
use stellar::crypto::Hash256;
use stellar::herder::Herder;
use stellar::horizon::{AdmissionConfig, HorizonPipeline, Topic};
use stellar::ledger::amount::{xlm, BASE_FEE};
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::{Asset, TransactionSet};
use stellar::scp::NodeId;
use stellar::sim::scenario::Scenario;
use stellar::sim::{SimConfig, Simulation};

const ACCOUNTS: u64 = 16;
const LEDGERS: u64 = 6;

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0xD0_0D + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

fn genesis() -> LedgerStore {
    let mut store = LedgerStore::new();
    for i in 0..ACCOUNTS {
        store.put_account(AccountEntry::new(acct(i), xlm(1_000)));
    }
    store
}

fn payment(from: u64, to: u64, seq: u64, amount: i64) -> TransactionEnvelope {
    TransactionEnvelope::sign(
        Transaction {
            source: acct(from),
            seq_num: seq,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: acct(to),
                    asset: Asset::Native,
                    amount,
                },
            }],
        },
        &[&keys(from)],
    )
}

/// Closes `LEDGERS` ledgers of deterministic payments on one herder,
/// optionally running the full horizon pipeline at every close. Returns
/// (per-ledger header hashes, final bucket level hashes).
fn drive(
    backend: stellar::store::BackendKind,
    with_pipeline: bool,
) -> (Vec<Hash256>, Vec<Hash256>) {
    let store = stellar::store::open(&genesis(), backend, &stellar::store::DiskConfig::default());
    let mut h = Herder::new(NodeId(0), store, BTreeMap::new());
    let mut pipeline = with_pipeline.then(|| {
        let mut p = HorizonPipeline::attach(&mut h, AdmissionConfig::default());
        // Exercise the hub, not just the indexer: a subscriber that
        // actually receives every close's deltas.
        p.hub.subscribe(Topic::TxStatus);
        p.hub.subscribe(Topic::Account(acct(1)));
        p
    });
    let mut headers = Vec::new();
    for l in 0..LEDGERS {
        let txs: Vec<TransactionEnvelope> = (0..4)
            .map(|i| {
                payment(
                    i,
                    (i + 1 + l) % ACCOUNTS,
                    l + 1,
                    10 + (l as i64) * 7 + i as i64,
                )
            })
            .collect();
        let set = TransactionSet::assemble(h.header.hash(), txs, 100);
        h.learn_tx_set(set.clone());
        let v = stellar::herder::StellarValue::new(set.hash(), h.header.close_time + 5);
        assert!(h.apply_externalized(h.current_slot(), &v));
        if let Some(p) = pipeline.as_mut() {
            p.on_close(&mut h);
        }
        headers.push(h.header.hash());
    }
    if let Some(p) = &pipeline {
        assert_eq!(p.indexer.ingested_seq(), h.header.ledger_seq);
        assert!(
            p.registry().counter("ingest.ledgers") == LEDGERS
                && p.registry().counter("stream.events") > 0,
            "the pipeline must actually have run for the twin-run to mean anything"
        );
    }
    (headers, h.buckets.level_hashes())
}

#[test]
fn indexer_on_off_twin_runs_externalize_identical_artifacts() {
    for backend in [
        stellar::store::BackendKind::Mem,
        stellar::store::BackendKind::Disk,
    ] {
        let (h_on, b_on) = drive(backend, true);
        let (h_off, b_off) = drive(backend, false);
        assert_eq!(h_on, h_off, "header hashes diverged on {backend:?}");
        assert_eq!(b_on, b_off, "bucket level hashes diverged on {backend:?}");
    }
}

/// A permissive admission tuning: the front door is installed (the code
/// path runs) but never sheds, so the submitted transaction stream —
/// and therefore consensus input — matches the pipeline-free twin.
fn permissive_admission() -> AdmissionConfig {
    AdmissionConfig {
        bucket_capacity: 1 << 20,
        refill_per_sec: 1 << 20,
        queue_capacity: 1 << 20,
        max_pending: 1 << 20,
        ..AdmissionConfig::default()
    }
}

#[test]
fn sim_twin_runs_with_and_without_pipeline_close_identically() {
    let cfg = |horizon: Option<AdmissionConfig>| SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 50,
        tx_rate: 10.0,
        target_ledgers: 5,
        horizon,
        horizon_query_rate: if horizon.is_some() { 20.0 } else { 0.0 },
        ..SimConfig::default()
    };
    let mut with = Simulation::new(cfg(Some(permissive_admission())));
    let mut without = Simulation::new(cfg(None));
    let r_with = with.run();
    let r_without = without.run();
    assert!(r_with.ledgers.len() >= 5 && r_without.ledgers.len() >= 5);

    let obs = with.observer_id();
    assert_eq!(obs, without.observer_id());
    let vw = with.validator(obs);
    let vo = without.validator(obs);
    assert_eq!(
        vw.herder.header.hash(),
        vo.herder.header.hash(),
        "final headers diverged"
    );
    // The header's snapshot hash commits to the full bucket list, so
    // header equality covers bucket byte-identity too; compare it
    // explicitly for the error message.
    assert_eq!(
        vw.herder.header.snapshot_hash, vo.herder.header.snapshot_hash,
        "bucket snapshot hashes diverged"
    );
    // Every archived header along the way, not just the tip.
    let latest = vw.herder.archive.latest_seq().expect("closed ledgers");
    for seq in 2..=latest {
        assert_eq!(
            vw.herder.archive.header(seq).map(|h| h.hash()),
            vo.herder.archive.header(seq).map(|h| h.hash()),
            "archived header {seq} diverged"
        );
    }
    // And the pipeline demonstrably ran: it ingested to the tip.
    let p = with.horizon().expect("pipeline attached");
    assert_eq!(p.indexer.ingested_seq(), vw.herder.header.ledger_seq);
    assert!(with.horizon_metrics().counter("horizon.queries") > 0);
}

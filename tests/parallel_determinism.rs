//! Twin-run determinism: parallel apply must be byte-identical to
//! sequential apply.
//!
//! Footprint-scheduled parallel apply (`LedgerParams::apply_threads > 1`)
//! is a pure optimization of the close path. The same transaction stream
//! is closed on independent stores — one sequential, one per parallel
//! thread count — and every externalized artifact must match bit for bit:
//! per-ledger header hashes (which commit to `hash_results`), the entry
//! change feed driving the bucket list, bucket level hashes, fees, and
//! the final store contents. The workload deliberately mixes payments,
//! crossing offers, path payments (imprecise footprints → sequential
//! fallback), trustline/data churn, and failing transactions so both the
//! worker-commit and the re-run paths are exercised.
//!
//! Runs on whichever backend `STELLAR_STORE_BACKEND` selects, so the CI
//! matrix covers mem and disk.

use stellar::buckets::BucketList;
use stellar::crypto::sign::KeyPair;
use stellar::crypto::Hash256;
use stellar::ledger::amount::{xlm, Price, BASE_FEE};
use stellar::ledger::apply::close_ledger;
use stellar::ledger::entry::{AccountEntry, AccountId, LedgerEntry, TrustLineEntry};
use stellar::ledger::header::{LedgerHeader, LedgerParams};
use stellar::ledger::sigcache::SigVerifyCache;
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::{ApplyStats, Asset, TransactionSet, TxResult};
use stellar::store::{open, BackendKind, DiskConfig};

const ACCOUNTS: u64 = 32;
const LEDGERS: u64 = 8;
const TXS_PER_LEDGER: u64 = 16;

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0xFEED + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

fn usd() -> Asset {
    Asset::issued(acct(0), "USD")
}

fn eur() -> Asset {
    Asset::issued(acct(0), "EUR")
}

fn genesis_store() -> LedgerStore {
    let mut entries: Vec<LedgerEntry> = Vec::new();
    for i in 0..ACCOUNTS {
        let mut a = AccountEntry::new(acct(i), xlm(10_000));
        a.num_subentries = if i == 0 { 0 } else { 2 };
        entries.push(LedgerEntry::Account(a));
        if i != 0 {
            for asset in [usd(), eur()] {
                entries.push(LedgerEntry::TrustLine(TrustLineEntry {
                    account: acct(i),
                    asset,
                    balance: 500_000,
                    limit: i64::MAX / 2,
                    authorized: true,
                }));
            }
        }
    }
    let template = LedgerStore::from_entries(entries);
    open(&template, BackendKind::from_env(), &DiskConfig::default())
}

/// One deterministic transaction for global index `n`, from a source
/// account that submits at most once per ledger.
fn nth_op(n: u64, src: u64) -> Operation {
    match n % 8 {
        // Payments — native and issued — between shifting pairs.
        0 | 1 => Operation::Payment {
            destination: acct(1 + (src + 5) % (ACCOUNTS - 1)),
            asset: Asset::Native,
            amount: 10 + (n % 90) as i64,
        },
        2 => Operation::Payment {
            destination: acct(1 + (src + 11) % (ACCOUNTS - 1)),
            asset: usd(),
            amount: 5 + (n % 40) as i64,
        },
        // Resting or crossing offers on USD/XLM, alternating sides.
        3 => Operation::ManageOffer {
            offer_id: 0,
            selling: usd(),
            buying: Asset::Native,
            amount: 40 + (n % 9) as i64,
            price: Price::new(90 + (n % 25) as u32, 100),
            passive: false,
        },
        4 => Operation::ManageOffer {
            offer_id: 0,
            selling: Asset::Native,
            buying: usd(),
            amount: 30 + (n % 11) as i64,
            price: Price::new(95 + (n % 15) as u32, 100),
            passive: n % 16 == 4,
        },
        // Path payments: XLM → USD directly, or XLM → USD → EUR. Their
        // footprints are imprecise, forcing the sequential fallback.
        5 => {
            if n % 16 == 5 {
                Operation::PathPayment {
                    send_asset: Asset::Native,
                    send_max: 10_000,
                    destination: acct(1 + (src + 7) % (ACCOUNTS - 1)),
                    dest_asset: usd(),
                    dest_amount: 1 + (n % 5) as i64,
                    path: vec![],
                }
            } else {
                Operation::PathPayment {
                    send_asset: Asset::Native,
                    send_max: 10_000,
                    destination: acct(1 + (src + 9) % (ACCOUNTS - 1)),
                    dest_asset: eur(),
                    dest_amount: 1 + (n % 3) as i64,
                    path: vec![usd()],
                }
            }
        }
        // Account-data and trustline churn.
        6 => {
            if n % 16 == 6 {
                Operation::ManageData {
                    name: format!("k{}", n % 4),
                    value: Some(vec![n as u8; 4]),
                }
            } else {
                Operation::ChangeTrust {
                    asset: usd(),
                    limit: i64::MAX / 2 - (n % 7) as i64,
                }
            }
        }
        // A transaction whose operation fails at apply time (USD balance
        // is far below this amount): only the fee charge and sequence
        // bump must land, identically on both paths.
        _ => Operation::Payment {
            destination: acct(1 + (src + 3) % (ACCOUNTS - 1)),
            asset: usd(),
            amount: 100_000_000,
        },
    }
}

fn batch(
    ledger: u64,
    next_seq: &mut std::collections::HashMap<u64, u64>,
) -> Vec<TransactionEnvelope> {
    (0..TXS_PER_LEDGER)
        .map(|t| {
            let n = ledger * TXS_PER_LEDGER + t;
            // Each ledger draws sources from a sliding window so no
            // account submits twice in one ledger.
            let src = 1 + ((ledger * 3 + t * 2) % (ACCOUNTS - 1));
            let seq = {
                let s = next_seq.entry(src).or_insert(1);
                let v = *s;
                *s += 1;
                v
            };
            let mut makers = Vec::new();
            if ledger == 0 {
                // First ledger seeds order-book liquidity so later path
                // payments have something to cross.
                makers.push(Operation::ManageOffer {
                    offer_id: 0,
                    selling: usd(),
                    buying: Asset::Native,
                    amount: 500,
                    price: Price::new(100 + t as u32, 100),
                    passive: false,
                });
                makers.push(Operation::ManageOffer {
                    offer_id: 0,
                    selling: eur(),
                    buying: usd(),
                    amount: 400,
                    price: Price::new(100 + t as u32, 100),
                    passive: false,
                });
            } else {
                makers.push(nth_op(n, src));
            }
            let operations = makers
                .into_iter()
                .map(|op| SourcedOperation { source: None, op })
                .collect::<Vec<_>>();
            let fee = BASE_FEE * operations.len() as i64;
            TransactionEnvelope::sign(
                Transaction {
                    source: acct(src),
                    seq_num: seq,
                    fee,
                    time_bounds: None,
                    memo: Memo::None,
                    operations,
                },
                &[&keys(src)],
            )
        })
        .collect()
}

struct RunOut {
    header_hashes: Vec<Hash256>,
    level_hashes: Vec<Hash256>,
    results: Vec<Vec<TxResult>>,
    changes: Vec<Vec<(stellar::ledger::entry::LedgerKey, Option<LedgerEntry>)>>,
    fees: Vec<i64>,
    stats: ApplyStats,
}

fn run(apply_threads: u32) -> RunOut {
    let mut store = genesis_store();
    let mut buckets = BucketList::seed(store.all_entries());
    let mut header = LedgerHeader::genesis(Hash256::ZERO);
    header.snapshot_hash = buckets.hash();
    let params = LedgerParams {
        apply_threads,
        ..LedgerParams::default()
    };
    let mut sig_cache = SigVerifyCache::new(1 << 16);
    let mut next_seq = std::collections::HashMap::new();
    let mut out = RunOut {
        header_hashes: Vec::new(),
        level_hashes: Vec::new(),
        results: Vec::new(),
        changes: Vec::new(),
        fees: Vec::new(),
        stats: ApplyStats::default(),
    };
    for ledger in 0..LEDGERS {
        let set = TransactionSet::assemble(header.hash(), batch(ledger, &mut next_seq), u32::MAX);
        assert_eq!(set.txs.len() as u64, TXS_PER_LEDGER);
        let result = close_ledger(
            &mut store,
            &header,
            &set,
            header.close_time + 5,
            params,
            &mut sig_cache,
        );
        buckets.add_batch(result.header.ledger_seq, &result.changes);
        header = result.header;
        header.snapshot_hash = buckets.hash();
        out.header_hashes.push(header.hash());
        out.results.push(result.results);
        out.changes.push(result.changes);
        out.fees.push(result.fees_collected);
        out.stats.waves += result.stats.waves;
        out.stats.parallel_txs += result.stats.parallel_txs;
        out.stats.conflict_reruns += result.stats.conflict_reruns;
        out.stats.footprint_fallbacks += result.stats.footprint_fallbacks;
    }
    out.level_hashes = buckets.level_hashes();
    out
}

fn assert_twin(seq: &RunOut, par: &RunOut, threads: u32) {
    assert_eq!(
        seq.header_hashes, par.header_hashes,
        "header hashes diverged at {threads} threads"
    );
    assert_eq!(
        seq.level_hashes, par.level_hashes,
        "bucket level hashes diverged at {threads} threads"
    );
    assert_eq!(
        seq.results, par.results,
        "transaction results diverged at {threads} threads"
    );
    assert_eq!(
        seq.changes, par.changes,
        "entry change feeds diverged at {threads} threads"
    );
    assert_eq!(seq.fees, par.fees, "fees diverged at {threads} threads");
}

#[test]
fn parallel_apply_externalizes_identical_state() {
    let sequential = run(1);
    // The sequential path never touches the scheduler.
    assert_eq!(sequential.stats.waves, 0);
    assert_eq!(sequential.stats.parallel_txs, 0);

    for threads in [2, 4, 8] {
        let parallel = run(threads);
        assert_twin(&sequential, &parallel, threads);
        // The parallel path must actually have run in waves and have
        // committed real work off the main thread...
        assert!(parallel.stats.waves > 0, "no waves at {threads} threads");
        assert!(
            parallel.stats.parallel_txs > 0,
            "nothing ran on workers at {threads} threads"
        );
        // ...and the workload's path payments must have exercised the
        // imprecise-footprint sequential fallback.
        assert!(
            parallel.stats.footprint_fallbacks > 0,
            "no footprint fallbacks at {threads} threads — workload too tame"
        );
    }
}

/// Closes one ledger holding exactly `envs` on twin stores (sequential
/// and 4-thread parallel) and returns both close results.
fn close_twins(
    envs: Vec<TransactionEnvelope>,
) -> (
    stellar::ledger::apply::CloseResult,
    stellar::ledger::apply::CloseResult,
) {
    let run = |apply_threads: u32| {
        let mut store = genesis_store();
        let header = LedgerHeader::genesis(Hash256::ZERO);
        let set = TransactionSet::assemble(header.hash(), envs.clone(), u32::MAX);
        close_ledger(
            &mut store,
            &header,
            &set,
            header.close_time + 5,
            LedgerParams {
                apply_threads,
                ..LedgerParams::default()
            },
            &mut SigVerifyCache::disabled(),
        )
    };
    (run(1), run(4))
}

fn one_op_tx(src: u64, op: Operation) -> TransactionEnvelope {
    one_op_tx_seq(src, 1, op)
}

fn one_op_tx_seq(src: u64, seq_num: u64, op: Operation) -> TransactionEnvelope {
    TransactionEnvelope::sign(
        Transaction {
            source: acct(src),
            seq_num,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation { source: None, op }],
        },
        &[&keys(src)],
    )
}

/// Two offers on the same pair serialize into different waves; the
/// second crosses the first's *same-close* offer, whose maker the
/// footprint could not declare (it peeked the pre-close book). The
/// worker's read escapes its declared footprint, is detected, and the
/// transaction re-runs sequentially — with byte-identical output.
#[test]
fn undeclared_crossing_is_detected_and_rerun() {
    let envs = vec![
        one_op_tx(
            1,
            Operation::ManageOffer {
                offer_id: 0,
                selling: usd(),
                buying: Asset::Native,
                amount: 100,
                price: Price::new(1, 1),
                passive: false,
            },
        ),
        one_op_tx(
            2,
            Operation::ManageOffer {
                offer_id: 0,
                selling: Asset::Native,
                buying: usd(),
                amount: 100,
                price: Price::new(1, 1),
                passive: false,
            },
        ),
        // An unrelated payment that shares the wave with one offer and
        // must be unaffected by the re-run.
        one_op_tx(
            3,
            Operation::Payment {
                destination: acct(4),
                asset: Asset::Native,
                amount: 7,
            },
        ),
        // A second payment from the same source: its sequence-number
        // write conflicts with the first, landing it in wave 2 so the
        // escaping offer shares that wave with another runnable
        // transaction (solo waves skip worker execution by design).
        one_op_tx_seq(
            3,
            2,
            Operation::Payment {
                destination: acct(4),
                asset: Asset::Native,
                amount: 9,
            },
        ),
    ];
    let (seq, par) = close_twins(envs);
    assert!(
        par.stats.conflict_reruns >= 1,
        "crossing a same-close offer must escape and re-run, stats: {:?}",
        par.stats
    );
    assert!(par.stats.waves >= 2, "same-pair offers must serialize");
    assert_eq!(seq.header.hash(), par.header.hash());
    assert_eq!(seq.results, par.results);
    assert_eq!(seq.changes, par.changes);
}

/// Path payments have imprecise footprints (the crossed book pages
/// depend on runtime liquidity), so the parallel path never hands them
/// to a worker: they take the sequential fallback at their commit slot,
/// counted in `footprint_fallbacks` — and externalize identically.
#[test]
fn path_payment_takes_sequential_fallback() {
    // Canonical apply order sorts by source account id: make the
    // liquidity provider whichever of the two sorts first, so its offer
    // rests before the path payment tries to cross it.
    let (maker, taker) = if acct(1) < acct(2) { (1, 2) } else { (2, 1) };
    let envs = vec![
        one_op_tx(
            maker,
            Operation::ManageOffer {
                offer_id: 0,
                selling: usd(),
                buying: Asset::Native,
                amount: 500,
                price: Price::new(1, 1),
                passive: false,
            },
        ),
        one_op_tx(
            taker,
            Operation::PathPayment {
                send_asset: Asset::Native,
                send_max: 1_000,
                destination: acct(5),
                dest_asset: usd(),
                dest_amount: 10,
                path: vec![],
            },
        ),
        one_op_tx(
            3,
            Operation::Payment {
                destination: acct(6),
                asset: Asset::Native,
                amount: 11,
            },
        ),
    ];
    let (seq, par) = close_twins(envs);
    assert!(
        par.stats.footprint_fallbacks >= 1,
        "path payment must fall back, stats: {:?}",
        par.stats
    );
    assert_eq!(seq.header.hash(), par.header.hash());
    assert_eq!(seq.results, par.results);
    assert_eq!(seq.changes, par.changes);
    // Every transaction — including the falling-back path payment —
    // must actually succeed, or the fallback exercised nothing. (Which
    // result belongs to which tx depends on set ordering; all-success
    // makes the check order-independent.)
    assert!(
        par.results
            .iter()
            .all(|r| matches!(r, TxResult::Success { .. })),
        "expected all successes: {:?}",
        par.results
    );
}

//! Governance integration: upgrades through full consensus (§5.3).

use std::collections::BTreeSet;
use stellar::herder::Upgrade;
use stellar::sim::scenario::Scenario;
use stellar::sim::{SimConfig, Simulation};

fn run_with_governance(
    desired: BTreeSet<Upgrade>,
    governing_count: usize,
) -> (Simulation, stellar::sim::SimReport) {
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 50,
        tx_rate: 2.0,
        target_ledgers: 4,
        seed: 5150,
        ..SimConfig::default()
    });
    let ids = sim.validator_ids();
    sim.configure_governance(&ids[..governing_count], desired);
    let report = sim.run();
    (sim, report)
}

#[test]
fn base_fee_upgrade_adopted_by_all() {
    let (sim, report) = run_with_governance([Upgrade::BaseFee(500)].into(), 2);
    assert!(report.ledgers.len() >= 4);
    for id in sim.validator_ids() {
        assert_eq!(sim.validator(id).herder.header.params.base_fee, 500);
    }
}

#[test]
fn multiple_upgrades_apply_together() {
    let desired: BTreeSet<Upgrade> = [
        Upgrade::BaseFee(250),
        Upgrade::ProtocolVersion(3),
        Upgrade::MaxTxSetOps(5000),
    ]
    .into();
    let (sim, _) = run_with_governance(desired, 2);
    for id in sim.validator_ids() {
        let p = sim.validator(id).herder.header.params;
        assert_eq!(p.base_fee, 250);
        assert_eq!(p.protocol_version, 3);
        assert_eq!(p.max_tx_set_ops, 5000);
    }
}

#[test]
fn no_governing_validators_no_upgrades() {
    let (sim, _) = run_with_governance(BTreeSet::new(), 0);
    for id in sim.validator_ids() {
        let p = sim.validator(id).herder.header.params;
        assert_eq!(p.base_fee, stellar::ledger::amount::BASE_FEE);
        assert_eq!(p.protocol_version, 1);
    }
}

#[test]
fn satisfied_upgrades_stop_being_proposed() {
    // After adoption, later ledgers' proposals carry no upgrades — the
    // governing validators see their desire satisfied.
    let (sim, _) = run_with_governance([Upgrade::BaseFee(300)].into(), 2);
    let id = sim.observer_id();
    let herder = &sim.validator(id).herder;
    // The last archived tx-set-bearing value applied with base_fee 300;
    // the header's params reflect it and the fee pool accrued at the new
    // rate only after the switch.
    assert_eq!(herder.header.params.base_fee, 300);
    // Proposals made now carry no upgrades.
    let mut probe = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 10,
        tx_rate: 0.0,
        target_ledgers: 1,
        seed: 1,
        ..SimConfig::default()
    });
    let ids = probe.validator_ids();
    probe.configure_governance(
        &ids[..1],
        [Upgrade::BaseFee(stellar::ledger::amount::BASE_FEE)].into(),
    );
    // Desired == current params: nothing proposed.
    let _ = probe.run();
    for id in probe.validator_ids() {
        assert_eq!(
            probe.validator(id).herder.header.params.base_fee,
            stellar::ledger::amount::BASE_FEE
        );
    }
}

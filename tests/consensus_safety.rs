//! Cross-crate integration tests: SCP safety and liveness through the full
//! validator stack (paper §3).
//!
//! Safety here means what the paper means: no two intertwined nodes ever
//! externalize different values for the same slot, no matter the faults we
//! inject.

use std::collections::BTreeSet;
use stellar::crypto::sign::KeyPair;
use stellar::scp::statement::{Ballot, Statement, StatementKind};
use stellar::scp::test_harness::{harness_keys, InMemoryNetwork};
use stellar::scp::{Envelope, NodeId, QuorumSet, Value};

fn ids(n: u32) -> Vec<NodeId> {
    (0..n).map(NodeId).collect()
}

fn val(s: &str) -> Value {
    Value::new(s.as_bytes().to_vec())
}

#[test]
fn agreement_across_sizes_and_slots() {
    for n in [4u32, 7, 10] {
        let nodes = ids(n);
        let qset = QuorumSet::byzantine(nodes.clone());
        let mut net = InMemoryNetwork::new(&nodes, &qset, u64::from(n));
        for slot in 1..=3u64 {
            for (i, node) in nodes.iter().enumerate() {
                net.propose(*node, slot, val(&format!("s{slot}-proposal{i}")));
            }
            let decided = net.run_to_quiescence(slot);
            assert_eq!(decided.len(), n as usize, "n={n} slot={slot}");
            let distinct: BTreeSet<_> = decided.values().collect();
            assert_eq!(distinct.len(), 1, "n={n} slot={slot}: divergent decisions");
        }
    }
}

#[test]
fn safety_under_crash_quorum_boundary() {
    // 7 nodes, threshold 5 (f=2): any 2 crashes tolerated, 3 crashes block.
    let nodes = ids(7);
    let qset = QuorumSet::byzantine(nodes.clone());

    let mut net = InMemoryNetwork::new(&nodes, &qset, 1);
    net.crash(NodeId(5));
    net.crash(NodeId(6));
    for node in &nodes[..5] {
        net.propose(*node, 1, val("v"));
    }
    assert_eq!(net.run_to_quiescence(1).len(), 5, "two crashes tolerated");

    let mut net = InMemoryNetwork::new(&nodes, &qset, 2);
    net.crash(NodeId(4));
    net.crash(NodeId(5));
    net.crash(NodeId(6));
    for node in &nodes[..4] {
        net.propose(*node, 1, val("v"));
    }
    assert!(
        net.run_to_quiescence(1).is_empty(),
        "three crashes must block (no quorum)"
    );
}

#[test]
fn late_joiner_catches_up_from_externalize_messages() {
    // Nodes 0..3 decide while node 3 is crashed; when revived and fed the
    // traffic, the Externalize statements let it accept-commit via its
    // v-blocking set.
    let nodes = ids(4);
    let qset = QuorumSet::majority(nodes.clone());
    let mut net = InMemoryNetwork::new(&nodes, &qset, 3);
    net.crash(NodeId(3));
    for node in &nodes[..3] {
        net.propose(*node, 1, val("ledger-1"));
    }
    let decided = net.run_to_quiescence(1);
    assert_eq!(decided.len(), 3);

    net.revive(NodeId(3));
    // Replay the survivors' final statements to the rejoined node.
    let mut finals: Vec<Envelope> = Vec::new();
    for node in &nodes[..3] {
        let scp = net.node(*node);
        if let Some(slot) = scp.slot(1) {
            for st in slot.own_statements(*node) {
                finals.push(Envelope::sign(st, &harness_keys(3, *node)));
            }
        }
    }
    for env in &finals {
        net.inject(env);
    }
    let decided = net.decisions(1);
    assert_eq!(decided.len(), 4, "revived node must adopt the decision");
    let distinct: BTreeSet<_> = decided.values().collect();
    assert_eq!(distinct.len(), 1);
}

#[test]
fn forged_envelopes_are_rejected() {
    let nodes = ids(4);
    let qset = QuorumSet::majority(nodes.clone());
    let mut net = InMemoryNetwork::new(&nodes, &qset, 4);
    for node in &nodes {
        net.propose(*node, 1, val("good"));
    }
    // An attacker signs with the wrong key, claiming to be node 0.
    let attacker_keys = KeyPair::from_seed(0xE711);
    let forged = Envelope::sign(
        Statement {
            node: NodeId(0),
            slot: 1,
            quorum_set: qset.clone(),
            kind: StatementKind::Externalize {
                commit: Ballot::new(1, val("evil")),
                h_n: 1,
            },
        },
        &attacker_keys,
    );
    net.inject(&forged);
    let decided = net.run_to_quiescence(1);
    let distinct: BTreeSet<_> = decided.values().collect();
    assert_eq!(distinct.len(), 1);
    assert_ne!(*distinct.iter().next().unwrap(), &val("evil"));
    for node in &nodes[1..] {
        assert!(
            net.node(*node).bad_signature_count() > 0,
            "forgery must be counted"
        );
    }
}

#[test]
fn equivocating_byzantine_node_cannot_split_intertwined_majority() {
    // Node 3 is Byzantine: it sends different nominate votes to different…
    // the harness floods, so instead we model the strongest cheap attack:
    // injecting contradictory *signed* statements from node 3 (it owns its
    // key). Intertwined honest nodes must still agree.
    let nodes = ids(4);
    let qset = QuorumSet::byzantine(nodes.clone()); // 3-of-4
    let mut net = InMemoryNetwork::new(&nodes, &qset, 5);
    net.crash(NodeId(3)); // silence the honest instance of node 3
    for node in &nodes[..3] {
        net.propose(*node, 1, val("honest"));
    }
    // Byzantine node 3 shouts two contradictory externalizes.
    for evil in ["evil-a", "evil-b"] {
        let env = Envelope::sign(
            Statement {
                node: NodeId(3),
                slot: 1,
                quorum_set: qset.clone(),
                kind: StatementKind::Externalize {
                    commit: Ballot::new(1, val(evil)),
                    h_n: 1,
                },
            },
            &harness_keys(5, NodeId(3)),
        );
        net.inject(&env);
    }
    let decided = net.run_to_quiescence(1);
    let distinct: BTreeSet<_> = decided.values().collect();
    assert_eq!(distinct.len(), 1, "honest nodes diverged: {decided:?}");
}

#[test]
fn heterogeneous_slices_intertwined_agreement() {
    // Tiered config: each of 3 orgs × 3 nodes requires 2-of-3 orgs, each
    // org at 2-of-3 — heterogeneity comes from nodes evaluating their own
    // nested structures.
    let all = ids(9);
    let orgs: Vec<QuorumSet> = (0..3)
        .map(|o| QuorumSet::threshold_of(2, all[o * 3..o * 3 + 3].to_vec()))
        .collect();
    let tiered = QuorumSet {
        threshold: 2,
        validators: vec![],
        inner: orgs,
    };
    let mut net = InMemoryNetwork::new(&all, &tiered, 6);
    for (i, node) in all.iter().enumerate() {
        net.propose(*node, 1, val(&format!("p{i}")));
    }
    let decided = net.run_to_quiescence(1);
    assert_eq!(decided.len(), 9);
    let distinct: BTreeSet<_> = decided.values().collect();
    assert_eq!(distinct.len(), 1);
}

#[test]
fn disjoint_islands_can_diverge_without_intertwining() {
    // The FBA caveat (§3.1): two configurations that never reference each
    // other are separate intact sets and may decide differently. This is
    // by design, not a bug — "divergence, but only between organizations
    // neither of which requires agreement with the other."
    let island_a = ids(3);
    let island_b: Vec<NodeId> = (10..13).map(NodeId).collect();
    let qa = QuorumSet::majority(island_a.clone());
    let qb = QuorumSet::majority(island_b.clone());
    let mut config: Vec<(NodeId, QuorumSet)> = island_a.iter().map(|n| (*n, qa.clone())).collect();
    config.extend(island_b.iter().map(|n| (*n, qb.clone())));
    let mut net = InMemoryNetwork::with_qsets(config, 7);
    for n in &island_a {
        net.propose(*n, 1, val("chain-a"));
    }
    for n in &island_b {
        net.propose(*n, 1, val("chain-b"));
    }
    let decided = net.run_to_quiescence(1);
    assert_eq!(decided.len(), 6);
    assert_eq!(decided[&NodeId(0)], val("chain-a"));
    assert_eq!(decided[&NodeId(10)], val("chain-b"));
}

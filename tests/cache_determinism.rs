//! Twin-run determinism: the close-path caches are pure optimizations.
//!
//! Two nodes replay the identical transaction stream through the full
//! submission → nomination-check → apply → snapshot pipeline, one with
//! the signature-verify cache enabled and one with it disabled. Every
//! externalized artifact — per-ledger header hash and the final bucket
//! level hashes — must be bit-for-bit identical, otherwise a cache could
//! fork the network.

use stellar::buckets::BucketList;
use stellar::crypto::sign::KeyPair;
use stellar::crypto::Hash256;
use stellar::herder::queue::TxQueue;
use stellar::ledger::amount::{xlm, Price, BASE_FEE};
use stellar::ledger::apply::close_ledger;
use stellar::ledger::entry::{AccountEntry, AccountId, LedgerEntry, TrustLineEntry};
use stellar::ledger::header::{LedgerHeader, LedgerParams};
use stellar::ledger::sigcache::SigVerifyCache;
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::{Asset, TransactionSet};

const ACCOUNTS: u64 = 24;
const LEDGERS: u64 = 8;
const TXS_PER_LEDGER: u64 = 12;

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0xCAFE + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

fn usd() -> Asset {
    Asset::issued(acct(0), "USD")
}

fn genesis_store() -> LedgerStore {
    let mut entries: Vec<LedgerEntry> = Vec::new();
    for i in 0..ACCOUNTS {
        let mut a = AccountEntry::new(acct(i), xlm(1_000));
        a.num_subentries = 1;
        entries.push(LedgerEntry::Account(a));
        entries.push(LedgerEntry::TrustLine(TrustLineEntry {
            account: acct(i),
            asset: usd(),
            balance: if i == 0 { 0 } else { 1_000_000 },
            limit: i64::MAX / 2,
            authorized: true,
        }));
    }
    LedgerStore::from_entries(entries)
}

/// A deterministic mixed batch: payments plus the occasional new offer,
/// so the run exercises the order-book and bucket paths too.
fn batch(
    ledger: u64,
    next_seq: &mut std::collections::HashMap<u64, u64>,
) -> Vec<TransactionEnvelope> {
    (0..TXS_PER_LEDGER)
        .map(|t| {
            let n = ledger * TXS_PER_LEDGER + t;
            let src = 1 + (n % (ACCOUNTS - 1));
            let seq = {
                let s = next_seq.entry(src).or_insert(1);
                let v = *s;
                *s += 1;
                v
            };
            let op = if t % 4 == 3 {
                Operation::ManageOffer {
                    offer_id: 0,
                    selling: usd(),
                    buying: Asset::Native,
                    amount: 50 + (n % 7) as i64,
                    price: Price::new(100 + (n % 13) as u32, 100),
                    passive: false,
                }
            } else {
                Operation::Payment {
                    destination: acct((src + 3) % ACCOUNTS),
                    asset: Asset::Native,
                    amount: 1 + (n % 50) as i64,
                }
            };
            TransactionEnvelope::sign(
                Transaction {
                    source: acct(src),
                    seq_num: seq,
                    fee: BASE_FEE,
                    time_bounds: None,
                    memo: Memo::None,
                    operations: vec![SourcedOperation { source: None, op }],
                },
                &[&keys(src)],
            )
        })
        .collect()
}

/// Runs the full pipeline and returns every externalized hash.
fn run(mut sig_cache: SigVerifyCache) -> (Vec<Hash256>, Vec<Hash256>, u64) {
    let mut store = genesis_store();
    let mut buckets = BucketList::seed(store.all_entries());
    let mut header = LedgerHeader::genesis(Hash256::ZERO);
    header.snapshot_hash = buckets.hash();
    let mut queue = TxQueue::new();
    let mut next_seq = std::collections::HashMap::new();
    let mut header_hashes = Vec::new();
    for ledger in 0..LEDGERS {
        for env in batch(ledger, &mut next_seq) {
            queue
                .submit(&store, env, &mut sig_cache)
                .expect("valid submission");
        }
        let set = TransactionSet::assemble(header.hash(), queue.candidates(&store), u32::MAX);
        assert_eq!(set.txs.len() as u64, TXS_PER_LEDGER);
        let result = close_ledger(
            &mut store,
            &header,
            &set,
            header.close_time + 5,
            LedgerParams::default(),
            &mut sig_cache,
        );
        buckets.add_batch(result.header.ledger_seq, &result.changes);
        header = result.header;
        header.snapshot_hash = buckets.hash();
        queue.prune(&store);
        header_hashes.push(header.hash());
    }
    (header_hashes, buckets.level_hashes(), sig_cache.hits())
}

#[test]
fn cached_and_uncached_runs_externalize_identical_state() {
    let (headers_on, levels_on, hits_on) = run(SigVerifyCache::new(1 << 16));
    let (headers_off, levels_off, hits_off) = run(SigVerifyCache::disabled());
    assert_eq!(headers_on, headers_off, "header hashes diverged");
    assert_eq!(levels_on, levels_off, "bucket level hashes diverged");
    // The twin runs must differ only in where the verifications came
    // from: the cached run actually hits, the uncached one never does.
    assert!(hits_on > 0, "cache never hit — test exercises nothing");
    assert_eq!(hits_off, 0);
}

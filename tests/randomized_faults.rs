//! Randomized fault-schedule testing: SCP safety must hold under every
//! crash pattern; liveness must hold exactly when a quorum of the
//! configuration survives (paper §3.1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use stellar::scp::test_harness::InMemoryNetwork;
use stellar::scp::{NodeId, QuorumSet, Value};

#[test]
fn random_crash_schedules_preserve_safety_and_conditional_liveness() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..25u64 {
        let n = rng.gen_range(4..9u32);
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let qset = QuorumSet::byzantine(nodes.clone());
        let f = (n as usize - 1) / 3;
        let crash_count = rng.gen_range(0..n as usize);
        let mut shuffled = nodes.clone();
        shuffled.shuffle(&mut rng);
        let crashed: BTreeSet<NodeId> = shuffled[..crash_count].iter().copied().collect();

        let mut net = InMemoryNetwork::new(&nodes, &qset, 7000 + trial);
        for c in &crashed {
            net.crash(*c);
        }
        for (i, node) in nodes.iter().enumerate() {
            net.propose(*node, 1, Value::new(format!("t{trial}-p{i}").into_bytes()));
        }
        let decided = net.run_to_quiescence(1);

        // SAFETY: all deciders agree, always.
        let distinct: BTreeSet<_> = decided.values().collect();
        assert!(
            distinct.len() <= 1,
            "trial {trial}: divergent decisions with {crash_count}/{n} crashed"
        );

        // LIVENESS: with ≤ f crashes every live node decides; beyond the
        // quorum boundary (> n - threshold crashes) nobody can.
        let live = n as usize - crash_count;
        if crash_count <= f {
            assert_eq!(
                decided.len(),
                live,
                "trial {trial}: f-bounded crashes must not block"
            );
        }
        if (live as u32) < qset.threshold {
            assert!(
                decided.is_empty(),
                "trial {trial}: no quorum possible yet someone decided"
            );
        }
    }
}

#[test]
fn random_proposal_sets_always_converge_to_a_proposed_value() {
    // Validity: the decision must be one of the proposed values (SCP is
    // not allowed to invent values).
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..10u64 {
        let n = rng.gen_range(4..8u32);
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let qset = QuorumSet::majority(nodes.clone());
        let mut net = InMemoryNetwork::new(&nodes, &qset, 8000 + trial);
        let mut proposals = BTreeSet::new();
        for (i, node) in nodes.iter().enumerate() {
            let v = Value::new(format!("t{trial}-v{}", i % 3).into_bytes());
            proposals.insert(v.clone());
            net.propose(*node, 1, v);
        }
        let decided = net.run_to_quiescence(1);
        assert_eq!(decided.len(), n as usize, "trial {trial}");
        for v in decided.values() {
            assert!(
                proposals.contains(v),
                "trial {trial}: decided a never-proposed value"
            );
        }
    }
}

#[test]
fn staggered_proposals_still_agree() {
    // Nodes that propose late (after others already made progress) must
    // converge onto the same decision rather than forking the slot.
    let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
    let qset = QuorumSet::majority(nodes.clone());
    let mut net = InMemoryNetwork::new(&nodes, &qset, 31);
    // First three propose and exchange messages.
    for node in &nodes[..3] {
        net.propose(*node, 1, Value::new(b"early".to_vec()));
    }
    net.flood();
    // Stragglers join with a different value.
    for node in &nodes[3..] {
        net.propose(*node, 1, Value::new(b"late".to_vec()));
    }
    let decided = net.run_to_quiescence(1);
    assert_eq!(decided.len(), 5);
    let distinct: BTreeSet<_> = decided.values().collect();
    assert_eq!(distinct.len(), 1);
}

#[test]
fn random_tiered_topologies_agree() {
    // Random org counts / sizes with synthesized Fig. 6 quorum sets:
    // every intact configuration must agree on one value per slot.
    use stellar::quorum::tiers::{synthesize_all, OrgConfig, Quality};
    let mut rng = StdRng::seed_from_u64(777);
    for trial in 0..8u64 {
        let n_orgs = rng.gen_range(3..6u32);
        let per_org = rng.gen_range(2..4u32);
        let mut next = 0u32;
        let orgs: Vec<OrgConfig> = (0..n_orgs)
            .map(|o| {
                let members: Vec<NodeId> = (next..next + per_org).map(NodeId).collect();
                next += per_org;
                OrgConfig::new(&format!("org{o}"), members, Quality::High)
            })
            .collect();
        let qsets = synthesize_all(&orgs);
        let nodes: Vec<NodeId> = qsets.iter().map(|(n, _)| *n).collect();
        let mut net = InMemoryNetwork::with_qsets(qsets, 9000 + trial);
        for (i, node) in nodes.iter().enumerate() {
            net.propose(
                *node,
                1,
                Value::new(format!("t{trial}-v{}", i % 2).into_bytes()),
            );
        }
        let decided = net.run_to_quiescence(1);
        assert_eq!(
            decided.len(),
            nodes.len(),
            "trial {trial} ({n_orgs}×{per_org}): all nodes must decide"
        );
        let distinct: BTreeSet<_> = decided.values().collect();
        assert_eq!(distinct.len(), 1, "trial {trial}: tiered config diverged");
    }
}

#[test]
fn random_chaos_cocktails_keep_intact_quorums_clean() {
    // End-to-end version of the schedule tests above, through the chaos
    // subsystem: random mixes of healing partitions, crash/revive,
    // lossy links, and Byzantine puppets (all within the `f` the n−f
    // slices tolerate) on the full simulator. The invariant monitor
    // must stay clean — identical externalized values and ledger hashes
    // on every intact node, no liveness stall — in every trial.
    use stellar::chaos::{ChaosConfig, ChaosRun, FaultSchedule, Strategy};
    use stellar::overlay::LinkFault;
    use stellar::sim::scenario::Scenario;
    use stellar::sim::SimConfig;

    let strategies = [
        Strategy::EquivocateNomination,
        Strategy::SplitConfirm,
        Strategy::ReplayStale,
        Strategy::Silent,
    ];
    let mut rng = StdRng::seed_from_u64(0xC0C7);
    for trial in 0..25u64 {
        let n = rng.gen_range(5..8u32);
        let f = (n - 1) / 3;
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let k = rng.gen_range(0..=f);
        let adversaries: Vec<(NodeId, Strategy)> = (0..k)
            .map(|i| {
                let s = strategies[rng.gen_range(0..strategies.len())];
                (ids[(n - 1 - i) as usize], s)
            })
            .collect();
        let mut faults = FaultSchedule::builder();
        if rng.gen_bool(0.5) {
            faults = faults.default_link_fault_at(
                1_000,
                LinkFault::none()
                    .with_drop(rng.gen_range(0.0..0.12))
                    .with_delay(0.25, 10, 60),
            );
        }
        // Either a healing partition of the honest nodes or one
        // crash/revive — either way the ill set stays within f.
        if rng.gen_bool(0.5) {
            let honest: Vec<NodeId> = ids[..(n - k) as usize].to_vec();
            let cut = rng.gen_range(1..honest.len());
            let groups = vec![honest[..cut].to_vec(), honest[cut..].to_vec()];
            faults = faults.partition_at(8_000, groups, Some(28_000));
        } else if k < f {
            let victim = ids[rng.gen_range(0..(n - k)) as usize];
            faults = faults.crash_at(6_000, victim).revive_at(20_000, victim);
        }
        let target_ledgers = 3;
        let report = ChaosRun::new(ChaosConfig {
            sim: SimConfig {
                scenario: Scenario::ByzantineMesh { n_validators: n },
                n_accounts: 40,
                tx_rate: 2.0,
                target_ledgers,
                seed: 0x51E11A + trial,
                max_sim_time_ms: 180_000,
                ..SimConfig::default()
            },
            adversaries,
            schedule: faults.build(),
            liveness_bound_ms: 60_000,
            ..ChaosConfig::default()
        })
        .run();

        assert!(
            !report.intact.is_empty(),
            "trial {trial}: n={n} k={k} left nobody intact"
        );
        assert!(
            report.is_clean(),
            "trial {trial}: n={n} k={k} violations: {:?}",
            report.violations
        );
        let puppets: BTreeSet<NodeId> = ids[(n - k) as usize..].iter().copied().collect();
        for (id, seq) in &report.final_seqs {
            if !puppets.contains(id) {
                assert!(
                    *seq > target_ledgers,
                    "trial {trial}: {id:?} stuck at seq {seq}"
                );
            }
        }
    }
}

#[test]
fn message_complexity_stays_linear_in_quorum_rounds() {
    // §7.2: ~7 logical broadcasts per node per slot in the normal case.
    // The harness floods synchronously, so count delivered envelopes and
    // check they stay within a small constant factor of n².
    for n in [4u32, 7, 10] {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let qset = QuorumSet::majority(nodes.clone());
        let mut net = InMemoryNetwork::new(&nodes, &qset, u64::from(n) + 40);
        for node in &nodes {
            net.propose(*node, 1, Value::new(b"v".to_vec()));
        }
        let decided = net.run_to_quiescence(1);
        assert_eq!(decided.len(), n as usize);
        let per_node_broadcasts = net.delivered as f64 / f64::from(n) / f64::from(n - 1);
        assert!(
            per_node_broadcasts < 20.0,
            "n={n}: {per_node_broadcasts:.1} broadcasts/node — message blow-up"
        );
    }
}

//! Catch-up integration: bootstrapping a new node from the history
//! archive (paper §5.4: "The archive lets new nodes bootstrap themselves
//! when joining the network").
//!
//! The flow mirrors production: fetch the latest checkpoint ≤ target,
//! rebuild state from the checkpointed buckets, then replay archived
//! transaction sets up to the target ledger, verifying header hashes.

use stellar::buckets::{BucketList, HistoryArchive};
use stellar::crypto::sign::KeyPair;
use stellar::crypto::Hash256;
use stellar::ledger::amount::{xlm, BASE_FEE};
use stellar::ledger::apply::close_ledger;
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::header::{LedgerHeader, LedgerParams};
use stellar::ledger::sigcache::SigVerifyCache;
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::txset::TransactionSet;
use stellar::ledger::Asset;

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0xCA7C + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

/// Runs a single-node chain for `n_ledgers`, publishing to an archive.
fn run_chain(n_ledgers: u64) -> (LedgerStore, LedgerHeader, BucketList, HistoryArchive) {
    let mut store = LedgerStore::new();
    for i in 0..4 {
        store.put_account(AccountEntry::new(acct(i), xlm(10_000)));
    }
    let mut buckets = BucketList::seed(store.all_entries());
    let mut header = LedgerHeader::genesis(buckets.hash());
    let mut archive = HistoryArchive::new();
    let mut seqs = std::collections::HashMap::new();

    for l in 0..n_ledgers {
        // One payment per ledger, round-robin.
        let from = l % 4;
        let to = (l + 1) % 4;
        let seq = seqs.entry(from).and_modify(|s| *s += 1).or_insert(1);
        let env = TransactionEnvelope::sign(
            Transaction {
                source: acct(from),
                seq_num: *seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::Id(l),
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(to),
                        asset: Asset::Native,
                        amount: 100 + l as i64,
                    },
                }],
            },
            &[&keys(from)],
        );
        let set = TransactionSet::assemble(header.hash(), vec![env], 100);
        let res = close_ledger(
            &mut store,
            &header,
            &set,
            100 + l,
            LedgerParams::default(),
            &mut SigVerifyCache::disabled(),
        );
        assert!(
            res.results[0].is_success(),
            "ledger {l}: {:?}",
            res.results[0]
        );
        buckets.add_batch(res.header.ledger_seq, &res.changes);
        header = res.header;
        header.snapshot_hash = buckets.hash();
        archive.publish(&header, &set, &mut buckets);
    }
    (store, header, buckets, archive)
}

#[test]
fn new_node_bootstraps_from_checkpoint_and_replays() {
    let target = 130u64; // past two checkpoints (64, 128)
    let (live_store, live_header, mut live_buckets, archive) = run_chain(target);

    // --- the new node ---
    let cp = archive
        .latest_checkpoint_at(live_header.ledger_seq)
        .expect("checkpoint");
    assert_eq!(cp.header.ledger_seq, 128);

    // 1. Rebuild buckets from archived blobs… the checkpoint stores level
    //    hashes; verify all blobs exist (content-addressed storage).
    for h in &cp.bucket_hashes {
        assert!(
            archive.bucket_blob(h).is_some(),
            "bucket blob {h} must be archived"
        );
    }

    // 2. For state, reconstruct from the live bucket list (same data the
    //    blobs encode) and check it matches the checkpoint-time chain by
    //    replaying the remaining ledgers.
    //    Replay from the checkpoint: we need checkpoint-time state, which
    //    we reconstruct by replaying the whole archive from genesis — the
    //    archive contains every tx set, so a full replay is also a valid
    //    (slower) catch-up mode, and exercises determinism end to end.
    let mut store = LedgerStore::new();
    for i in 0..4 {
        store.put_account(AccountEntry::new(acct(i), xlm(10_000)));
    }
    let mut buckets = BucketList::seed(store.all_entries());
    let mut header = LedgerHeader::genesis(buckets.hash());
    for seq in 2..=live_header.ledger_seq {
        let set = archive.tx_set(seq).expect("archived tx set").clone();
        let expected = archive.header(seq).expect("archived header").clone();
        let res = close_ledger(
            &mut store,
            &header,
            &set,
            expected.close_time,
            expected.params,
            &mut SigVerifyCache::disabled(),
        );
        buckets.add_batch(res.header.ledger_seq, &res.changes);
        header = res.header;
        header.snapshot_hash = buckets.hash();
        assert_eq!(
            header.hash(),
            expected.hash(),
            "replayed header {seq} must match archive"
        );
    }

    // 3. Final state must equal the live node's, bit for bit.
    assert_eq!(header.hash(), live_header.hash());
    assert_eq!(buckets.hash(), live_buckets.hash());
    for i in 0..4 {
        assert_eq!(
            store.account(acct(i)).unwrap(),
            live_store.account(acct(i)).unwrap(),
            "account {i} state must match"
        );
    }
}

#[test]
fn bucket_state_reconstruction_matches_store() {
    let (live_store, _, live_buckets, _) = run_chain(40);
    // A node that only downloaded buckets can rebuild the full entry set.
    let rebuilt = LedgerStore::from_entries(live_buckets.reconstruct_state());
    assert_eq!(rebuilt.account_count(), live_store.account_count());
    for i in 0..4 {
        assert_eq!(rebuilt.account(acct(i)), live_store.account(acct(i)));
    }
}

#[test]
fn reconciliation_downloads_only_differing_levels() {
    let (_, _, mut a, _) = run_chain(70);
    let (_, _, mut b, _) = run_chain(70);
    assert!(
        a.diff_levels(&mut b).is_empty(),
        "identical histories, identical buckets"
    );

    let (_, _, mut c, _) = run_chain(75);
    let diff = a.diff_levels(&mut c);
    assert!(!diff.is_empty());
    assert!(
        diff.len() < stellar::buckets::bucket_list::NUM_LEVELS,
        "only hot levels differ: {diff:?}"
    );
}

/// The genesis store `run_chain` starts from (a rebooted node's durable
/// starting point).
fn chain_genesis_store() -> LedgerStore {
    let mut store = LedgerStore::new();
    for i in 0..4 {
        store.put_account(AccountEntry::new(acct(i), xlm(10_000)));
    }
    store
}

#[test]
fn restart_on_checkpoint_boundary_replays_cleanly() {
    // 63 closes on top of genesis (seq 1) put the tip at seq 64 — exactly
    // a checkpoint boundary, the trickiest restart point: the checkpoint
    // and the latest ledger are the same record, and an off-by-one in
    // either direction re-applies or skips the boundary ledger.
    let (_, live_header, _, archive) = run_chain(63);
    assert_eq!(live_header.ledger_seq, 64);
    let cp = archive
        .latest_checkpoint_at(64)
        .expect("boundary checkpoint");
    assert_eq!(cp.header.ledger_seq, 64, "checkpoint lands on the tip");
    assert_eq!(cp.header.hash(), live_header.hash());

    let mut herder = stellar::herder::Herder::new(
        stellar::scp::NodeId(0),
        chain_genesis_store(),
        std::collections::BTreeMap::new(),
    );
    let replayed = herder.catch_up_from(&archive);
    assert_eq!(replayed, 63, "every post-genesis ledger replays once");
    assert_eq!(herder.header.ledger_seq, 64);
    assert_eq!(
        herder.header.hash(),
        live_header.hash(),
        "recovered tip must be bit-identical to the boundary header"
    );
    // Recovery is write-ahead too: the replayed tip is already durable.
    let lcl = herder.recover_lcl().expect("durable LCL after catch-up");
    assert_eq!(lcl.header.hash(), live_header.hash());
    // A second catch-up from the same archive is a no-op, not a re-apply.
    assert_eq!(herder.catch_up_from(&archive), 0);
    assert_eq!(herder.header.hash(), live_header.hash());
}

#[test]
fn restart_before_first_checkpoint_replays_from_genesis() {
    // A node rebooting before ledger 64 has no checkpoint to anchor on:
    // recovery must fall back to a full replay from genesis instead of
    // panicking on the missing checkpoint.
    let (_, live_header, _, archive) = run_chain(10);
    assert_eq!(live_header.ledger_seq, 11);
    assert!(
        archive
            .latest_checkpoint_at(live_header.ledger_seq)
            .is_none(),
        "no checkpoint exists yet"
    );
    assert_eq!(archive.checkpoint_count(), 0);

    let mut herder = stellar::herder::Herder::new(
        stellar::scp::NodeId(0),
        chain_genesis_store(),
        std::collections::BTreeMap::new(),
    );
    let replayed = herder.catch_up_from(&archive);
    assert_eq!(replayed, 10);
    assert_eq!(
        herder.header.hash(),
        live_header.hash(),
        "genesis replay must reproduce the live chain"
    );
}

#[test]
fn snapshot_hash_commits_to_every_entry() {
    let (_, header_a, _, _) = run_chain(20);
    let (_, header_b, _, _) = run_chain(20);
    assert_eq!(header_a.hash(), header_b.hash(), "deterministic chain");
    // A different history ⇒ different snapshot hash.
    let (_, header_c, _, _) = run_chain(21);
    assert_ne!(header_a.snapshot_hash, header_c.snapshot_hash);
    assert_ne!(header_a.snapshot_hash, Hash256::ZERO);
}

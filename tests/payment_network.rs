//! End-to-end payment-network integration: transactions through consensus
//! into every replica's ledger (paper §5 + §7 pipeline).

use stellar::crypto::sign::KeyPair;
use stellar::ledger::amount::{xlm, Price, BASE_FEE};
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::ops::{apply_operation, ExecEnv};
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::Asset;
use stellar::sim::scenario::Scenario;
use stellar::sim::simulation::SimSetup;
use stellar::sim::{SimConfig, Simulation};

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0x0ABC_0000 + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

fn pay(from: u64, to: u64, seq: u64, amount: i64) -> TransactionEnvelope {
    let k = keys(from);
    TransactionEnvelope::sign(
        Transaction {
            source: acct(from),
            seq_num: seq,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: acct(to),
                    asset: Asset::Native,
                    amount,
                },
            }],
        },
        &[&k],
    )
}

fn genesis(n: u64) -> LedgerStore {
    let mut s = LedgerStore::new();
    for i in 0..n {
        s.put_account(AccountEntry::new(acct(i), xlm(1000)));
    }
    s
}

fn sim_with(store: LedgerStore, target_ledgers: u64) -> Simulation {
    Simulation::with_setup(
        SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 0,
            tx_rate: 0.0,
            target_ledgers,
            seed: 1234,
            ..SimConfig::default()
        },
        SimSetup {
            genesis: Some(store),
        },
    )
}

#[test]
fn payments_replicate_identically() {
    let mut sim = sim_with(genesis(4), 3);
    sim.submit_transaction_at(1100, pay(0, 1, 1, xlm(10)));
    sim.submit_transaction_at(1200, pay(1, 2, 1, xlm(5)));
    sim.submit_transaction_at(6100, pay(0, 2, 2, xlm(1)));
    sim.run();
    let ids = sim.validator_ids();
    let reference = sim.validator(ids[0]).herder.header.hash();
    for id in &ids {
        let v = sim.validator(*id);
        assert_eq!(v.herder.header.hash(), reference, "replica {id} diverged");
        assert_eq!(v.herder.store.account(acct(2)).unwrap().balance, xlm(1006));
        assert_eq!(
            v.herder.store.account(acct(0)).unwrap().balance,
            xlm(989) - 2 * BASE_FEE
        );
    }
}

#[test]
fn sequence_gap_waits_for_missing_transaction() {
    let mut sim = sim_with(genesis(3), 4);
    // Submit seq 2 first; it must not execute before seq 1 arrives.
    sim.submit_transaction_at(1100, pay(0, 1, 2, xlm(2)));
    sim.submit_transaction_at(9000, pay(0, 1, 1, xlm(1)));
    sim.run();
    let ids = sim.validator_ids();
    for id in &ids {
        let v = sim.validator(*id);
        assert_eq!(
            v.herder.store.account(acct(0)).unwrap().seq_num,
            2,
            "both executed in order"
        );
        assert_eq!(v.herder.store.account(acct(1)).unwrap().balance, xlm(1003));
    }
}

#[test]
fn order_book_trades_through_consensus() {
    // Maker sells USD at 2 XLM/USD; taker buys through a consensus round.
    let issuer = 9u64;
    let maker = 5u64;
    let taker = 1u64;
    let mut store = genesis(10);
    let usd = Asset::issued(acct(issuer), "USD");
    {
        let env = ExecEnv::default();
        let mut d = store.begin();
        apply_operation(
            &mut d,
            acct(maker),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: xlm(1000),
            },
            &env,
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(taker),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: xlm(1000),
            },
            &env,
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(issuer),
            &Operation::Payment {
                destination: acct(maker),
                asset: usd.clone(),
                amount: 500,
            },
            &env,
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(maker),
            &Operation::ManageOffer {
                offer_id: 0,
                selling: usd.clone(),
                buying: Asset::Native,
                amount: 500,
                price: Price::new(2, 1),
                passive: false,
            },
            &env,
        )
        .unwrap();
        let ch = d.into_changes();
        store.commit(ch);
    }
    let mut sim = sim_with(store, 2);
    let k = keys(taker);
    let buy = TransactionEnvelope::sign(
        Transaction {
            source: acct(taker),
            seq_num: 1,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation {
                source: None,
                op: Operation::ManageOffer {
                    offer_id: 0,
                    selling: Asset::Native,
                    buying: usd.clone(),
                    amount: 100,
                    price: Price::new(1, 2),
                    passive: false,
                },
            }],
        },
        &[&k],
    );
    sim.submit_transaction_at(1100, buy);
    sim.run();
    for id in sim.validator_ids() {
        let st = &sim.validator(id).herder.store;
        assert_eq!(
            st.trustline(acct(taker), &usd).unwrap().balance,
            50,
            "100 XLM @ 2 = 50 USD"
        );
        assert_eq!(st.trustline(acct(maker), &usd).unwrap().balance, 450);
    }
}

#[test]
fn surge_pricing_under_congestion_through_consensus() {
    // Budget 2 ops per ledger, three 1-op candidates with different bids:
    // the two high bidders clear at the lower of their rates.
    let mut store = genesis(5);
    {
        // Bump balances so fees are payable.
        let mut d = store.begin();
        for i in 0..5 {
            let mut a = d.account(acct(i)).unwrap();
            a.balance = xlm(1000);
            d.put_account(a);
        }
        let ch = d.into_changes();
        store.commit(ch);
    }
    let mut sim = Simulation::with_setup(
        SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 0,
            tx_rate: 0.0,
            target_ledgers: 2,
            seed: 77,
            max_tx_set_ops: 2,
            ..SimConfig::default()
        },
        SimSetup {
            genesis: Some(store),
        },
    );
    let mk = |from: u64, fee_mult: i64| {
        let k = keys(from);
        TransactionEnvelope::sign(
            Transaction {
                source: acct(from),
                seq_num: 1,
                fee: BASE_FEE * fee_mult,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(4),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&k],
        )
    };
    sim.submit_transaction_at(1100, mk(0, 1));
    sim.submit_transaction_at(1100, mk(1, 10));
    sim.submit_transaction_at(1100, mk(2, 5));
    sim.run();
    for id in sim.validator_ids() {
        let st = &sim.validator(id).herder.store;
        // High bidders executed; both charged the clearing rate (5×).
        assert_eq!(st.account(acct(1)).unwrap().seq_num, 1);
        assert_eq!(st.account(acct(2)).unwrap().seq_num, 1);
        assert_eq!(
            st.account(acct(1)).unwrap().balance,
            xlm(1000) - 1 - BASE_FEE * 5
        );
        assert_eq!(
            st.account(acct(2)).unwrap().balance,
            xlm(1000) - 1 - BASE_FEE * 5
        );
    }
}

#[test]
fn history_archive_records_consensus_ledgers() {
    let mut sim = sim_with(genesis(3), 3);
    sim.submit_transaction_at(1100, pay(0, 1, 1, xlm(1)));
    sim.run();
    let id = sim.validator_ids()[0];
    let herder = &sim.validator(id).herder;
    for seq in 2..=herder.header.ledger_seq {
        assert!(
            herder.archive.tx_set(seq).is_some(),
            "tx set for ledger {seq} archived"
        );
        assert!(
            herder.archive.header(seq).is_some(),
            "header for ledger {seq} archived"
        );
    }
}

#[test]
fn hash_preimage_signer_enables_htlc_style_claims() {
    // §5.2: "Multisig accounts can also be configured to give signing
    // weight to the revelation of a hash pre-image, which, combined with
    // time bounds, permits atomic cross-chain trading."
    use stellar::crypto::sha256::sha256;
    use stellar::ledger::apply::{apply_transaction, check_validity};
    use stellar::ledger::entry::Signer;
    use stellar::ledger::ops::ExecEnv;
    use stellar::ledger::sigcache::SigVerifyCache;
    use stellar::ledger::tx::{TimeBounds, TxError, TxResult};

    let secret = b"cross-chain-secret".to_vec();
    let lock = sha256(&secret);

    // An escrow account claimable only by revealing the preimage before
    // the deadline (master key deauthorized).
    let escrow = acct(10);
    let claimer = acct(11);
    let mut store = genesis(0);
    {
        let mut e = stellar::ledger::entry::AccountEntry::new(escrow, xlm(50));
        e.thresholds.master_weight = 0;
        e.signers.push(Signer::hash_x(lock, 1));
        store.put_account(e);
        store.put_account(stellar::ledger::entry::AccountEntry::new(claimer, xlm(5)));
    }

    let claim_tx = Transaction {
        source: escrow,
        seq_num: 1,
        fee: BASE_FEE,
        time_bounds: Some(TimeBounds {
            min_time: 0,
            max_time: 500,
        }),
        memo: Memo::None,
        operations: vec![SourcedOperation {
            source: None,
            op: Operation::Payment {
                destination: claimer,
                asset: Asset::Native,
                amount: xlm(40),
            },
        }],
    };

    // Without the preimage: no signing weight at all.
    let unsigned = TransactionEnvelope::sign(claim_tx.clone(), &[]);
    let d = store.begin();
    assert_eq!(
        check_validity(
            &d,
            &unsigned,
            100,
            BASE_FEE,
            &mut SigVerifyCache::disabled()
        ),
        Err(TxError::BadAuth)
    );
    drop(d);

    // Even the escrow's own master key cannot sign (weight 0).
    let master_signed = TransactionEnvelope::sign(claim_tx.clone(), &[&keys(10)]);
    let d = store.begin();
    assert_eq!(
        check_validity(
            &d,
            &master_signed,
            100,
            BASE_FEE,
            &mut SigVerifyCache::disabled()
        ),
        Err(TxError::BadAuth)
    );
    drop(d);

    // A wrong preimage fails.
    let wrong = TransactionEnvelope::sign(claim_tx.clone(), &[]).with_preimage(b"guess".to_vec());
    let d = store.begin();
    assert_eq!(
        check_validity(&d, &wrong, 100, BASE_FEE, &mut SigVerifyCache::disabled()),
        Err(TxError::BadAuth)
    );
    drop(d);

    // Revealing the secret claims the funds — inside the time window.
    let revealed = TransactionEnvelope::sign(claim_tx.clone(), &[]).with_preimage(secret.clone());
    let mut d = store.begin();
    let r = apply_transaction(
        &mut d,
        &revealed,
        100,
        BASE_FEE,
        &ExecEnv::default(),
        &mut SigVerifyCache::disabled(),
    );
    assert!(matches!(r, TxResult::Success { .. }), "{r:?}");
    assert_eq!(d.account(acct(11)).unwrap().balance, xlm(45));
    drop(d);

    // After the deadline the preimage is useless (the refund branch of an
    // HTLC takes over).
    let d = store.begin();
    let late = TransactionEnvelope::sign(claim_tx, &[]).with_preimage(secret);
    assert_eq!(
        check_validity(&d, &late, 600, BASE_FEE, &mut SigVerifyCache::disabled()),
        Err(TxError::TooLate)
    );
}

#[test]
fn independent_runs_are_bit_identical() {
    // Two separately constructed simulations with the same seed must end
    // with identical header hashes on every validator — the strongest
    // statement of end-to-end determinism (codec, consensus, execution,
    // bucket hashing all included).
    let run = || {
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 200,
            tx_rate: 15.0,
            target_ledgers: 5,
            seed: 31337,
            ..SimConfig::default()
        });
        sim.run();
        sim.validator_ids()
            .iter()
            .map(|id| sim.validator(*id).herder.header.hash())
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "seeded runs must replay identically");
    // And within a run, all replicas converge to one header.
    assert!(
        a.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged: {a:?}"
    );
}

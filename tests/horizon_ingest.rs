//! Ingestion indexer correctness: materialized tables vs ground truth.
//!
//! Two gates from the issue: (1) a property test that the per-account
//! history index equals a naive full-archive rescan after random
//! workloads — the indexer's incremental, buffered, gap-backfilling
//! bookkeeping must never drop or duplicate a row; (2) restart-mid-
//! ingestion recovery on both store backends — a crash-restarted
//! observer re-attaches a fresh pipeline, backfills from the archive,
//! and converges on the same tables.

use proptest::prelude::*;
use std::collections::BTreeMap;
use stellar::crypto::sign::KeyPair;
use stellar::crypto::Hash256;
use stellar::herder::Herder;
use stellar::horizon::ingest::participants;
use stellar::horizon::{AdmissionConfig, Indexer};
use stellar::ledger::amount::{xlm, BASE_FEE};
use stellar::ledger::entry::{AccountEntry, AccountId};
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar::ledger::{Asset, TransactionSet};
use stellar::scp::NodeId;
use stellar::sim::loadgen::user_account;
use stellar::sim::scenario::Scenario;
use stellar::sim::{SimConfig, Simulation};

const N: u64 = 8;

fn keys(n: u64) -> KeyPair {
    KeyPair::from_seed(0xF00D + n)
}

fn acct(n: u64) -> AccountId {
    AccountId(keys(n).public())
}

fn herder() -> Herder {
    let mut store = LedgerStore::new();
    for i in 0..N {
        store.put_account(AccountEntry::new(acct(i), xlm(1_000)));
    }
    Herder::new(NodeId(0), store, BTreeMap::new())
}

fn payment(from: u64, to: u64, seq: u64, amount: i64) -> TransactionEnvelope {
    TransactionEnvelope::sign(
        Transaction {
            source: acct(from),
            seq_num: seq,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: acct(to),
                    asset: Asset::Native,
                    amount,
                },
            }],
        },
        &[&keys(from)],
    )
}

/// Pages an account's indexed history to completion with a small page
/// size, exercising the cursor machinery along the way.
fn full_history(ix: &Indexer, id: AccountId) -> Vec<(u64, u32, Hash256)> {
    let mut out = Vec::new();
    let mut cursor = None;
    loop {
        let page = ix.account_history(id, cursor, 7).unwrap();
        out.extend(
            page.records
                .iter()
                .map(|r| (r.ledger_seq, r.tx_index, r.tx_hash)),
        );
        match page.cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    out
}

/// Ground truth: rescan every archived transaction set and file each
/// transaction under every participant, in apply order.
fn naive_rescan(
    archive: &stellar::buckets::HistoryArchive,
) -> BTreeMap<AccountId, Vec<(u64, u32, Hash256)>> {
    let mut naive: BTreeMap<AccountId, Vec<(u64, u32, Hash256)>> = BTreeMap::new();
    let Some(latest) = archive.latest_seq() else {
        return naive;
    };
    for seq in 2..=latest {
        let Some(set) = archive.tx_set(seq) else {
            continue;
        };
        for (i, env) in set.txs.iter().enumerate() {
            for a in participants(env) {
                naive
                    .entry(a)
                    .or_default()
                    .push((seq, i as u32, env.hash()));
            }
        }
    }
    naive
}

proptest! {
    /// After an arbitrary payment workload chopped into arbitrary
    /// ledgers, the incremental index and the naive rescan agree for
    /// every account.
    #[test]
    fn indexed_history_equals_naive_rescan(
        ops in proptest::collection::vec((0..N, 0..N, 1..50i64), 1..40),
        chunk in 1usize..6,
    ) {
        let mut h = herder();
        let mut ix = Indexer::attach(&mut h);
        let mut seqs: BTreeMap<u64, u64> = BTreeMap::new();
        for batch in ops.chunks(chunk) {
            let txs: Vec<TransactionEnvelope> = batch
                .iter()
                .map(|&(from, to, amount)| {
                    let to = if to == from { (to + 1) % N } else { to };
                    let e = seqs.entry(from).or_insert(0);
                    *e += 1;
                    payment(from, to, *e, amount)
                })
                .collect();
            let set = TransactionSet::assemble(h.header.hash(), txs, 100);
            h.learn_tx_set(set.clone());
            let v = stellar::herder::StellarValue::new(set.hash(), h.header.close_time + 5);
            prop_assert!(h.apply_externalized(h.current_slot(), &v));
            ix.ingest(&mut h);
        }
        let naive = naive_rescan(&h.archive);
        for i in 0..N {
            let want = naive.get(&acct(i)).cloned().unwrap_or_default();
            prop_assert_eq!(full_history(&ix, acct(i)), want, "account {}", i);
        }
    }
}

/// A front door that never sheds, so load flows identically to a
/// pipeline-free run while still exercising the admission code path.
fn permissive_admission() -> AdmissionConfig {
    AdmissionConfig {
        bucket_capacity: 1 << 20,
        refill_per_sec: 1 << 20,
        queue_capacity: 1 << 20,
        max_pending: 1 << 20,
        ..AdmissionConfig::default()
    }
}

#[test]
fn restart_mid_ingestion_recovers_on_both_backends() {
    for backend in [
        stellar::store::BackendKind::Mem,
        stellar::store::BackendKind::Disk,
    ] {
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: 40,
            tx_rate: 15.0,
            target_ledgers: 8,
            store_backend: backend,
            horizon: Some(permissive_admission()),
            ..SimConfig::default()
        });
        let obs = sim.observer_id();
        // Let the indexer ingest a few ledgers live...
        while sim.validator(obs).herder.header.ledger_seq < 5 {
            assert!(sim.step(), "network stalled before the restart point");
        }
        // ...then kill the observer mid-ingestion. The pipeline is RAM:
        // the restart re-attaches a fresh one and backfills from the
        // archive.
        sim.restart(obs);
        let _report = sim.run();
        // (The restarted observer's RAM event log is gone, so the
        // report's per-ledger metrics undercount; the chain head is the
        // progress witness.)
        assert!(
            sim.validator(obs).herder.header.ledger_seq >= 9,
            "{backend:?}: network stalled"
        );
        assert!(
            sim.horizon_metrics().counter("horizon.reattached") >= 1,
            "{backend:?}: pipeline was not re-attached"
        );

        let head = sim.validator(obs).herder.header.ledger_seq;
        let p = sim.horizon().expect("pipeline attached");
        assert_eq!(p.indexer.ingested_seq(), head, "{backend:?}: indexer lags");

        // The recovered tables equal the ground-truth archive rescan.
        let naive = naive_rescan(&sim.validator(obs).herder.archive);
        for i in 0..40 {
            let id = user_account(i);
            let want = naive.get(&id).cloned().unwrap_or_default();
            assert_eq!(
                full_history(&p.indexer, id),
                want,
                "{backend:?}: history diverged for account {i}"
            );
        }
    }
}

//! Wire-format golden vectors.
//!
//! Every node must serialize — and therefore hash — structures
//! identically (§5.1's snapshot hashes, §5.3's tx-set hashes, envelope
//! signatures). These pinned encodings catch accidental codec changes
//! that would silently fork a network of mixed binaries.

use stellar::crypto::codec::Encode;
use stellar::crypto::hex;
use stellar::crypto::sign::PublicKey;
use stellar::crypto::Hash256;
use stellar::ledger::amount::Price;
use stellar::ledger::entry::{AccountEntry, AccountId, LedgerEntry};
use stellar::ledger::Asset;
use stellar::scp::statement::{Ballot, StatementKind};
use stellar::scp::{NodeId, QuorumSet, Value};

#[test]
fn primitive_encodings_are_pinned() {
    assert_eq!(hex::encode(&0x0102u16.to_bytes()), "0102");
    assert_eq!(hex::encode(&1u64.to_bytes()), "0000000000000001");
    assert_eq!(hex::encode(&true.to_bytes()), "01");
    assert_eq!(hex::encode(&Some(7u8).to_bytes()), "0107");
    assert_eq!(hex::encode(&Option::<u8>::None.to_bytes()), "00");
    // Vec<u8>: u64 length prefix + raw bytes.
    assert_eq!(
        hex::encode(&vec![0xaau8, 0xbb].to_bytes()),
        "0000000000000002aabb"
    );
    assert_eq!(
        hex::encode(&"hi".to_string().to_bytes()),
        "00000000000000026869"
    );
}

#[test]
fn quorum_set_encoding_is_pinned() {
    let q = QuorumSet::threshold_of(2, vec![NodeId(1), NodeId(2), NodeId(3)]);
    assert_eq!(
        hex::encode(&q.to_bytes()),
        // threshold=2 (u32), 3 validators (u64 len + 3×u32), 0 inner sets.
        "0000000200000000000000030000000100000002000000030000000000000000"
    );
}

#[test]
fn ballot_statement_encoding_is_pinned() {
    let st = StatementKind::Externalize {
        commit: Ballot::new(4, Value::new(b"x".to_vec())),
        h_n: 6,
    };
    assert_eq!(
        hex::encode(&st.to_bytes()),
        // tag 3 (u32), counter 4 (u32), value (len 1 + 'x'), h_n 6 (u32).
        "000000030000000400000000000000017800000006"
    );
}

#[test]
fn ledger_entry_encoding_is_pinned() {
    let entry = LedgerEntry::Account(AccountEntry::new(AccountId(PublicKey(5)), 77));
    let encoded = hex::encode(&entry.to_bytes());
    assert_eq!(
        encoded,
        // tag 0, account id u64, balance i64, seq u64, subentries u32,
        // flags u8, signers (empty vec), thresholds (1,0,0,0).
        concat!(
            "00",
            "0000000000000005",
            "000000000000004d",
            "0000000000000000",
            "00000000",
            "00",
            "0000000000000000",
            "01000000",
        )
    );
}

#[test]
fn asset_and_price_encodings_are_pinned() {
    assert_eq!(hex::encode(&Asset::Native.to_bytes()), "00");
    let usd = Asset::issued(AccountId(PublicKey(9)), "USD");
    assert_eq!(
        hex::encode(&usd.to_bytes()),
        "0100000000000000090000000000000003555344"
    );
    assert_eq!(
        hex::encode(&Price::new(3, 7).to_bytes()),
        "0000000300000007"
    );
}

#[test]
fn hash_of_known_structure_is_stable() {
    // The canonical hash-of-encoding convention: changing either the
    // structure or the codec flips this value, which is exactly what it
    // guards.
    let q = QuorumSet::threshold_of(1, vec![NodeId(0)]);
    let h = stellar::crypto::hash_xdr(&q);
    assert_eq!(
        h,
        stellar::crypto::sha256::sha256(&q.to_bytes()),
        "hash_xdr must be sha256 of the deterministic encoding"
    );
    assert_ne!(h, Hash256::ZERO);
}

//! Randomized cascade storms: on any generated topology the checker
//! proves intersecting, no staged crash campaign — whatever the family,
//! order, depth, or healing schedule — may make the invariant monitor
//! report a safety violation. Crashes can only stall; divergence would
//! mean the quorum-intersection guarantee (paper §3.1, §6.2) is hollow.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stellar::chaos::cascade::{CascadeOrder, CascadePlan};
use stellar::chaos::{ChaosConfig, ChaosRun, Violation};
use stellar::quorum::{
    find_disjoint_quorums_with, generate, CheckerOptions, IntersectionResult, TopologyFamily,
    TopologySpec,
};
use stellar::sim::scenario::Scenario;
use stellar::sim::SimConfig;

#[test]
fn cascade_storms_never_breach_safety_on_intersecting_topologies() {
    let families = [
        TopologyFamily::Uniform,
        TopologyFamily::TierWeighted,
        TopologyFamily::ScaleFree,
    ];
    let mut rng = StdRng::seed_from_u64(0x57012);
    for trial in 0..25u64 {
        let family = families[rng.gen_range(0..families.len())];
        let n_orgs = rng.gen_range(4..9usize);
        let spec = TopologySpec::new(family, n_orgs, rng.gen_range(1..3usize), trial);
        let topo = generate(&spec);

        // Only checker-proven-intersecting configurations carry the
        // safety guarantee; the generators should never produce anything
        // else, and the storm is vacuous if they did.
        let (res, _) = find_disjoint_quorums_with(&topo.system, &CheckerOptions::default());
        assert_eq!(
            res,
            IntersectionResult::Intersecting,
            "trial {trial}: generator produced a non-intersecting {family:?} topology"
        );

        let plan = CascadePlan {
            order: if rng.gen_bool(0.5) {
                CascadeOrder::Random
            } else {
                CascadeOrder::TopTierFirst
            },
            n_stages: rng.gen_range(1..=n_orgs),
            start_ms: 10_000,
            stage_interval_ms: rng.gen_range(3_000..8_000),
            heal_at_ms: if rng.gen_bool(0.4) {
                Some(rng.gen_range(60_000..80_000))
            } else {
                None
            },
            seed: 0xCA5C ^ trial,
        };
        let report = ChaosRun::new(ChaosConfig {
            sim: SimConfig {
                scenario: Scenario::Generated { spec },
                n_accounts: 30,
                tx_rate: 2.0,
                target_ledgers: 6,
                seed: 0xBAD5EED + trial,
                max_sim_time_ms: 100_000,
                ..SimConfig::default()
            },
            schedule: plan.schedule(&topo),
            // Deep cascades stall by design; only safety is on trial.
            liveness_bound_ms: 0,
            ..ChaosConfig::default()
        })
        .run();

        let safety: Vec<&Violation> = report
            .violations
            .iter()
            .filter(|v| !matches!(v, Violation::LivenessStall { .. }))
            .collect();
        assert!(
            safety.is_empty(),
            "trial {trial}: {family:?} {n_orgs} orgs, {} stages (heal: {:?}) \
             breached safety: {safety:?}",
            plan.n_stages,
            plan.heal_at_ms,
        );
    }
}

//! Property-based tests over core data structures and invariants.
//!
//! These cover the machine-checkable analogues of the paper's claims:
//! codec determinism (hashes well-defined across nodes), quorum-set
//! algebra (v-blocking vs. slices duality), conservation of assets in the
//! matching engine, and bucket-list/store equivalence.

use proptest::prelude::*;
use std::collections::BTreeSet;
use stellar::crypto::codec::{Decode, Encode};
use stellar::crypto::sha256::{sha256, Sha256};
use stellar::crypto::sign::PublicKey;
use stellar::ledger::amount::Price;
use stellar::ledger::entry::{AccountEntry, AccountId, LedgerEntry, LedgerKey, TrustLineEntry};
use stellar::ledger::ops::{apply_operation, ExecEnv};
use stellar::ledger::store::LedgerStore;
use stellar::ledger::tx::Operation;
use stellar::ledger::Asset;
use stellar::scp::statement::{Ballot, StatementKind};
use stellar::scp::{NodeId, QuorumSet, Value};

// ---------- crypto ----------

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096), split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), sha256(&data));
    }

    #[test]
    fn signatures_verify_and_bind_message(seed in 1u64..u64::MAX, msg in proptest::collection::vec(any::<u8>(), 0..256), flip in 0usize..256) {
        let kp = stellar::crypto::sign::KeyPair::from_seed(seed);
        let sig = kp.sign(&msg);
        prop_assert!(stellar::crypto::sign::verify(kp.public(), &msg, &sig));
        if !msg.is_empty() {
            let mut tampered = msg.clone();
            let i = flip % tampered.len();
            tampered[i] ^= 1;
            prop_assert!(!stellar::crypto::sign::verify(kp.public(), &tampered, &sig));
        }
    }
}

// ---------- codec ----------

fn arb_asset() -> impl Strategy<Value = Asset> {
    prop_oneof![
        Just(Asset::Native),
        (any::<u64>(), "[A-Z]{1,12}")
            .prop_map(|(i, code)| { Asset::issued(AccountId(PublicKey(i)), &code) }),
    ]
}

fn arb_ledger_entry() -> impl Strategy<Value = LedgerEntry> {
    prop_oneof![
        (any::<u64>(), 0..i64::MAX / 2, any::<u64>()).prop_map(|(id, bal, seq)| {
            let mut a = AccountEntry::new(AccountId(PublicKey(id)), bal);
            a.seq_num = seq;
            LedgerEntry::Account(a)
        }),
        (
            any::<u64>(),
            arb_asset(),
            0..i64::MAX / 2,
            0..i64::MAX / 2,
            any::<bool>()
        )
            .prop_map(|(id, asset, bal, extra, auth)| {
                LedgerEntry::TrustLine(TrustLineEntry {
                    account: AccountId(PublicKey(id)),
                    asset,
                    balance: bal,
                    limit: bal.saturating_add(extra),
                    authorized: auth,
                })
            }),
    ]
}

proptest! {
    #[test]
    fn ledger_entry_codec_roundtrip(entry in arb_ledger_entry()) {
        let bytes = entry.to_bytes();
        prop_assert_eq!(LedgerEntry::from_bytes(&bytes).unwrap(), entry);
    }

    #[test]
    fn ledger_entry_decoding_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Hostile input: decode may fail, must not panic or overallocate.
        let _ = LedgerEntry::from_bytes(&bytes);
        let _ = LedgerKey::from_bytes(&bytes);
        let _ = StatementKind::from_bytes(&bytes);
        let _ = QuorumSet::from_bytes(&bytes);
    }

    #[test]
    fn statement_codec_roundtrip(n in 1u32..1000, c in 1u32..500, h in 1u32..500, bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let v = Value::new(bytes);
        let st = StatementKind::Confirm {
            ballot: Ballot::new(n, v),
            p_n: n,
            c_n: c.min(h),
            h_n: h,
        };
        prop_assert_eq!(StatementKind::from_bytes(&st.to_bytes()).unwrap(), st);
    }
}

// ---------- quorum sets ----------

fn arb_flat_qset(max_nodes: u32) -> impl Strategy<Value = QuorumSet> {
    (2u32..=max_nodes).prop_flat_map(|n| {
        (1u32..=n).prop_map(move |t| QuorumSet::threshold_of(t, (0..n).map(NodeId).collect()))
    })
}

proptest! {
    #[test]
    fn vblocking_and_slice_duality(qset in arb_flat_qset(8), mask in any::<u8>()) {
        // For flat sets: S contains a slice ⟺ complement of S is NOT
        // v-blocking (duality of threshold and n−threshold+1).
        let members: Vec<NodeId> = qset.validators.clone();
        let s: BTreeSet<NodeId> = members.iter().enumerate()
            .filter(|(i, _)| mask & (1 << (i % 8)) != 0)
            .map(|(_, n)| *n)
            .collect();
        let complement: BTreeSet<NodeId> = members.iter().filter(|n| !s.contains(n)).copied().collect();
        prop_assert_eq!(qset.is_quorum_slice(&s), !qset.is_v_blocking(&complement));
    }

    #[test]
    fn weights_sum_sanity(qset in arb_flat_qset(8)) {
        // Every member's weight is threshold/n; in [0,1].
        for v in &qset.validators {
            let w = qset.weight(*v);
            prop_assert!((0.0..=1.0).contains(&w));
            let expect = qset.threshold as f64 / qset.num_entries() as f64;
            prop_assert!((w - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn qset_codec_roundtrip(qset in arb_flat_qset(10)) {
        prop_assert_eq!(QuorumSet::from_bytes(&qset.to_bytes()).unwrap(), qset);
    }
}

// ---------- prices & order book ----------

proptest! {
    #[test]
    fn price_conversion_bounds(n in 1u32..10_000, d in 1u32..10_000, amount in 0i64..1_000_000_000) {
        let p = Price::new(n, d);
        if let (Some(floor), Some(ceil)) = (p.convert_floor(amount), p.convert_ceil(amount)) {
            prop_assert!(floor <= ceil);
            prop_assert!(ceil - floor <= 1, "floor/ceil differ by at most 1");
            // Exactness: floor ≤ amount·n/d < floor+1.
            let exact_num = amount as i128 * n as i128;
            prop_assert!(floor as i128 * d as i128 <= exact_num);
            prop_assert!((floor as i128 + 1) * d as i128 > exact_num);
        }
    }

    #[test]
    fn price_ordering_total_and_exact(a in 1u32..1000, b in 1u32..1000, c in 1u32..1000, d in 1u32..1000) {
        let p = Price::new(a, b);
        let q = Price::new(c, d);
        let exact = (a as u64 * d as u64).cmp(&(c as u64 * b as u64));
        prop_assert_eq!(p.cmp(&q), exact);
    }
}

// Conservation: XLM payments move value but never create or destroy it.
proptest! {
    #[test]
    fn xlm_conservation_under_random_payments(
        transfers in proptest::collection::vec((0u64..5, 0u64..5, 1i64..1000), 1..40)
    ) {
        let mut store = LedgerStore::new();
        for i in 0..5u64 {
            store.put_account(AccountEntry::new(AccountId(PublicKey(i)), 1_000_000));
        }
        let total_before: i64 = (0..5u64)
            .map(|i| store.account(AccountId(PublicKey(i))).unwrap().balance)
            .sum();
        let mut delta = store.begin();
        for (from, to, amount) in transfers {
            if from == to {
                continue;
            }
            // May fail (reserve); failures must not move money either.
            let _ = apply_operation(
                &mut delta,
                AccountId(PublicKey(from)),
                &Operation::Payment {
                    destination: AccountId(PublicKey(to)),
                    asset: Asset::Native,
                    amount,
                },
                &ExecEnv::default(),
            );
        }
        let ch = delta.into_changes();
        store.commit(ch);
        let total_after: i64 = (0..5u64)
            .map(|i| store.account(AccountId(PublicKey(i))).unwrap().balance)
            .sum();
        prop_assert_eq!(total_before, total_after);
    }
}

// ---------- bucket list ----------

proptest! {
    #[test]
    fn bucket_list_agrees_with_reference_map(
        ops in proptest::collection::vec((0u64..30, any::<bool>(), 1i64..1000), 1..120)
    ) {
        use std::collections::BTreeMap;
        let mut bl = stellar::buckets::BucketList::new();
        let mut reference: BTreeMap<u64, i64> = BTreeMap::new();
        for (seq0, (key, delete, balance)) in ops.into_iter().enumerate() {
            let seq = seq0 as u64 + 1;
            let id = AccountId(PublicKey(key));
            let change = if delete {
                reference.remove(&key);
                (LedgerKey::Account(id), None)
            } else {
                reference.insert(key, balance);
                (LedgerKey::Account(id), Some(LedgerEntry::Account(AccountEntry::new(id, balance))))
            };
            bl.add_batch(seq, &[change]);
        }
        let state = bl.reconstruct_state();
        prop_assert_eq!(state.len(), reference.len());
        for e in state {
            match e {
                LedgerEntry::Account(a) => {
                    prop_assert_eq!(reference.get(&a.id.0 .0).copied(), Some(a.balance));
                }
                other => prop_assert!(false, "unexpected entry {:?}", other),
            }
        }
    }
}

// ---------- statement semantics (the ballot-protocol vote algebra) ----------

proptest! {
    // prepare implication is downward-closed: a statement that accepts
    // prepare⟨n,x⟩ accepts every prepare⟨n′,x⟩ with n′ ≤ n.
    #[test]
    fn accepts_prepare_downward_closed(
        bn in 1u32..100, pn in 1u32..100, probe in 1u32..100,
    ) {
        let x = Value::new(b"x".to_vec());
        let st = StatementKind::Prepare {
            ballot: Ballot::new(bn.max(pn), x.clone()),
            prepared: Some(Ballot::new(pn, x.clone())),
            prepared_prime: None,
            c_n: 0,
            h_n: 0,
        };
        let b = Ballot::new(probe, x.clone());
        if st.accepts_prepare(&b) {
            for lower in 1..probe {
                prop_assert!(st.accepts_prepare(&Ballot::new(lower, x.clone())));
            }
        }
    }

    // Commit votes from a Prepare statement lie exactly in [c_n, h_n].
    #[test]
    fn prepare_commit_votes_are_interval(
        c in 1u32..50, span in 0u32..50, probe in 1u32..120,
    ) {
        let x = Value::new(b"x".to_vec());
        let h = c + span;
        let st = StatementKind::Prepare {
            ballot: Ballot::new(h, x.clone()),
            prepared: Some(Ballot::new(h, x.clone())),
            prepared_prime: None,
            c_n: c,
            h_n: h,
        };
        let b = Ballot::new(probe, x.clone());
        prop_assert_eq!(st.votes_commit(&b), (c..=h).contains(&probe));
        // Never votes commit for a different value.
        let y = Ballot::new(probe, Value::new(b"y".to_vec()));
        prop_assert!(!st.votes_commit(&y));
    }

    // Confirm statements accept commits exactly in [c_n, h_n] and vote
    // for everything at or above c_n.
    #[test]
    fn confirm_commit_semantics_consistent(
        c in 1u32..50, span in 0u32..50, probe in 1u32..120,
    ) {
        let x = Value::new(b"x".to_vec());
        let h = c + span;
        let st = StatementKind::Confirm {
            ballot: Ballot::new(h, x.clone()),
            p_n: h,
            c_n: c,
            h_n: h,
        };
        let b = Ballot::new(probe, x.clone());
        prop_assert_eq!(st.accepts_commit(&b), (c..=h).contains(&probe));
        prop_assert_eq!(st.votes_commit(&b), probe >= c);
        // accept ⊆ vote.
        if st.accepts_commit(&b) {
            prop_assert!(st.votes_commit(&b));
        }
    }

    // is_newer_than is a strict partial order on Prepare statements:
    // irreflexive and antisymmetric.
    #[test]
    fn statement_newness_is_strict(
        b1 in 1u32..20, b2 in 1u32..20, h1 in 0u32..20, h2 in 0u32..20,
    ) {
        let x = Value::new(b"x".to_vec());
        let mk = |b: u32, h: u32| StatementKind::Prepare {
            ballot: Ballot::new(b, x.clone()),
            prepared: None,
            prepared_prime: None,
            c_n: 0,
            h_n: h,
        };
        let s1 = mk(b1, h1);
        let s2 = mk(b2, h2);
        prop_assert!(!s1.is_newer_than(&s1));
        prop_assert!(!(s1.is_newer_than(&s2) && s2.is_newer_than(&s1)));
    }
}

// ---------- bucket list: deep spills ----------

#[test]
fn deep_spills_keep_state_and_hash_stable() {
    use stellar::buckets::BucketList;
    // 600 ledgers pushes entries through levels 0..4 (spills at 4, 16,
    // 64, 256); the reconstruction must stay exact throughout.
    let mut bl = BucketList::new();
    let mut reference = std::collections::BTreeMap::new();
    for seq in 1..=600u64 {
        let key = seq % 37;
        let id = AccountId(PublicKey(key));
        let entry = LedgerEntry::Account(AccountEntry::new(id, seq as i64));
        reference.insert(key, seq as i64);
        bl.add_batch(seq, &[(LedgerKey::Account(id), Some(entry))]);
    }
    let state = bl.reconstruct_state();
    assert_eq!(state.len(), reference.len());
    for e in state {
        match e {
            LedgerEntry::Account(a) => {
                assert_eq!(reference.get(&(a.id.0 .0)).copied(), Some(a.balance));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // Hash is reproducible from an identical rebuild.
    let mut rebuilt = BucketList::new();
    for seq in 1..=600u64 {
        let key = seq % 37;
        let id = AccountId(PublicKey(key));
        let entry = LedgerEntry::Account(AccountEntry::new(id, seq as i64));
        rebuilt.add_batch(seq, &[(LedgerKey::Account(id), Some(entry))]);
    }
    assert_eq!(bl.hash(), rebuilt.hash());
}

// ---------- order-book index vs. naive scan ----------

/// Reference implementation: filter every live offer for the pair, sort
/// by (price, id). The store's index must agree with this bit for bit.
fn naive_book(
    offers: &std::collections::BTreeMap<u64, stellar::ledger::entry::OfferEntry>,
    selling: &Asset,
    buying: &Asset,
) -> Vec<u64> {
    let mut v: Vec<&stellar::ledger::entry::OfferEntry> = offers
        .values()
        .filter(|o| &o.selling == selling && &o.buying == buying)
        .collect();
    v.sort_by(|a, b| a.price.cmp(&b.price).then(a.id.cmp(&b.id)));
    v.into_iter().map(|o| o.id).collect()
}

proptest! {
    /// The indexed order book returns exactly what a naive
    /// scan-and-sort returns, for every asset pair, under random
    /// sequences of inserts, reprices, and deletes — both from the
    /// committed store and through an uncommitted delta overlay, and
    /// page by page.
    #[test]
    fn indexed_book_matches_naive_scan(
        ops in proptest::collection::vec(
            (0u8..4, any::<u64>(), 1u32..12, 1u32..12), 1..80),
    ) {
        use stellar::ledger::entry::OfferEntry;
        let owner = AccountId(PublicKey(1));
        let issuer = AccountId(PublicKey(99));
        let assets = [
            Asset::Native,
            Asset::issued(issuer, "USD"),
            Asset::issued(issuer, "EUR"),
        ];
        let pair_of = |sel: u64| -> (Asset, Asset) {
            let s = (sel % 3) as usize;
            let b = (s + 1 + (sel / 3 % 2) as usize) % 3;
            (assets[s].clone(), assets[b].clone())
        };
        let mut store = LedgerStore::new();
        // Mirror of the committed offers, keyed by id.
        let mut mirror: std::collections::BTreeMap<u64, OfferEntry> =
            std::collections::BTreeMap::new();
        for chunk in ops.chunks(5) {
            let mut pending = mirror.clone();
            let mut delta = store.begin();
            for &(kind, pick, n, d) in chunk {
                match kind {
                    // Insert a fresh offer.
                    0 | 3 => {
                        let (selling, buying) = pair_of(pick);
                        let o = OfferEntry {
                            id: delta.allocate_offer_id(),
                            account: owner,
                            selling,
                            buying,
                            amount: 10,
                            price: Price::new(n, d),
                            passive: false,
                        };
                        pending.insert(o.id, o.clone());
                        delta.put_offer(o);
                    }
                    // Reprice an existing offer.
                    1 if !pending.is_empty() => {
                        let id = *pending
                            .keys()
                            .nth(pick as usize % pending.len())
                            .unwrap();
                        let mut o = pending[&id].clone();
                        o.price = Price::new(n, d);
                        pending.insert(id, o.clone());
                        delta.put_offer(o);
                    }
                    // Delete an existing offer.
                    2 if !pending.is_empty() => {
                        let id = *pending
                            .keys()
                            .nth(pick as usize % pending.len())
                            .unwrap();
                        pending.remove(&id);
                        delta.delete_offer(id);
                    }
                    _ => {}
                }
            }
            // Mid-delta: overlay merged with base must equal the naive
            // view of the pending state.
            for s in &assets {
                for b in &assets {
                    if s == b {
                        continue;
                    }
                    let got: Vec<u64> = delta
                        .offers_for_pair(s, b)
                        .iter()
                        .map(|o| o.id)
                        .collect();
                    prop_assert_eq!(got, naive_book(&pending, s, b));
                    // Paging must concatenate to the same sequence.
                    let mut paged = Vec::new();
                    let mut cursor = None;
                    loop {
                        let page = delta.offers_page(s, b, cursor, 3);
                        if page.is_empty() {
                            break;
                        }
                        cursor = Some(stellar::ledger::store::book_key(
                            page.last().unwrap(),
                        ));
                        paged.extend(page.iter().map(|o| o.id));
                    }
                    prop_assert_eq!(paged, naive_book(&pending, s, b));
                }
            }
            store.commit(delta.into_changes());
            mirror = pending;
            // Committed: the base index must equal the naive view.
            for s in &assets {
                for b in &assets {
                    if s == b {
                        continue;
                    }
                    let got: Vec<u64> = store
                        .offers_for_pair(s, b)
                        .iter()
                        .map(|o| o.id)
                        .collect();
                    prop_assert_eq!(got, naive_book(&mirror, s, b));
                }
            }
        }
        // The id-ordered iterator sees exactly the mirrored offers.
        prop_assert_eq!(store.offers().len(), mirror.len());
    }
}

// ---------- bucket merge: cached encodings never go stale ----------

proptest! {
    /// A bucket produced by any chain of merges hashes identically to a
    /// bucket built from scratch with the same final contents — the
    /// cached per-slot encodings must never leak stale bytes.
    #[test]
    fn merged_bucket_hash_equals_rebuilt(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u64..20, any::<bool>(), 1i64..1000), 1..10),
            1..8),
    ) {
        use stellar::buckets::bucket::Bucket;
        let mut merged = Bucket::empty();
        let mut reference: std::collections::BTreeMap<u64, Option<i64>> =
            std::collections::BTreeMap::new();
        for batch in &batches {
            let changes: Vec<(LedgerKey, Option<LedgerEntry>)> = batch
                .iter()
                .map(|&(key, delete, balance)| {
                    let id = AccountId(PublicKey(key));
                    reference.insert(key, (!delete).then_some(balance));
                    (
                        LedgerKey::Account(id),
                        (!delete).then(|| {
                            LedgerEntry::Account(AccountEntry::new(id, balance))
                        }),
                    )
                })
                .collect();
            merged = merged.merge(&Bucket::from_changes(&changes), false);
        }
        let rebuilt_changes: Vec<(LedgerKey, Option<LedgerEntry>)> = reference
            .iter()
            .map(|(&key, slot)| {
                let id = AccountId(PublicKey(key));
                (
                    LedgerKey::Account(id),
                    slot.map(|b| LedgerEntry::Account(AccountEntry::new(id, b))),
                )
            })
            .collect();
        let rebuilt = Bucket::from_changes(&rebuilt_changes);
        prop_assert_eq!(merged.hash(), rebuilt.hash());
        prop_assert_eq!(merged.len(), rebuilt.len());
    }
}

// ---------- durable persistence: codec round-trips & torn writes ----------

fn arb_ballot() -> impl Strategy<Value = Option<Ballot>> {
    (0u32..1000, proptest::collection::vec(any::<u8>(), 0..24)).prop_map(|(n, bytes)| {
        // n == 0 plays the role of `proptest::option::of`: absent.
        (n > 0).then(|| Ballot::new(n, Value::new(bytes)))
    })
}

fn arb_value_set() -> impl Strategy<Value = BTreeSet<Value>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::new),
        0..4,
    )
    .prop_map(|v| v.into_iter().collect())
}

/// Arbitrary durable slot snapshot: every phase, optional ballots, value
/// sets, and a latest-statement map with a realistically shaped statement.
fn arb_slot_snapshot() -> impl Strategy<Value = stellar::scp::slot::SlotSnapshot> {
    use stellar::scp::ballot::{BallotPhase, BallotSnapshot};
    use stellar::scp::nomination::NominationSnapshot;
    use stellar::scp::slot::SlotSnapshot;
    (
        (any::<u64>(), any::<bool>(), any::<bool>(), 0u32..50),
        arb_value_set(),
        arb_value_set(),
        (arb_ballot(), arb_ballot(), arb_ballot(), arb_ballot()),
        (0u32..3, 0u64..100),
        proptest::collection::vec(any::<u8>(), 0..16),
    )
        .prop_map(
            |(
                (slot, started, stopped, round),
                voted,
                accepted,
                ballots,
                (phase, timeouts),
                val,
            )| {
                let (current, prepared, prepared_prime, high) = ballots;
                let phase = match phase {
                    0 => BallotPhase::Prepare,
                    1 => BallotPhase::Confirm,
                    _ => BallotPhase::Externalize,
                };
                let value = Value::new(val);
                let mut latest = std::collections::BTreeMap::new();
                latest.insert(
                    NodeId(7),
                    stellar::scp::Statement {
                        node: NodeId(7),
                        slot,
                        quorum_set: QuorumSet::threshold_of(2, (0..3).map(NodeId).collect()),
                        kind: StatementKind::Nominate {
                            voted: [value.clone()].into_iter().collect(),
                            accepted: BTreeSet::new(),
                        },
                    },
                );
                SlotSnapshot {
                    index: slot,
                    nomination: NominationSnapshot {
                        started,
                        stopped,
                        round,
                        leaders: (0..(round % 4)).map(NodeId).collect(),
                        voted,
                        accepted: accepted.clone(),
                        candidates: accepted,
                        latest: latest.clone(),
                        proposed: stopped.then(|| value.clone()),
                        timeouts,
                    },
                    ballot: BallotSnapshot {
                        phase,
                        current,
                        prepared,
                        prepared_prime,
                        high,
                        commit: None,
                        latest,
                        composite: started.then_some(value.clone()),
                        timeouts,
                        decided: matches!(phase, BallotPhase::Externalize).then_some(value),
                    },
                }
            },
        )
}

fn arb_ledger_header() -> impl Strategy<Value = stellar::ledger::header::LedgerHeader> {
    use stellar::ledger::header::{LedgerHeader, LedgerParams};
    (
        1u64..u64::MAX / 2,
        (any::<u64>(), any::<u64>()),
        any::<u64>(),
        any::<i64>(),
        (1u32..10, 1i64..1000, 1i64..1000, 1u32..10_000),
    )
        .prop_map(|(seq, (prev, snap), close_time, fee_pool, params)| {
            let (protocol_version, base_fee, base_reserve, max_tx_set_ops) = params;
            LedgerHeader {
                ledger_seq: seq,
                prev_header_hash: sha256(&prev.to_be_bytes()),
                tx_set_hash: sha256(&snap.to_be_bytes()),
                close_time,
                results_hash: sha256(&prev.to_le_bytes()),
                snapshot_hash: sha256(&snap.to_le_bytes()),
                params: LedgerParams {
                    protocol_version,
                    base_fee,
                    base_reserve,
                    max_tx_set_ops,
                    // Not consensus state: the codec always decodes 1,
                    // so any other value here would fail the roundtrip.
                    apply_threads: 1,
                },
                fee_pool,
            }
        })
}

proptest! {
    /// What the herder writes ahead of envelopes must read back
    /// bit-identically: an SCP slot snapshot survives encode → decode.
    #[test]
    fn slot_snapshot_codec_roundtrip(snap in arb_slot_snapshot()) {
        use stellar::scp::slot::SlotSnapshot;
        let bytes = snap.to_bytes();
        prop_assert_eq!(SlotSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    /// The durable LCL record's header half survives encode → decode.
    #[test]
    fn ledger_header_codec_roundtrip(header in arb_ledger_header()) {
        use stellar::ledger::header::LedgerHeader;
        let bytes = header.to_bytes();
        let back = LedgerHeader::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.hash(), header.hash());
        prop_assert_eq!(back, header);
    }

    /// Torn-write safety: no strict prefix of a valid framed record
    /// unframes (a crash mid-write can only yield "whole record" or
    /// "detectably torn", never a silently shortened one), and a full
    /// frame always recovers its payload exactly.
    #[test]
    fn torn_frame_prefix_never_unframes(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..600,
    ) {
        use stellar::persist::{frame, unframe};
        let record = frame(&payload);
        prop_assert_eq!(unframe(&record), Some(payload));
        let cut = cut % record.len(); // strict prefix: 0..len
        prop_assert_eq!(unframe(&record[..cut]), None);
    }

    /// Bit-flip safety: corrupting any single byte of a framed record
    /// makes it unreadable (the checksum pins the payload, the length
    /// prefix pins the size).
    #[test]
    fn corrupted_frame_never_unframes(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        pos in 0usize..300,
        flip in 1u8..=255,
    ) {
        use stellar::persist::{frame, unframe};
        let mut record = frame(&payload);
        let pos = pos % record.len();
        record[pos] ^= flip;
        prop_assert_eq!(unframe(&record), None);
    }
}

// ---------- footprints & parallel apply ----------

mod footprints {
    use super::*;
    use stellar::crypto::sign::KeyPair;
    use stellar::ledger::amount::{xlm, BASE_FEE};
    use stellar::ledger::apply::{apply_transaction, close_ledger};
    use stellar::ledger::footprint::tx_footprint;
    use stellar::ledger::header::{LedgerHeader, LedgerParams};
    use stellar::ledger::sigcache::SigVerifyCache;
    use stellar::ledger::tx::{Memo, SourcedOperation, Transaction, TransactionEnvelope, TxResult};
    use stellar::ledger::{LedgerBackend, MemBackend, TransactionSet};

    const FP_ACCOUNTS: u64 = 8;

    fn fkeys(n: u64) -> KeyPair {
        KeyPair::from_seed(0xF00D + n)
    }

    fn facct(n: u64) -> AccountId {
        AccountId(fkeys(n).public())
    }

    fn fusd() -> Asset {
        Asset::issued(facct(0), "USD")
    }

    fn feur() -> Asset {
        Asset::issued(facct(0), "EUR")
    }

    fn fp_entries() -> Vec<LedgerEntry> {
        let mut entries = Vec::new();
        for i in 0..FP_ACCOUNTS {
            let mut a = AccountEntry::new(facct(i), xlm(1_000));
            a.num_subentries = if i == 0 { 0 } else { 2 };
            entries.push(LedgerEntry::Account(a));
            if i != 0 {
                for asset in [fusd(), feur()] {
                    entries.push(LedgerEntry::TrustLine(TrustLineEntry {
                        account: facct(i),
                        asset,
                        balance: 10_000,
                        limit: i64::MAX / 2,
                        authorized: true,
                    }));
                }
            }
        }
        entries
    }

    fn fp_tx(src: u64, seq: u64, op: Operation) -> TransactionEnvelope {
        TransactionEnvelope::sign(
            Transaction {
                source: facct(src),
                seq_num: seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation { source: None, op }],
            },
            &[&fkeys(src)],
        )
    }

    /// A random operation whose footprint the scheduler must respect:
    /// payments, offers on two book pairs, data and trustline writes,
    /// sequence bumps.
    fn arb_fp_op() -> impl Strategy<Value = Operation> {
        prop_oneof![
            (1u64..FP_ACCOUNTS, 1i64..100).prop_map(|(d, amount)| Operation::Payment {
                destination: facct(d),
                asset: Asset::Native,
                amount,
            }),
            (1u64..FP_ACCOUNTS, 1i64..100).prop_map(|(d, amount)| Operation::Payment {
                destination: facct(d),
                asset: fusd(),
                amount,
            }),
            (1i64..50, 80u32..120).prop_map(|(amount, p)| Operation::ManageOffer {
                offer_id: 0,
                selling: fusd(),
                buying: Asset::Native,
                amount,
                price: Price::new(p, 100),
                passive: false,
            }),
            (1i64..50, 80u32..120).prop_map(|(amount, p)| Operation::ManageOffer {
                offer_id: 0,
                selling: feur(),
                buying: Asset::Native,
                amount,
                price: Price::new(p, 100),
                passive: false,
            }),
            (0u64..4, proptest::collection::vec(any::<u8>(), 1..8)).prop_map(|(k, value)| {
                Operation::ManageData {
                    name: format!("k{k}"),
                    value: Some(value),
                }
            }),
            (10_000i64..1_000_000).prop_map(|limit| Operation::ChangeTrust {
                asset: fusd(),
                limit,
            }),
            (1u64..1000).prop_map(|bump_to| Operation::BumpSequence { bump_to }),
        ]
    }

    /// Applies `first` then `second` on a fresh genesis and returns the
    /// final entries (offer ids zeroed — the global allocator hands out
    /// ids in application order, which commuting is not about) plus both
    /// transaction results.
    fn apply_pair(
        first: &TransactionEnvelope,
        second: &TransactionEnvelope,
    ) -> (Vec<LedgerEntry>, u64, TxResult, TxResult) {
        let mut store = LedgerStore::from_entries(fp_entries());
        let exec = ExecEnv::default();
        let mut sig = SigVerifyCache::disabled();
        let mut delta = store.begin();
        let r1 = apply_transaction(
            &mut delta,
            first,
            exec.close_time,
            BASE_FEE,
            &exec,
            &mut sig,
        );
        let r2 = apply_transaction(
            &mut delta,
            second,
            exec.close_time,
            BASE_FEE,
            &exec,
            &mut sig,
        );
        store.commit(delta.into_changes());
        let mut entries: Vec<LedgerEntry> = store
            .all_entries()
            .map(|mut e| {
                if let LedgerEntry::Offer(o) = &mut e {
                    o.id = 0;
                }
                e
            })
            .collect();
        entries.sort_by_key(|e| {
            let mut buf = Vec::new();
            e.encode(&mut buf);
            buf
        });
        (entries, store.next_offer_id(), r1, r2)
    }

    proptest! {
        /// Two transactions whose *declared* footprints are disjoint
        /// commute: applying them in either order yields the same final
        /// state and the same per-transaction results. This is the
        /// soundness condition wave scheduling rests on — transactions
        /// sharing a wave are exactly those with pairwise-disjoint
        /// footprints.
        #[test]
        fn disjoint_footprints_commute(
            a_src in 1u64..FP_ACCOUNTS,
            b_src in 1u64..FP_ACCOUNTS,
            a_op in arb_fp_op(),
            b_op in arb_fp_op(),
        ) {
            let env_a = fp_tx(a_src, 1, a_op);
            let env_b = fp_tx(b_src, 1, b_op);
            let mut backend = MemBackend::new();
            let feed: Vec<_> = fp_entries().into_iter().map(|e| (e.key(), Some(e))).collect();
            backend.apply(&feed);
            let fp_a = tx_footprint(&backend, &env_a);
            let fp_b = tx_footprint(&backend, &env_b);
            if fp_a.precise && fp_b.precise && !fp_a.conflicts(&fp_b) {
                let (state_ab, next_ab, a_first, b_second) = apply_pair(&env_a, &env_b);
                let (state_ba, next_ba, b_first, a_second) = apply_pair(&env_b, &env_a);
                prop_assert_eq!(state_ab, state_ba, "states diverged");
                prop_assert_eq!(next_ab, next_ba);
                prop_assert_eq!(a_first, a_second, "A's result depends on order");
                prop_assert_eq!(b_first, b_second, "B's result depends on order");
            }
        }

        /// A randomized tx set closed with the parallel path must
        /// externalize exactly what the sequential path does: same
        /// header hash (covers `hash_results`), same results, same
        /// change feed.
        #[test]
        fn parallel_close_matches_sequential(
            ops in proptest::collection::vec(arb_fp_op(), 1..8),
            threads in 2u32..9,
        ) {
            let txs: Vec<TransactionEnvelope> = ops
                .into_iter()
                .enumerate()
                .map(|(i, op)| fp_tx(1 + i as u64, 1, op))
                .collect();
            let genesis = LedgerHeader::genesis(stellar::crypto::Hash256::ZERO);
            let set = TransactionSet::assemble(genesis.hash(), txs, u32::MAX);
            let run = |apply_threads: u32| {
                let mut store = LedgerStore::from_entries(fp_entries());
                let mut sig = SigVerifyCache::disabled();
                let params = LedgerParams { apply_threads, ..LedgerParams::default() };
                let r = close_ledger(&mut store, &genesis, &set, genesis.close_time + 5, params, &mut sig);
                let entries: Vec<LedgerEntry> = store.all_entries().collect();
                (r.header.hash(), r.results, r.changes, r.fees_collected, entries)
            };
            let seq = run(1);
            let par = run(threads);
            prop_assert_eq!(seq.0, par.0, "header hashes diverged");
            prop_assert_eq!(seq.1, par.1, "results diverged");
            prop_assert_eq!(seq.2, par.2, "change feeds diverged");
            prop_assert_eq!(seq.3, par.3, "fees diverged");
            prop_assert_eq!(seq.4, par.4, "final entries diverged");
        }
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The workspace builds in a network-isolated container, so the real crate
//! cannot be fetched. This shim keeps every `[[bench]]` target compiling and
//! producing *useful numbers*: each benchmark runs a short warmup, then
//! `sample_size` timed samples of the routine, and prints mean/min/max
//! wall-clock time per iteration (plus throughput when configured). It does
//! no statistical outlier analysis, plotting, or baseline comparison — the
//! API surface (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, `BenchmarkId`) matches criterion 0.5 for the subset the
//! workspace uses, so the real crate can be swapped back in without touching
//! the benches.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! routine runs exactly once so test sweeps stay fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched-iteration inputs are grouped. The shim regenerates the input
/// for every iteration regardless, so the variants only exist for API
/// compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// One input per iteration (large inputs).
    LargeInput,
    /// Small inputs; identical behavior here.
    SmallInput,
    /// Per-iteration batching; identical behavior here.
    PerIteration,
}

/// Units used to report throughput next to per-iteration timings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, rendered as part of the printed label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id that is just the parameter's display form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id composed of a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Times a single benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = self.effective_samples();
        for _ in 0..n.min(3) {
            std::hint::black_box(routine()); // warmup
        }
        for _ in 0..n {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let n = self.effective_samples();
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }
}

/// Shared measurement settings and result printing.
struct Settings {
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl Settings {
    fn run<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = *b.samples.iter().min().unwrap();
        let max = *b.samples.iter().max().unwrap();
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean.as_nanos() > 0 => {
                let gib = bytes as f64 / (1u64 << 30) as f64;
                format!("  {:>8.3} GiB/s", gib / mean.as_secs_f64())
            }
            Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
                format!("  {:>10.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{label:<48} mean {mean:>10.2?}  min {min:>10.2?}  max {max:>10.2?}{rate}");
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.settings.run(&label, |b| f(b, input));
        self
    }

    /// Runs one benchmark identified by `id` alone.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.settings.run(&label, f);
        self
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {
        let _ = self.criterion;
    }
}

/// The benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` (and plain `cargo test` for harness=false
        // bench targets) passes --test; run everything once in that mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            settings: Settings {
                sample_size: 20,
                throughput: None,
                test_mode: self.test_mode,
            },
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        Settings {
            sample_size: 20,
            throughput: None,
            test_mode: self.test_mode,
        }
        .run(name, f);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100u32), &100u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_prints() {
        benches();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
        assert_eq!(BenchmarkId::new("f", 7).label, "f/7");
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in a network-isolated container with no registry
//! mirror, so external crates cannot be fetched. Everything here only needs
//! *seeded, reproducible* randomness — simulation jitter, topology shuffles,
//! load generation — never cryptographic randomness (key material is derived
//! from explicit seeds via SHA-256 in `stellar-crypto`). This shim therefore
//! implements exactly the slice of the rand 0.8 API the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`];
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//!   [`Rng::gen`] for primitives;
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction rand's own `SmallRng` family uses. Streams are deterministic
//! across platforms and runs, which is exactly the property the simulator
//! and chaos harness rely on. The API is call-compatible, so swapping the
//! real crate back in (when a registry is available) is a one-line change in
//! the workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a generator can produce directly via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }

    /// Samples a primitive value.
    #[allow(clippy::should_implement_trait)] // rand 0.8 API compatibility
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (deterministic across platforms; not cryptographic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        let mut a2 = StdRng::seed_from_u64(7);
        let theirs: Vec<u64> = (0..16).map(|_| a2.gen_range(0..1_000_000u64)).collect();
        assert_ne!(same, theirs, "different seeds diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5i64..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

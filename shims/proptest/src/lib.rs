//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds in a network-isolated container, so the real crate
//! cannot be fetched. This shim keeps every property test compiling and
//! *meaningfully running*: each `proptest!` body is executed over a fixed
//! number of cases drawn from deterministically seeded strategies (seeded by
//! test name + case index, so failures are reproducible run-to-run).
//!
//! What it deliberately does **not** do is shrinking — a failing case panics
//! with the sampled inputs via the standard assert messages instead of
//! minimizing them. That trades debugging convenience for zero dependencies;
//! the strategy API (`any`, ranges, tuples, `Just`, `prop_oneof!`,
//! `prop_map`/`prop_flat_map`, `collection::vec`, char-class string
//! patterns) is call-compatible with proptest 1.x for the subset this
//! workspace uses, so the real crate can be swapped back in without touching
//! the tests.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs. Smaller than proptest's default 256:
/// these run in debug `cargo test` and several properties drive exponential
/// quorum enumeration.
pub const CASES: u64 = 64;

/// Builds the deterministic generator for one case of one property.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name keeps seeds stable across runs and rustc
    // versions (no reliance on `DefaultHasher`).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

pub mod strategy {
    //! Value-generation strategies: samplers without shrinkers.

    use super::{Rng, StdRng};

    /// A boxed, object-safe strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Generates values of `Self::Value` from a seeded generator.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            (**self).sample_value(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// An unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&str` strategies are simple regex-like character-class patterns:
    /// `"[A-Z]{1,12}"` means 1..=12 chars drawn from A..=Z. Anything that
    /// doesn't parse as `[class]{m,n}` is produced literally.
    impl Strategy for &str {
        type Value = String;
        fn sample_value(&self, rng: &mut StdRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = rng.gen_range(lo..=hi);
                    (0..len)
                        .map(|_| chars[rng.gen_range(0..chars.len())])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                chars.extend((a as u32..=b as u32).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_string();
        let (lo, hi) = match reps.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((chars, lo, hi))
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample_value(rng)).sample_value(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
        (S0.0, S1.1, S2.2, S3.3, S4.4)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::{Rng, StdRng};

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each body runs [`CASES`] times with inputs sampled from a generator
/// seeded by the test name and case index.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut prop_rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(
                            &($strat),
                            &mut prop_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #[test]
        fn ranges_and_maps(n in 5u32..10, v in crate::collection::vec(any::<u8>(), 1..4), e in arb_even()) {
            prop_assert!((5..10).contains(&n));
            prop_assert!((1..4).contains(&v.len()));
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_and_strings(x in prop_oneof![Just(1u8), Just(2u8)], s in "[A-C]{2,4}") {
            prop_assert!(x == 1 || x == 2);
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('A'..='C').contains(&c)));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..6).prop_flat_map(|n| (Just(n), crate::collection::vec(any::<bool>(), n..n + 1)))) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn same_name_same_stream() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 3..9);
        let a = s.sample_value(&mut crate::case_rng("t", 5));
        let b = s.sample_value(&mut crate::case_rng("t", 5));
        assert_eq!(a, b);
    }
}
